//! The deterministic result cache: an in-memory, byte-bounded LRU
//! keyed by the canonical input hash ([`crate::JobRequest::cache_key`]).
//!
//! Soundness rests on the engine's determinism contract: a cache key
//! covers the *entire* normalized input, and identical inputs produce
//! bitwise-identical artifacts, so serving a cached artifact set is
//! indistinguishable from re-simulating (pinned by `tests/serve.rs`).
//! Eviction is two-level: a global byte capacity (`--cache-mb`) and a
//! per-tenant byte budget ([`crate::TenantQuota::max_cached_bytes`]),
//! both enforced least-recently-used-first.

use std::collections::HashMap;
use std::sync::Arc;

use crate::runner::Artifacts;

/// Hit/miss/eviction counters, exposed via `GET /v1/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that returned a cached artifact set.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted (global or tenant budget pressure).
    pub evictions: u64,
    /// Artifact sets too large to ever fit and therefore never cached.
    pub uncacheable: u64,
}

struct Entry {
    tenant: String,
    artifacts: Arc<Artifacts>,
    bytes: usize,
    /// Monotone recency stamp; smallest = least recently used.
    used: u64,
}

/// The in-memory LRU result cache.
pub struct ResultCache {
    entries: HashMap<u64, Entry>,
    capacity_bytes: usize,
    used_bytes: usize,
    tick: u64,
    counters: CacheCounters,
}

impl ResultCache {
    /// An empty cache holding at most `capacity_bytes` of artifacts.
    pub fn new(capacity_bytes: usize) -> ResultCache {
        ResultCache {
            entries: HashMap::new(),
            capacity_bytes,
            used_bytes: 0,
            tick: 0,
            counters: CacheCounters::default(),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: u64) -> Option<Arc<Artifacts>> {
        self.tick += 1;
        match self.entries.get_mut(&key) {
            Some(entry) => {
                entry.used = self.tick;
                self.counters.hits += 1;
                Some(Arc::clone(&entry.artifacts))
            }
            None => {
                self.counters.misses += 1;
                None
            }
        }
    }

    /// Inserts a finished artifact set for `tenant`, evicting
    /// least-recently-used entries until both the global capacity and
    /// the tenant's byte budget hold. An artifact set larger than
    /// either bound is simply not cached (the job result was already
    /// delivered; only re-submission economics change).
    pub fn insert(
        &mut self,
        key: u64,
        tenant: &str,
        artifacts: Arc<Artifacts>,
        tenant_budget: usize,
    ) {
        let bytes = artifacts.total_bytes();
        if bytes > self.capacity_bytes || bytes > tenant_budget {
            self.counters.uncacheable += 1;
            return;
        }
        if let Some(old) = self.entries.remove(&key) {
            // Same input re-ran (e.g. the entry was evicted mid-run and
            // a concurrent duplicate finished): replace, don't double-count.
            self.used_bytes -= old.bytes;
        }
        while self.used_bytes + bytes > self.capacity_bytes {
            self.evict_lru(None);
        }
        while self.tenant_bytes(tenant) + bytes > tenant_budget {
            self.evict_lru(Some(tenant));
        }
        self.tick += 1;
        self.used_bytes += bytes;
        self.counters.insertions += 1;
        self.entries.insert(
            key,
            Entry {
                tenant: tenant.to_string(),
                artifacts,
                bytes,
                used: self.tick,
            },
        );
    }

    fn evict_lru(&mut self, tenant: Option<&str>) {
        let victim = self
            .entries
            .iter()
            .filter(|(_, e)| tenant.is_none_or(|t| e.tenant == t))
            .min_by_key(|(_, e)| e.used)
            .map(|(k, _)| *k);
        if let Some(key) = victim {
            let entry = self.entries.remove(&key).expect("victim exists");
            self.used_bytes -= entry.bytes;
            self.counters.evictions += 1;
        }
    }

    /// Bytes currently cached for `tenant`.
    pub fn tenant_bytes(&self, tenant: &str) -> usize {
        self.entries
            .values()
            .filter(|e| e.tenant == tenant)
            .map(|e| e.bytes)
            .sum()
    }

    /// Total bytes cached.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// The configured byte capacity.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Number of cached artifact sets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A snapshot of the counters.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifacts(bytes: usize) -> Arc<Artifacts> {
        Arc::new(Artifacts::new(vec![(
            "report.json".to_string(),
            vec![b'x'; bytes],
        )]))
    }

    #[test]
    fn get_after_insert_hits_and_counts() {
        let mut c = ResultCache::new(1000);
        assert!(c.get(1).is_none());
        c.insert(1, "alice", artifacts(10), 1000);
        let hit = c.get(1).expect("cached");
        assert_eq!(hit.total_bytes(), 10);
        let counters = c.counters();
        assert_eq!(
            (counters.hits, counters.misses, counters.insertions),
            (1, 1, 1)
        );
    }

    #[test]
    fn global_capacity_evicts_lru_first() {
        let mut c = ResultCache::new(100);
        c.insert(1, "a", artifacts(40), usize::MAX);
        c.insert(2, "a", artifacts(40), usize::MAX);
        c.get(1); // 2 is now least recently used
        c.insert(3, "a", artifacts(40), usize::MAX);
        assert!(c.get(1).is_some());
        assert!(c.get(2).is_none(), "LRU entry evicted");
        assert!(c.get(3).is_some());
        assert_eq!(c.counters().evictions, 1);
        assert!(c.used_bytes() <= 100);
    }

    #[test]
    fn tenant_budget_evicts_only_that_tenant() {
        let mut c = ResultCache::new(10_000);
        c.insert(1, "alice", artifacts(40), 100);
        c.insert(2, "bob", artifacts(40), 100);
        c.insert(3, "alice", artifacts(40), 100);
        c.insert(4, "alice", artifacts(40), 100); // alice over 100 → evict her LRU
        assert!(c.get(1).is_none(), "alice's LRU evicted");
        assert!(c.get(2).is_some(), "bob untouched");
        assert!(c.tenant_bytes("alice") <= 100);
    }

    #[test]
    fn oversized_sets_are_never_cached() {
        let mut c = ResultCache::new(100);
        c.insert(1, "a", artifacts(500), usize::MAX);
        assert!(c.is_empty());
        assert_eq!(c.counters().uncacheable, 1);
        // Tenant budget smaller than the set: same story.
        c.insert(2, "a", artifacts(50), 10);
        assert_eq!(c.counters().uncacheable, 2);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn reinsert_replaces_without_double_counting() {
        let mut c = ResultCache::new(100);
        c.insert(1, "a", artifacts(30), usize::MAX);
        c.insert(1, "a", artifacts(50), usize::MAX);
        assert_eq!(c.used_bytes(), 50);
        assert_eq!(c.len(), 1);
    }
}
