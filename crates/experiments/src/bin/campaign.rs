//! Regenerates the campaign-scheduling extension experiment; see
//! `wfbb_experiments::figures`.
fn main() {
    wfbb_experiments::run_and_save("campaign");
}
