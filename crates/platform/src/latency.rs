//! Per-operation latency calibration.
//!
//! The paper's key qualitative findings — striped-mode collapse on SWarp's
//! many-small-files (1:N) pattern, the ~5× stage-in gap between Summit and
//! Cori, metadata-bound behavior of workflow I/O — are latency effects, not
//! bandwidth effects. [`LatencyProfile`] gathers the per-file and per-stripe
//! fixed costs each storage tier charges before a transfer streams.

use serde::{Deserialize, Serialize};

/// Fixed per-operation costs of the platform's storage tiers, in seconds.
///
/// These are calibration knobs: the defaults (see
/// [`presets`](crate::presets)) were chosen so the simulator reproduces the
/// relative behaviors reported in the paper's Section III (Figures 4–9).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyProfile {
    /// One-way network latency of the interconnect (applied to every remote
    /// transfer).
    pub network: f64,
    /// Metadata/open cost per file on the parallel file system.
    pub pfs_per_file: f64,
    /// Metadata/open cost per file on a shared burst buffer in *private*
    /// mode (per-compute-node namespace, cheap metadata).
    pub bb_private_per_file: f64,
    /// Metadata/open cost **per stripe** on a shared burst buffer in
    /// *striped* mode. A file striped over `k` BB nodes pays `k` times this
    /// cost, which is what makes the mode pathological for the SWarp 1:N
    /// pattern (many small files, each opened by one task).
    pub bb_striped_per_stripe: f64,
    /// Metadata/open cost per file on an on-node (local NVMe) burst buffer.
    pub bb_onnode_per_file: f64,
}

impl LatencyProfile {
    /// A zero-latency profile, useful for tests that isolate bandwidth
    /// effects.
    pub fn zero() -> Self {
        LatencyProfile {
            network: 0.0,
            pfs_per_file: 0.0,
            bb_private_per_file: 0.0,
            bb_striped_per_stripe: 0.0,
            bb_onnode_per_file: 0.0,
        }
    }

    /// Validates that all latencies are finite and non-negative.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("network", self.network),
            ("pfs_per_file", self.pfs_per_file),
            ("bb_private_per_file", self.bb_private_per_file),
            ("bb_striped_per_stripe", self.bb_striped_per_stripe),
            ("bb_onnode_per_file", self.bb_onnode_per_file),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("latency {name} must be finite and >= 0, got {v}"));
            }
        }
        Ok(())
    }
}

impl Default for LatencyProfile {
    /// The Cori-like defaults used by the presets.
    fn default() -> Self {
        LatencyProfile {
            network: 1e-5,
            pfs_per_file: 0.010,
            bb_private_per_file: 0.020,
            bb_striped_per_stripe: 0.250,
            bb_onnode_per_file: 0.001,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        LatencyProfile::default().validate().unwrap();
        LatencyProfile::zero().validate().unwrap();
    }

    #[test]
    fn striped_is_the_most_expensive_mode_by_default() {
        let l = LatencyProfile::default();
        assert!(l.bb_striped_per_stripe > l.bb_private_per_file);
        assert!(l.bb_private_per_file > l.bb_onnode_per_file);
    }

    #[test]
    fn negative_latency_is_rejected() {
        let l = LatencyProfile {
            pfs_per_file: -0.1,
            ..LatencyProfile::default()
        };
        assert!(l.validate().unwrap_err().contains("pfs_per_file"));
    }

    #[test]
    fn serde_round_trip() {
        let l = LatencyProfile::default();
        let json = serde_json::to_string(&l).unwrap();
        let back: LatencyProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(l, back);
    }
}
