//! The 1000Genomes workflow (paper Figure 12).
//!
//! Identifies mutational overlaps from 1000 Genomes Project data. Per
//! chromosome, a fan of *individuals* tasks parses chunks of the variant
//! data and an *individuals-merge* joins them; a *sifting* task extracts
//! SIFT scores; *mutation-overlap* and *frequency* tasks then cross the
//! merged individuals with the sifted variants and the (global)
//! *populations* data.
//!
//! The paper's instance: 22 chromosomes, **903 tasks**, ~67 GB footprint,
//! ~52 GB of input (77 %). The exact per-type counts are not printed in
//! the paper; the defaults below reproduce the totals with the structure
//! of the WorkflowHub trace family:
//!
//! ```text
//! 22 × (25 individuals + 1 merge + 1 sifting + 7 overlap + 7 frequency)
//!    + 1 populations  =  22 × 41 + 1  =  903 tasks
//! ```

use wfbb_workflow::{Workflow, WorkflowBuilder};

/// Configuration of a 1000Genomes instance.
#[derive(Debug, Clone)]
pub struct GenomesConfig {
    /// Chromosomes processed (22 in the paper's instance).
    pub chromosomes: usize,
    /// Individuals (chunk-parsing) tasks per chromosome.
    pub individuals_per_chromosome: usize,
    /// Mutation-overlap tasks per chromosome.
    pub overlap_per_chromosome: usize,
    /// Frequency tasks per chromosome.
    pub frequency_per_chromosome: usize,
    /// Size of one raw chunk an individuals task reads, bytes.
    pub chunk_size: f64,
    /// Size of one individuals output, bytes.
    pub individuals_out_size: f64,
    /// Size of one merged-individuals file, bytes.
    pub merged_size: f64,
    /// Size of one sifting input, bytes.
    pub sifting_in_size: f64,
    /// Size of one sifted output, bytes.
    pub sifted_size: f64,
    /// Size of the populations input, bytes.
    pub populations_in_size: f64,
    /// Size of the processed populations file, bytes.
    pub populations_out_size: f64,
    /// Size of one overlap/frequency result, bytes.
    pub result_size: f64,
    /// Sequential compute seconds per task category, converted to flops at
    /// the Cori per-core speed.
    pub seconds: GenomesSeconds,
    /// Cores requested per task category.
    pub cores: GenomesCores,
}

/// Sequential compute seconds per task category.
#[derive(Debug, Clone, Copy)]
pub struct GenomesSeconds {
    /// individuals
    pub individuals: f64,
    /// individuals_merge
    pub merge: f64,
    /// sifting
    pub sifting: f64,
    /// populations
    pub populations: f64,
    /// mutation_overlap
    pub overlap: f64,
    /// frequency
    pub frequency: f64,
}

/// Cores requested per task category.
#[derive(Debug, Clone, Copy)]
pub struct GenomesCores {
    /// individuals
    pub individuals: usize,
    /// individuals_merge
    pub merge: usize,
    /// sifting
    pub sifting: usize,
    /// populations
    pub populations: usize,
    /// mutation_overlap
    pub overlap: usize,
    /// frequency
    pub frequency: usize,
}

impl GenomesConfig {
    /// The paper's 22-chromosome, 903-task instance.
    pub fn paper_instance() -> Self {
        GenomesConfig::new(22)
    }

    /// An instance over `chromosomes` chromosomes with the paper-derived
    /// per-chromosome structure and sizes.
    pub fn new(chromosomes: usize) -> Self {
        GenomesConfig {
            chromosomes,
            individuals_per_chromosome: 25,
            overlap_per_chromosome: 7,
            frequency_per_chromosome: 7,
            // 22 × 25 × 90 MB ≈ 49.5 GB of chunks plus 22 × 100 MB of
            // sifting input ≈ 51.7 GB ≈ the stated 52 GB.
            chunk_size: 90e6,
            individuals_out_size: 20e6,
            merged_size: 250e6,
            sifting_in_size: 100e6,
            sifted_size: 10e6,
            populations_in_size: 5e6,
            populations_out_size: 5e6,
            result_size: 2e6,
            // Sequential compute seconds chosen to keep the instance
            // I/O-intensive (the paper's framing): at 0 % staged the PFS
            // dominates the makespan; fully staged, compute and BB I/O
            // balance. See EXPERIMENTS.md (Figure 13).
            seconds: GenomesSeconds {
                individuals: 30.0,
                merge: 20.0,
                sifting: 10.0,
                populations: 5.0,
                overlap: 40.0,
                frequency: 35.0,
            },
            cores: GenomesCores {
                individuals: 1,
                merge: 8,
                sifting: 1,
                populations: 1,
                overlap: 4,
                frequency: 4,
            },
        }
    }

    /// Expected number of tasks.
    pub fn task_count(&self) -> usize {
        self.chromosomes
            * (self.individuals_per_chromosome
                + 1
                + 1
                + self.overlap_per_chromosome
                + self.frequency_per_chromosome)
            + 1
    }

    fn flops(&self, seconds: f64) -> f64 {
        seconds * wfbb_calibration::params::CORI.gflops_per_core * 1e9
    }

    /// Builds the workflow.
    pub fn build(&self) -> Workflow {
        let mut b = WorkflowBuilder::new(format!("1000genomes-{}chr", self.chromosomes));

        // Global populations task.
        let pops_in = b.add_file("populations.in", self.populations_in_size);
        let pops_out = b.add_file("populations.proc", self.populations_out_size);
        b.task("populations")
            .category("populations")
            .flops(self.flops(self.seconds.populations))
            .cores(self.cores.populations)
            .input(pops_in)
            .output(pops_out)
            .add();

        for c in 0..self.chromosomes {
            // Individuals fan + merge.
            let mut ind_outs = Vec::with_capacity(self.individuals_per_chromosome);
            for k in 0..self.individuals_per_chromosome {
                let chunk = b.add_file(format!("chr{c}.chunk{k}.vcf"), self.chunk_size);
                let out = b.add_file(format!("chr{c}.ind{k}"), self.individuals_out_size);
                b.task(format!("individuals_c{c}_{k}"))
                    .category("individuals")
                    .flops(self.flops(self.seconds.individuals))
                    .cores(self.cores.individuals)
                    .input(chunk)
                    .output(out)
                    .add();
                ind_outs.push(out);
            }
            let merged = b.add_file(format!("chr{c}.merged"), self.merged_size);
            b.task(format!("individuals_merge_c{c}"))
                .category("individuals_merge")
                .flops(self.flops(self.seconds.merge))
                .cores(self.cores.merge)
                .inputs(ind_outs)
                .output(merged)
                .add();

            // Sifting.
            let sift_in = b.add_file(format!("chr{c}.sift.vcf"), self.sifting_in_size);
            let sifted = b.add_file(format!("chr{c}.sifted"), self.sifted_size);
            b.task(format!("sifting_c{c}"))
                .category("sifting")
                .flops(self.flops(self.seconds.sifting))
                .cores(self.cores.sifting)
                .input(sift_in)
                .output(sifted)
                .add();

            // Analysis fans.
            for k in 0..self.overlap_per_chromosome {
                let out = b.add_file(format!("chr{c}.overlap{k}"), self.result_size);
                b.task(format!("mutation_overlap_c{c}_{k}"))
                    .category("mutation_overlap")
                    .flops(self.flops(self.seconds.overlap))
                    .cores(self.cores.overlap)
                    .inputs([merged, sifted, pops_out])
                    .output(out)
                    .add();
            }
            for k in 0..self.frequency_per_chromosome {
                let out = b.add_file(format!("chr{c}.freq{k}"), self.result_size);
                b.task(format!("frequency_c{c}_{k}"))
                    .category("frequency")
                    .flops(self.flops(self.seconds.frequency))
                    .cores(self.cores.frequency)
                    .inputs([merged, sifted, pops_out])
                    .output(out)
                    .add();
            }
        }
        b.build()
            .expect("1000Genomes generator emits valid workflows")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_instance_has_903_tasks() {
        let config = GenomesConfig::paper_instance();
        assert_eq!(config.task_count(), 903);
        let wf = config.build();
        assert_eq!(wf.task_count(), 903);
    }

    #[test]
    fn paper_instance_matches_stated_data_volumes() {
        use wfbb_calibration::measured::genomes_facts;
        let wf = GenomesConfig::paper_instance().build();
        let footprint = wf.data_footprint();
        let input = wf.input_data_size();
        // Within 5 % of the stated ~67 GB / ~52 GB.
        assert!(
            (footprint / genomes_facts::FOOTPRINT_BYTES - 1.0).abs() < 0.05,
            "footprint {footprint}"
        );
        assert!(
            (input / genomes_facts::INPUT_BYTES - 1.0).abs() < 0.05,
            "input {input}"
        );
        let share = input / footprint;
        assert!(
            (share - genomes_facts::INPUT_SHARE).abs() < 0.05,
            "share {share}"
        );
    }

    #[test]
    fn structure_follows_figure_12() {
        let wf = GenomesConfig::new(2).build();
        // merge depends on all individuals of its chromosome.
        let merge = wf.task_by_name("individuals_merge_c0").unwrap();
        assert_eq!(wf.dependencies(merge.id).len(), 25);
        // overlap depends on merge, sifting, and populations.
        let overlap = wf.task_by_name("mutation_overlap_c0_0").unwrap();
        let dep_names: Vec<String> = wf
            .dependencies(overlap.id)
            .iter()
            .map(|&d| wf.task(d).category.clone())
            .collect();
        assert!(dep_names.contains(&"individuals_merge".to_string()));
        assert!(dep_names.contains(&"sifting".to_string()));
        assert!(dep_names.contains(&"populations".to_string()));
    }

    #[test]
    fn depth_and_width_are_as_expected() {
        let wf = GenomesConfig::new(3).build();
        // individuals/sifting/populations -> merge -> overlap/frequency.
        assert_eq!(wf.depth(), 3);
        // The widest level is the individuals fan.
        assert!(wf.width() >= 75);
    }

    #[test]
    fn task_categories_are_complete() {
        let wf = GenomesConfig::new(1).build();
        let mut cats: Vec<&str> = wf.tasks().iter().map(|t| t.category.as_str()).collect();
        cats.sort_unstable();
        cats.dedup();
        assert_eq!(
            cats,
            vec![
                "frequency",
                "individuals",
                "individuals_merge",
                "mutation_overlap",
                "populations",
                "sifting"
            ]
        );
    }

    #[test]
    fn chromosome_count_scales_tasks_linearly() {
        let t1 = GenomesConfig::new(1).build().task_count();
        let t4 = GenomesConfig::new(4).build().task_count();
        assert_eq!(t4 - 1, 4 * (t1 - 1), "per-chromosome block repeats");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn generator_counts_are_exact(chromosomes in 1usize..8) {
                let config = GenomesConfig::new(chromosomes);
                let wf = config.build();
                prop_assert_eq!(wf.task_count(), config.task_count());
                // Inputs: chunks + sifting inputs + populations input.
                let expected_inputs =
                    chromosomes * (config.individuals_per_chromosome + 1) + 1;
                prop_assert_eq!(wf.input_files().len(), expected_inputs);
                prop_assert_eq!(wf.topological_order().len(), wf.task_count());
            }
        }
    }
}
