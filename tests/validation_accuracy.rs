//! Validation-accuracy integration tests: the measured-vs-simulated
//! comparisons of the paper's Figures 10 and 11, on reduced sweeps.
//!
//! "Measured" is the measurement emulator (our stand-in for the real
//! Cori/Summit runs; see DESIGN.md §2); "simulated" is the clean model.
//! The assertions bound the mean absolute percentage error to the same
//! order as the paper's reported 5.6–15.9 %.

use wfbb::calibration::error::mean_absolute_percentage_error;
use wfbb::prelude::*;

fn measured_mean(
    emulator: &Emulator,
    platform: &wfbb::platform::PlatformSpec,
    workflow: &wfbb::workflow::Workflow,
    placement: &PlacementPolicy,
    reps: u64,
) -> f64 {
    (0..reps)
        .map(|rep| {
            emulator
                .run(platform, workflow, placement, rep)
                .unwrap()
                .makespan
                .seconds()
        })
        .sum::<f64>()
        / reps as f64
}

fn simulated(
    platform: &wfbb::platform::PlatformSpec,
    workflow: &wfbb::workflow::Workflow,
    placement: &PlacementPolicy,
) -> f64 {
    SimulationBuilder::new(platform.clone(), workflow.clone())
        .placement(placement.clone())
        .run()
        .unwrap()
        .makespan
        .seconds()
}

#[test]
fn staging_sweep_errors_stay_in_the_papers_band() {
    let emulator = Emulator::default();
    // Paper Fig 10 errors: 5.6 / 12.8 / 6.5 %. Allow 3x headroom.
    for (platform, bound) in [
        (wfbb::platform::presets::cori(1, BbMode::Private), 20.0),
        (wfbb::platform::presets::cori(1, BbMode::Striped), 30.0),
        (wfbb::platform::presets::summit(1), 20.0),
    ] {
        let wf = SwarpConfig::new(1).build();
        let mut measured = Vec::new();
        let mut sim = Vec::new();
        for fraction in [0.0, 0.5, 1.0] {
            let policy = PlacementPolicy::FractionToBb { fraction };
            measured.push(measured_mean(&emulator, &platform, &wf, &policy, 3));
            sim.push(simulated(&platform, &wf, &policy));
        }
        let mape = mean_absolute_percentage_error(&measured, &sim);
        assert!(
            mape < bound,
            "{}: error {mape:.1}% exceeds bound {bound}%",
            platform.name
        );
    }
}

#[test]
fn pipeline_sweep_errors_stay_bounded() {
    let emulator = Emulator::default();
    // Paper Fig 11 errors: 11.8 / 11.6 / 15.9 %. Allow headroom.
    for platform in wfbb::platform::presets::paper_configs(1) {
        let policy = PlacementPolicy::AllBb;
        let mut measured = Vec::new();
        let mut sim = Vec::new();
        for pipelines in [1usize, 4, 16] {
            let wf = SwarpConfig::new(pipelines).with_cores_per_task(1).build();
            measured.push(measured_mean(&emulator, &platform, &wf, &policy, 3));
            sim.push(simulated(&platform, &wf, &policy));
        }
        let mape = mean_absolute_percentage_error(&measured, &sim);
        assert!(
            mape < 40.0,
            "{}: error {mape:.1}% out of band",
            platform.name
        );
    }
}

#[test]
fn simulator_tracks_measured_trends_not_just_magnitudes() {
    // Both series must agree on the *direction* of every paper trend.
    let emulator = Emulator::default();
    let platform = wfbb::platform::presets::summit(1);
    let wf = SwarpConfig::new(1).build();
    let m0 = measured_mean(
        &emulator,
        &platform,
        &wf,
        &PlacementPolicy::FractionToBb { fraction: 0.0 },
        3,
    );
    let m1 = measured_mean(
        &emulator,
        &platform,
        &wf,
        &PlacementPolicy::FractionToBb { fraction: 1.0 },
        3,
    );
    let s0 = simulated(
        &platform,
        &wf,
        &PlacementPolicy::FractionToBb { fraction: 0.0 },
    );
    let s1 = simulated(
        &platform,
        &wf,
        &PlacementPolicy::FractionToBb { fraction: 1.0 },
    );
    assert!(m1 < m0, "measured: staging helps on Summit");
    assert!(s1 < s0, "simulated: staging helps on Summit");
}

#[test]
fn striped_anomaly_appears_only_in_measurements() {
    // The 75 % stage-in anomaly is a platform quirk the clean model
    // (correctly, per the paper) does not reproduce.
    let emulator = Emulator::default();
    let platform = wfbb::platform::presets::cori(1, BbMode::Striped);
    let wf = SwarpConfig::new(1).build();
    let at75 = PlacementPolicy::FractionToBb { fraction: 0.75 };
    let at100 = PlacementPolicy::FractionToBb { fraction: 1.0 };

    let m75 = emulator
        .run(&platform, &wf, &at75, 0)
        .unwrap()
        .stage_in_time;
    let m100 = emulator
        .run(&platform, &wf, &at100, 0)
        .unwrap()
        .stage_in_time;
    assert!(m75 > m100, "measured anomaly: {m75} !> {m100}");

    let s75 = SimulationBuilder::new(platform.clone(), wf.clone())
        .placement(at75)
        .run()
        .unwrap()
        .stage_in_time;
    let s100 = SimulationBuilder::new(platform, wf)
        .placement(at100)
        .run()
        .unwrap()
        .stage_in_time;
    assert!(s75 < s100, "clean model stays linear: {s75} !< {s100}");
}

#[test]
fn emulator_variability_ordering_matches_figure_8() {
    let emulator = Emulator::default();
    let wf = SwarpConfig::new(4).with_cores_per_task(1).build();
    let policy = PlacementPolicy::AllBb;
    let cv = |platform: &wfbb::platform::PlatformSpec| {
        let runs: Vec<f64> = (0..12)
            .map(|rep| {
                emulator
                    .run(platform, &wf, &policy, rep)
                    .unwrap()
                    .makespan
                    .seconds()
            })
            .collect();
        wfbb::calibration::error::coefficient_of_variation(&runs)
    };
    let private = cv(&wfbb::platform::presets::cori(1, BbMode::Private));
    let striped = cv(&wfbb::platform::presets::cori(1, BbMode::Striped));
    let onnode = cv(&wfbb::platform::presets::summit(1));
    assert!(
        striped > private,
        "striped varies most: {striped} vs {private}"
    );
    assert!(
        private > onnode,
        "on-node is steadiest: {private} vs {onnode}"
    );
}
