//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, API-compatible subset of `rand` 0.8: a seedable deterministic
//! generator (`rngs::StdRng`) and `Rng::gen_range` over integer and float
//! ranges. The generator is xoshiro256++ seeded via SplitMix64 — not the same
//! stream as upstream `StdRng` (which is ChaCha12), but deterministic, well
//! distributed, and stable across platforms, which is all the workspace needs
//! (seeded workload generators and noise injection).

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: 64 uniformly distributed bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must be in [0, 1], got {p}"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction of a generator from seed material, mirroring
/// `rand::SeedableRng` (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled from, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits onto `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Modulo reduction; the bias is ~span/2^64, irrelevant for
                // test-data generation.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span as u64) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // Guard against round-up to the (exclusive) upper bound.
        if v >= self.end {
            f64::from_bits(self.end.to_bits() - 1).max(self.start)
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + (end - start) * ((rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f32 {
        (Range {
            start: self.start as f64,
            end: self.end as f64,
        })
        .sample_single(rng) as f32
    }
}

pub mod rngs {
    //! Concrete generators (only `StdRng` is provided).

    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (xoshiro256++).
    ///
    /// Upstream `StdRng` is ChaCha12; the exact stream differs but every
    /// property relied on in this workspace (determinism for a fixed seed,
    /// uniformity) holds.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                Self::splitmix(&mut state),
                Self::splitmix(&mut state),
                Self::splitmix(&mut state),
                Self::splitmix(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn int_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1usize..=3);
            assert!((1..=3).contains(&w));
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(1e6..64e6);
            assert!((1e6..64e6).contains(&v));
            let u = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "suspicious coin: {heads}");
    }
}
