//! # wfbb-simcore — discrete-event fluid simulation kernel
//!
//! This crate implements the simulation substrate that the paper obtains from
//! SimGrid: a discrete-event engine in which *activities* (data flows and
//! delays) compete for *resources* (network links, disks, CPU cores) whose
//! capacity is shared **max–min fairly** among all concurrent activities
//! ("progressive filling", the classic fluid network model).
//!
//! The engine is deliberately small and deterministic:
//!
//! * [`Engine`] owns resources and active activities and exposes a *pull*
//!   API: callers spawn activities and repeatedly call [`Engine::step`] to
//!   advance simulated time to the next completion. Higher layers (the
//!   workflow management system in `wfbb-wms`) drive the simulation by
//!   reacting to completions — no coroutines or callbacks are needed.
//! * A [`FlowSpec`] describes a fluid activity: an amount of work (bytes or
//!   core-seconds) streamed across a route of resources after an initial
//!   fixed latency. Per-flow rate caps model activities that cannot use more
//!   than their allocated share (e.g. a 1-core task on a 32-core host).
//! * [`fairshare::solve`] computes the bandwidth allocation; its invariants
//!   (capacity conservation, bottleneck optimality, order independence) are
//!   property-tested.
//!
//! Simultaneous completions are delivered in ascending activity-id order, so
//! a simulation is a pure function of its inputs.
//!
//! Beyond the simulation itself, the kernel is observable: [`trace`]
//! records time-stamped start/end events, [`stats`] accumulates
//! per-resource utilization counters, and [`telemetry`] adds per-resource
//! rate/queue-depth time series, windowed utilization histograms, and
//! engine-internal counters (solver and event-heap activity). Telemetry
//! sampling is off by default and never affects simulated times.
//!
//! ```
//! use wfbb_simcore::{Engine, FlowSpec};
//!
//! let mut engine: Engine<&'static str> = Engine::new();
//! let link = engine.add_resource("link", 100.0); // 100 bytes/s
//! engine.spawn_flow(FlowSpec::new(500.0, vec![link]), "a");
//! engine.spawn_flow(FlowSpec::new(500.0, vec![link]), "b");
//! // Two flows share the link fairly: each gets 50 bytes/s.
//! let c = engine.step().unwrap();
//! assert!((c.time.seconds() - 10.0).abs() < 1e-9);
//! ```

#![deny(missing_docs)]

pub mod activity;
pub mod engine;
pub mod fairshare;
pub mod fault;
pub mod ids;
pub mod partition;
pub mod resource;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod trace;

pub use activity::FlowSpec;
pub use engine::{
    Cancelled, Completion, Engine, EngineConfig, EngineError, EngineSnapshot, SolveMode,
};
pub use fairshare::Binding;
pub use fault::{seeded_failures, CapacityFault, FaultPlan};
pub use ids::{ActivityId, ResourceId};
pub use partition::PartitionWorkspace;
pub use resource::Resource;
pub use stats::ResourceStats;
pub use telemetry::{
    ContentionRecord, EngineCounters, ResourceBlame, TelemetryConfig, TelemetrySnapshot,
};
pub use time::SimTime;
pub use trace::{TraceEvent, TraceEventKind, TraceLog};

/// Numerical tolerance used throughout the kernel when comparing simulated
/// times, remaining work, and bandwidth allocations.
pub const EPSILON: f64 = 1e-9;
