//! Machine-wide burst-buffer capacity ledger for multi-job campaigns.
//!
//! On DataWarp-style machines the batch system carves the shared BB
//! pool into per-job allocations at admission time and returns them
//! when the job ends (normally or not). [`BbPool`] is that ledger: a
//! campaign scheduler reserves a job's requested bytes before starting
//! it and releases them exactly once afterwards. The pool is pure
//! bookkeeping — actual BB *occupancy* during a run is still tracked by
//! the executor against the job's carved-out capacity slice.
//!
//! Invariants (checked on every operation, and pinned by property tests
//! in `tests/bb_reservation.rs`):
//!
//! * free capacity never goes negative;
//! * `free + Σ granted == capacity` at all times;
//! * after every job has released, `free == capacity` again.

use std::collections::BTreeMap;

/// Shared burst-buffer capacity ledger (bytes).
#[derive(Debug, Clone)]
pub struct BbPool {
    capacity: f64,
    free: f64,
    granted: BTreeMap<u32, f64>,
}

impl BbPool {
    /// Creates a pool of `capacity` bytes (the machine-wide aggregate
    /// BB capacity; may be `0.0` on BB-less platforms).
    ///
    /// # Panics
    /// Panics if `capacity` is negative or not finite.
    pub fn new(capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity >= 0.0,
            "BB pool capacity must be finite and non-negative"
        );
        BbPool {
            capacity,
            free: capacity,
            granted: BTreeMap::new(),
        }
    }

    /// Total pool capacity, bytes.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Currently unreserved bytes.
    pub fn free(&self) -> f64 {
        self.free
    }

    /// Bytes currently granted to `job`, or `None` if it holds nothing.
    pub fn granted(&self, job: u32) -> Option<f64> {
        self.granted.get(&job).copied()
    }

    /// Whether a request of `bytes` could be reserved right now.
    pub fn fits(&self, bytes: f64) -> bool {
        bytes <= self.free
    }

    /// Reserves `bytes` for `job`. Returns `false` (and changes
    /// nothing) if the pool cannot cover the request.
    ///
    /// # Panics
    /// Panics if `bytes` is negative/non-finite or `job` already holds
    /// a grant (jobs reserve exactly once).
    pub fn try_reserve(&mut self, job: u32, bytes: f64) -> bool {
        assert!(
            bytes.is_finite() && bytes >= 0.0,
            "BB request must be finite and non-negative"
        );
        assert!(
            !self.granted.contains_key(&job),
            "job {job} already holds a BB grant"
        );
        if !self.fits(bytes) {
            return false;
        }
        self.free -= bytes;
        self.granted.insert(job, bytes);
        debug_assert!(self.free >= -1e-6, "free BB capacity went negative");
        true
    }

    /// Releases `job`'s grant, returning the freed bytes (`0.0` if the
    /// job held nothing — releasing twice is a no-op, so fault paths
    /// can release unconditionally).
    pub fn release(&mut self, job: u32) -> f64 {
        let bytes = self.granted.remove(&job).unwrap_or(0.0);
        self.free = (self.free + bytes).min(self.capacity);
        bytes
    }

    /// `free + Σ granted == capacity` within `tol` — the conservation
    /// invariant the property tests assert after every operation.
    pub fn is_conserved(&self, tol: f64) -> bool {
        let held: f64 = self.granted.values().sum();
        self.free >= 0.0 && (self.free + held - self.capacity).abs() <= tol
    }

    /// Shrinks the pool by `bytes` (a BB stripe died mid-campaign and
    /// its capacity is gone). Unreserved capacity absorbs the loss
    /// first; any remainder is clawed back from granted reservations in
    /// ascending job-id order (deterministic, exactly conservative — no
    /// proportional rounding). Returns the `(job, clawed bytes)` pairs
    /// so the scheduler can shrink the affected jobs' bookkeeping; jobs
    /// whose grant shrank to zero keep a zero-byte grant (they still
    /// release exactly once).
    ///
    /// Conservation extends across the shrink: afterwards
    /// `free + Σ granted == capacity_new` holds *exactly* (capacity is
    /// re-derived from the ledger), with `capacity_new` equal to
    /// `max(capacity - bytes, 0)` up to float rounding, and `free`
    /// never goes negative.
    ///
    /// # Panics
    /// Panics if `bytes` is negative or not finite.
    pub fn shrink(&mut self, bytes: f64) -> Vec<(u32, f64)> {
        assert!(
            bytes.is_finite() && bytes >= 0.0,
            "BB pool shrink must be finite and non-negative"
        );
        let lost = bytes.min(self.capacity);
        let from_free = lost.min(self.free);
        self.free -= from_free;
        let mut remaining = lost - from_free;
        let mut clawed = Vec::new();
        for (&job, grant) in self.granted.iter_mut() {
            if remaining <= 0.0 {
                break;
            }
            let take = remaining.min(*grant);
            if take > 0.0 {
                *grant -= take;
                remaining -= take;
                clawed.push((job, take));
            }
        }
        // Re-derive capacity from the post-clawback ledger instead of
        // subtracting `lost`: the two agree to rounding, but this form
        // makes conservation *exact* by construction, so float residue
        // accumulated at a large capacity scale cannot outlive a shrink
        // to a much smaller pool.
        let held: f64 = self.granted.values().sum();
        self.capacity = self.free + held;
        debug_assert!(self.is_conserved(0.0), "shrink broke conservation");
        clawed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_then_release_restores_the_pool() {
        let mut pool = BbPool::new(10.0);
        assert!(pool.try_reserve(1, 6.0));
        assert!(!pool.fits(5.0));
        assert!(pool.try_reserve(2, 4.0));
        assert_eq!(pool.free(), 0.0);
        assert!(!pool.try_reserve(3, 1e-9), "an exhausted pool rejects");
        assert_eq!(pool.release(1), 6.0);
        assert_eq!(pool.release(2), 4.0);
        assert_eq!(pool.free(), pool.capacity());
        assert!(pool.is_conserved(1e-12));
    }

    #[test]
    fn double_release_is_a_no_op() {
        let mut pool = BbPool::new(5.0);
        assert!(pool.try_reserve(7, 5.0));
        assert_eq!(pool.release(7), 5.0);
        assert_eq!(pool.release(7), 0.0);
        assert_eq!(pool.free(), 5.0);
    }

    #[test]
    #[should_panic(expected = "already holds")]
    fn double_reserve_panics() {
        let mut pool = BbPool::new(5.0);
        assert!(pool.try_reserve(1, 1.0));
        let _ = pool.try_reserve(1, 1.0);
    }

    #[test]
    fn zero_byte_grants_are_fine() {
        let mut pool = BbPool::new(0.0);
        assert!(pool.try_reserve(0, 0.0), "BB-less jobs reserve 0 bytes");
        assert_eq!(pool.release(0), 0.0);
        assert!(pool.is_conserved(0.0));
    }

    #[test]
    fn shrink_takes_free_capacity_first() {
        let mut pool = BbPool::new(10.0);
        assert!(pool.try_reserve(1, 4.0));
        let clawed = pool.shrink(3.0); // 6 free covers the loss
        assert!(clawed.is_empty());
        assert_eq!(pool.capacity(), 7.0);
        assert_eq!(pool.free(), 3.0);
        assert_eq!(pool.granted(1), Some(4.0));
        assert!(pool.is_conserved(1e-12));
    }

    #[test]
    fn shrink_claws_back_grants_in_job_order() {
        let mut pool = BbPool::new(10.0);
        assert!(pool.try_reserve(2, 4.0));
        assert!(pool.try_reserve(5, 6.0));
        // Nothing free: 5 bytes must come out of the grants, job 2 first.
        let clawed = pool.shrink(5.0);
        assert_eq!(clawed, vec![(2, 4.0), (5, 1.0)]);
        assert_eq!(pool.capacity(), 5.0);
        assert_eq!(pool.free(), 0.0);
        assert_eq!(pool.granted(2), Some(0.0), "emptied grants stay open");
        assert_eq!(pool.granted(5), Some(5.0));
        assert!(pool.is_conserved(1e-12));
        // The survivors still release exactly once.
        assert_eq!(pool.release(2), 0.0);
        assert_eq!(pool.release(5), 5.0);
        assert_eq!(pool.free(), pool.capacity());
    }

    #[test]
    fn shrink_clamps_at_zero_capacity() {
        let mut pool = BbPool::new(4.0);
        assert!(pool.try_reserve(1, 4.0));
        let clawed = pool.shrink(100.0);
        assert_eq!(clawed, vec![(1, 4.0)]);
        assert_eq!(pool.capacity(), 0.0);
        assert_eq!(pool.free(), 0.0);
        assert!(pool.is_conserved(0.0));
        // Later admissions see the empty pool.
        assert!(!pool.try_reserve(9, 1.0));
        assert!(pool.try_reserve(9, 0.0));
    }
}
