//! Campaign workload sources: a plain-text workload file format and a
//! seeded synthetic generator.
//!
//! # Workload file format
//!
//! One job per line, `#` starts a comment, tokens are whitespace
//! separated `key=value` pairs:
//!
//! ```text
//! # workflow        nodes  bb (bytes)  walltime estimate (s)
//! workflow=swarp:2:8 nodes=2 bb=4e9 walltime=400 submit=0   name=swarp-a
//! workflow=genomes:2 nodes=4 bb=12e9 walltime=3000 submit=60 placement=threshold:1e9
//! workflow=swarp:1:8 nodes=1 bb=2e9 walltime=300 submit=90  kill=resample_0_3@20 retries=2
//! ```
//!
//! Required keys: `workflow`, `nodes`, `bb`, `walltime`. Optional:
//! `submit` (default 0), `name` (default `job<line-index>`),
//! `placement` (`allbb` | `allpfs` | `fraction:<f>` | `threshold:<bytes>`),
//! `kill=<task>@<time>` (repeatable), `retries=<n>`,
//! `checkpoint=<interval>@<bb|pfs>[:<bytes>]` (see
//! `wfbb_wms::CheckpointPolicy`).
//!
//! # Synthetic campaigns
//!
//! [`synthetic_jobs`] draws a seeded stream of jobs with exponential
//! interarrival times from a small mix of SWarp and 1000Genomes job
//! classes — the same SplitMix64 generator `wfbb_simcore::seeded_failures`
//! uses, so campaigns are reproducible from `(seed, config)` alone.

use crate::job::JobSpec;
use wfbb_storage::PlacementPolicy;
use wfbb_wms::CheckpointPolicy;
use wfbb_workflow::Workflow;
use wfbb_workloads::{GenomesConfig, SwarpConfig};

/// Error from workload parsing or generation.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadError(pub String);

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "workload error: {}", self.0)
    }
}

impl std::error::Error for WorkloadError {}

fn err<T>(msg: impl Into<String>) -> Result<T, WorkloadError> {
    Err(WorkloadError(msg.into()))
}

/// Builds a workflow from a campaign workflow spec: `swarp:<pipelines>`
/// `[:<cores>]` or `genomes:<chromosomes>`.
pub fn build_workflow(spec: &str) -> Result<Workflow, WorkloadError> {
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        ["swarp", p] | ["swarp", p, _] => {
            let pipelines: usize = p
                .parse()
                .map_err(|_| WorkloadError(format!("bad pipeline count in '{spec}'")))?;
            if pipelines == 0 {
                return err(format!("'{spec}': pipeline count must be >= 1"));
            }
            let mut cfg = SwarpConfig::new(pipelines);
            if let [_, _, c] = parts.as_slice() {
                let cores: usize = c
                    .parse()
                    .map_err(|_| WorkloadError(format!("bad cores-per-task in '{spec}'")))?;
                cfg = cfg.with_cores_per_task(cores);
            }
            Ok(cfg.build())
        }
        ["genomes", c] => {
            let chromosomes: usize = c
                .parse()
                .map_err(|_| WorkloadError(format!("bad chromosome count in '{spec}'")))?;
            if chromosomes == 0 {
                return err(format!("'{spec}': chromosome count must be >= 1"));
            }
            Ok(GenomesConfig::new(chromosomes).build())
        }
        _ => err(format!(
            "unknown workflow spec '{spec}' (expected swarp:<p>[:<c>] or genomes:<c>)"
        )),
    }
}

fn parse_placement(s: &str) -> Result<PlacementPolicy, WorkloadError> {
    if s == "allbb" {
        return Ok(PlacementPolicy::AllBb);
    }
    if s == "allpfs" {
        return Ok(PlacementPolicy::AllPfs);
    }
    if let Some(f) = s.strip_prefix("fraction:") {
        let fraction: f64 = f
            .parse()
            .map_err(|_| WorkloadError(format!("bad placement fraction '{s}'")))?;
        if !(0.0..=1.0).contains(&fraction) {
            return err(format!("placement fraction {fraction} outside [0, 1]"));
        }
        return Ok(PlacementPolicy::FractionToBb { fraction });
    }
    if let Some(b) = s.strip_prefix("threshold:") {
        let min_bytes: f64 = b
            .parse()
            .map_err(|_| WorkloadError(format!("bad placement threshold '{s}'")))?;
        return Ok(PlacementPolicy::BySizeThreshold { min_bytes });
    }
    err(format!(
        "unknown placement '{s}' (allbb|allpfs|fraction:<f>|threshold:<bytes>)"
    ))
}

/// Parses a workload file (see the module docs for the format).
pub fn parse_workload(text: &str) -> Result<Vec<JobSpec>, WorkloadError> {
    let mut jobs = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let at = |m: &str| format!("line {}: {m}", lineno + 1);
        let mut workflow_spec = None;
        let mut nodes = None;
        let mut bb = None;
        let mut walltime = None;
        let mut submit = 0.0f64;
        let mut name = None;
        let mut placement = PlacementPolicy::AllBb;
        let mut kills: Vec<(String, f64)> = Vec::new();
        let mut retries = 3u32;
        let mut checkpoint: Option<CheckpointPolicy> = None;
        for token in line.split_whitespace() {
            let Some((key, value)) = token.split_once('=') else {
                return err(at(&format!("expected key=value, got '{token}'")));
            };
            match key {
                "workflow" => workflow_spec = Some(value.to_string()),
                "nodes" => {
                    nodes = Some(
                        value
                            .parse::<usize>()
                            .map_err(|_| WorkloadError(at(&format!("bad nodes '{value}'"))))?,
                    )
                }
                "bb" => {
                    bb = Some(
                        value
                            .parse::<f64>()
                            .map_err(|_| WorkloadError(at(&format!("bad bb '{value}'"))))?,
                    )
                }
                "walltime" => {
                    walltime = Some(
                        value
                            .parse::<f64>()
                            .map_err(|_| WorkloadError(at(&format!("bad walltime '{value}'"))))?,
                    )
                }
                "submit" => {
                    submit = value
                        .parse::<f64>()
                        .map_err(|_| WorkloadError(at(&format!("bad submit '{value}'"))))?
                }
                "name" => name = Some(value.to_string()),
                "placement" => {
                    placement = parse_placement(value).map_err(|e| WorkloadError(at(&e.0)))?
                }
                "kill" => {
                    let Some((task, time)) = value.split_once('@') else {
                        return err(at(&format!("kill must be <task>@<time>, got '{value}'")));
                    };
                    let t: f64 = time
                        .parse()
                        .map_err(|_| WorkloadError(at(&format!("bad kill time '{time}'"))))?;
                    kills.push((task.to_string(), t));
                }
                "retries" => {
                    retries = value
                        .parse::<u32>()
                        .map_err(|_| WorkloadError(at(&format!("bad retries '{value}'"))))?
                }
                "checkpoint" => {
                    checkpoint = Some(
                        CheckpointPolicy::parse(value)
                            .map_err(|e| WorkloadError(at(&e.message)))?,
                    )
                }
                _ => return err(at(&format!("unknown key '{key}'"))),
            }
        }
        let workflow_spec = workflow_spec.ok_or_else(|| WorkloadError(at("missing workflow=")))?;
        let nodes = nodes.ok_or_else(|| WorkloadError(at("missing nodes=")))?;
        let bb = bb.ok_or_else(|| WorkloadError(at("missing bb=")))?;
        let walltime = walltime.ok_or_else(|| WorkloadError(at("missing walltime=")))?;
        let workflow = build_workflow(&workflow_spec).map_err(|e| WorkloadError(at(&e.0)))?;
        let mut job = JobSpec::new(
            name.unwrap_or_else(|| format!("job{}", jobs.len())),
            submit,
            workflow_spec,
            workflow,
            nodes,
            bb,
            walltime,
        )
        .with_placement(placement)
        .with_max_attempts(retries);
        for (task, time) in kills {
            job = job.with_kill(task, time);
        }
        if let Some(policy) = checkpoint {
            job = job.with_checkpoint(policy);
        }
        jobs.push(job);
    }
    // Queue order is submit time with job index as the tie-break; sort
    // stably so the file's order is the tie-break.
    jobs.sort_by(|a, b| a.submit.total_cmp(&b.submit));
    Ok(jobs)
}

/// Shape of a synthetic campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Number of jobs to draw.
    pub jobs: usize,
    /// Mean of the exponential interarrival distribution, seconds.
    pub mean_interarrival: f64,
    /// Multiplier on every job class's base BB request — crank it up to
    /// oversubscribe the pool and make the policies diverge.
    pub bb_request_scale: f64,
    /// Largest node request any class may draw (clamped to this).
    pub max_nodes: usize,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            jobs: 20,
            mean_interarrival: 30.0,
            bb_request_scale: 1.0,
            max_nodes: 4,
        }
    }
}

/// SplitMix64 — the same tiny deterministic generator
/// `wfbb_simcore::seeded_failures` uses, re-implemented here so the
/// scheduler does not depend on simcore's private helpers.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)` by bounded rejection sampling: draws whose
    /// residue class is over-represented in `[0, 2^64)` are rejected, so
    /// every value is *exactly* equally likely (a plain `% n` is biased
    /// toward small values whenever `n` does not divide `2^64`). For
    /// power-of-two `n` — like the current 4-entry class table — the
    /// threshold is 0, nothing is ever rejected, and the output stream
    /// is bit-identical to the old modulo code.
    fn next_bounded(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // 2^64 mod n, computed without overflowing u64.
        let threshold = (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v >= threshold {
                return v % n;
            }
        }
    }
}

/// A synthetic job class: workflow shape + base resource request.
struct JobClass {
    spec: &'static str,
    nodes: usize,
    /// Base BB request, bytes (scaled by `bb_request_scale` and jitter).
    bb: f64,
    /// Conservative walltime estimate, seconds.
    walltime: f64,
}

/// The synthetic mix: small/large SWarp and small/medium 1000Genomes,
/// with deliberately generous walltime estimates (backfilling's
/// guarantees assume conservative estimates, like real batch systems).
///
/// BB requests are *allocations*, not footprints: like real DataWarp
/// reservations they are TB-scale — sized against Cori's 25.6 TB
/// striped pool (5%–35% each at scale 1), so a `bb_request_scale`
/// around 2 makes concurrent requests oversubscribe the pool and the
/// scheduling policies diverge.
const CLASSES: [JobClass; 4] = [
    JobClass {
        spec: "swarp:1:8",
        nodes: 1,
        bb: 1.28e12,
        walltime: 600.0,
    },
    JobClass {
        spec: "swarp:2:8",
        nodes: 2,
        bb: 2.56e12,
        walltime: 600.0,
    },
    JobClass {
        spec: "genomes:2",
        nodes: 2,
        bb: 5.12e12,
        walltime: 2400.0,
    },
    JobClass {
        spec: "genomes:4",
        nodes: 4,
        bb: 8.96e12,
        walltime: 3600.0,
    },
];

/// Draws a deterministic synthetic campaign: exponential interarrivals
/// with the configured mean, job classes chosen uniformly, BB requests
/// jittered ±25% around the class base times `bb_request_scale`.
pub fn synthetic_jobs(seed: u64, cfg: &SyntheticConfig) -> Result<Vec<JobSpec>, WorkloadError> {
    if cfg.jobs == 0 {
        return err("synthetic campaign must have at least one job");
    }
    let positive = |x: f64| x.is_finite() && x > 0.0;
    if !positive(cfg.mean_interarrival) || !positive(cfg.bb_request_scale) {
        return err("mean_interarrival and bb_request_scale must be positive");
    }
    if cfg.max_nodes == 0 {
        return err("max_nodes must be >= 1");
    }
    let mut rng = SplitMix64::new(seed);
    let mut t = 0.0f64;
    let mut jobs = Vec::with_capacity(cfg.jobs);
    for i in 0..cfg.jobs {
        // Exponential interarrival: -ln(1-u) * mean, u in [0,1).
        t += -(1.0 - rng.next_f64()).ln() * cfg.mean_interarrival;
        let class = &CLASSES[rng.next_bounded(CLASSES.len() as u64) as usize];
        let jitter = 0.75 + 0.5 * rng.next_f64();
        let nodes = class.nodes.min(cfg.max_nodes);
        let workflow = build_workflow(class.spec)?;
        jobs.push(JobSpec::new(
            format!("j{i:02}-{}", class.spec.replace(':', "-")),
            t,
            class.spec,
            workflow,
            nodes,
            class.bb * cfg.bb_request_scale * jitter,
            class.walltime,
        ));
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_workload_file() {
        let text = "\
# a comment
workflow=swarp:1:8 nodes=1 bb=2e9 walltime=300 name=a
workflow=genomes:1 nodes=2 bb=4e9 walltime=5000 submit=60 placement=allpfs retries=1
workflow=swarp:2 nodes=2 bb=1e9 walltime=400 submit=30 kill=resample_0_0@10
";
        let jobs = parse_workload(text).unwrap();
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].name, "a");
        assert_eq!(jobs[0].nodes, 1);
        // Sorted by submit time.
        assert_eq!(jobs[1].submit, 30.0);
        assert_eq!(jobs[1].kills, vec![("resample_0_0".to_string(), 10.0)]);
        assert_eq!(jobs[2].placement, wfbb_storage::PlacementPolicy::AllPfs);
        assert_eq!(jobs[2].max_attempts, 1);
    }

    #[test]
    fn rejects_bad_lines() {
        assert!(parse_workload("workflow=swarp:1 nodes=1 bb=1e9").is_err());
        assert!(parse_workload("workflow=swarp:1 nodes=1 bb=1e9 walltime=10 bogus=1").is_err());
        assert!(parse_workload("workflow=tycho:1 nodes=1 bb=1e9 walltime=10").is_err());
        assert!(parse_workload("workflow=swarp:0 nodes=1 bb=1e9 walltime=10").is_err());
    }

    #[test]
    fn parses_checkpoint_policies() {
        let jobs = parse_workload(
            "workflow=swarp:1:8 nodes=1 bb=2e9 walltime=300 checkpoint=60@bb\n\
             workflow=swarp:1:8 nodes=1 bb=2e9 walltime=300 checkpoint=45@pfs:3e9\n\
             workflow=swarp:1:8 nodes=1 bb=2e9 walltime=300\n",
        )
        .unwrap();
        let a = jobs[0].checkpoint.unwrap();
        assert_eq!(a.interval, 60.0);
        assert_eq!(a.target, wfbb_wms::CheckpointTier::Bb);
        assert_eq!(a.bytes, None);
        let b = jobs[1].checkpoint.unwrap();
        assert_eq!(b.target, wfbb_wms::CheckpointTier::Pfs);
        assert_eq!(b.bytes, Some(3e9));
        assert!(jobs[2].checkpoint.is_none(), "checkpoint stays opt-in");
        // Parse errors carry the line number and the grammar message.
        let err = parse_workload("workflow=swarp:1 nodes=1 bb=1e9 walltime=10 checkpoint=60@tape")
            .unwrap_err();
        assert!(err.0.contains("line 1"), "{}", err.0);
    }

    #[test]
    fn synthetic_is_deterministic_and_seed_sensitive() {
        let cfg = SyntheticConfig::default();
        let a = synthetic_jobs(42, &cfg).unwrap();
        let b = synthetic_jobs(42, &cfg).unwrap();
        assert_eq!(a.len(), cfg.jobs);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.submit, y.submit);
            assert_eq!(x.bb_bytes, y.bb_bytes);
            assert_eq!(x.workflow_spec, y.workflow_spec);
        }
        let c = synthetic_jobs(43, &cfg).unwrap();
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.submit != y.submit
                || x.bb_bytes != y.bb_bytes
                || x.workflow_spec != y.workflow_spec),
            "different seeds should differ somewhere"
        );
    }

    #[test]
    fn synthetic_submits_are_nondecreasing() {
        let jobs = synthetic_jobs(7, &SyntheticConfig::default()).unwrap();
        for w in jobs.windows(2) {
            assert!(w[0].submit <= w[1].submit);
        }
    }

    #[test]
    fn bounded_sampling_matches_modulo_for_power_of_two_n() {
        // CLASSES.len() is 4, a power of two: the rejection threshold is
        // 0 and the draw stream must be bit-identical to the old
        // `next_u64() % n` code (no regenerated workload goldens).
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        for _ in 0..10_000 {
            assert_eq!(a.next_bounded(4), b.next_u64() % 4);
        }
    }

    #[test]
    fn bounded_sampling_is_unbiased_for_awkward_n() {
        // n = 3 does not divide 2^64; `% 3` over-represents some residues
        // by construction, while rejection sampling keeps every class
        // within tight binomial bounds of the uniform expectation.
        let mut rng = SplitMix64::new(1234);
        let n = 3u64;
        let draws = 300_000usize;
        let mut counts = [0usize; 3];
        for _ in 0..draws {
            let v = rng.next_bounded(n);
            assert!(v < n);
            counts[v as usize] += 1;
        }
        let expect = draws as f64 / n as f64;
        // ~13 standard deviations of slack: astronomically unlikely to
        // flake, tight enough to catch a systematic bias.
        let tol = 13.0 * (expect * (1.0 - 1.0 / n as f64)).sqrt();
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < tol,
                "class {i}: {c} draws vs expectation {expect:.0} ± {tol:.0}"
            );
        }
    }
}
