//! Runs every experiment in order (the full reproduction sweep),
//! writing all CSVs to `results/`.
fn main() {
    for name in wfbb_experiments::figures::NAMES {
        eprintln!(">>> {name}");
        wfbb_experiments::run_and_save(name);
    }
}
