//! # wfbb-workflow — scientific workflow DAGs
//!
//! The paper's application model: a workflow is a directed acyclic graph in
//! which vertices are tasks and edges are induced by the input/output files
//! of those tasks. Each task carries its sequential compute work (flops), an
//! Amdahl serial fraction, and the number of cores it requests; each file
//! carries a size in bytes.
//!
//! * [`WorkflowBuilder`] constructs workflows and validates them (single
//!   producer per file, acyclicity, valid references).
//! * [`Workflow`] offers structural queries: topological order, levels,
//!   critical path, data footprint, input/intermediate/output file
//!   classification.
//! * [`amdahl`] implements the speedup model of Equation (2).
//! * [`io`] serializes workflows to/from a JSON format (our equivalent of
//!   the WfFormat/DAX descriptions the paper's tooling consumes).

#![deny(missing_docs)]

pub mod amdahl;
pub mod analysis;
pub mod dot;
pub mod graph;
pub mod ids;
pub mod io;
pub mod lint;
pub mod stats;
pub mod wfcommons;

pub use amdahl::{amdahl_speedup, amdahl_time};
pub use graph::{File, Task, Workflow, WorkflowBuilder, WorkflowError};
pub use ids::{FileId, TaskId};
