//! Regenerates the paper's fig13 data; see `wfbb_experiments::figures`.
fn main() {
    wfbb_experiments::run_and_save("fig13");
}
