//! Runtime file-location registry.
//!
//! The executor consults the registry before every read (where is the file
//! now?) and records every write (a file exists once its producer finished
//! writing it). Reading a file that has no registered location is a
//! scheduling bug and panics loudly.

use wfbb_workflow::FileId;

use crate::tier::Location;

/// Tracks the concrete [`Location`] of every file during a simulated
/// execution.
#[derive(Debug, Clone, Default)]
pub struct FileRegistry {
    locations: Vec<Option<Location>>,
}

impl FileRegistry {
    /// Creates a registry for `file_count` files, all initially absent.
    pub fn new(file_count: usize) -> Self {
        FileRegistry {
            locations: vec![None; file_count],
        }
    }

    /// Records that `file` now resides at `location`.
    pub fn set(&mut self, file: FileId, location: Location) {
        self.locations[file.index()] = Some(location);
    }

    /// The location of `file`, if it exists yet.
    pub fn get(&self, file: FileId) -> Option<&Location> {
        self.locations[file.index()].as_ref()
    }

    /// The location of `file`, panicking if the file does not exist — used
    /// by the executor, where dependencies guarantee existence.
    pub fn require(&self, file: FileId) -> &Location {
        self.get(file)
            .unwrap_or_else(|| panic!("file {file} read before being produced or staged"))
    }

    /// Whether `file` currently exists somewhere.
    pub fn contains(&self, file: FileId) -> bool {
        self.get(file).is_some()
    }

    /// Number of files registered so far.
    pub fn registered_count(&self) -> usize {
        self.locations.iter().filter(|l| l.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_contains() {
        let mut r = FileRegistry::new(3);
        let f = FileId::from_index(1);
        assert!(!r.contains(f));
        r.set(f, Location::Pfs);
        assert!(r.contains(f));
        assert_eq!(r.get(f), Some(&Location::Pfs));
        assert_eq!(r.registered_count(), 1);
    }

    #[test]
    fn overwrite_moves_a_file() {
        let mut r = FileRegistry::new(1);
        let f = FileId::from_index(0);
        r.set(f, Location::Pfs);
        r.set(f, Location::SharedBb { bb_node: 0 });
        assert_eq!(r.get(f), Some(&Location::SharedBb { bb_node: 0 }));
    }

    #[test]
    #[should_panic(expected = "read before being produced")]
    fn require_missing_file_panics() {
        let r = FileRegistry::new(1);
        let _ = r.require(FileId::from_index(0));
    }
}
