//! End-to-end tests of the simulation service (`wfbb-serve`): the
//! determinism contract *through HTTP* (service campaign bytes ==
//! library campaign bytes), result-cache soundness (same request twice
//! → identical bytes, counted as a hit; any perturbation → a different
//! key), the typed quota errors (`429`/`413`/`504`), and the
//! `/v1/metrics` schema.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use wfbb::platform::{presets, BbMode};
use wfbb::sched::{
    run_campaign_logged, synthetic_jobs, BatchPolicy, CampaignConfig, SyntheticConfig,
};
use wfbb::serve::{JobRequest, QuotaLedger, ServeConfig, Server, ServerHandle, TenantQuota};

// The CI smoke campaign: `wfbb campaign --platform cori:striped --nodes 8
// --policy bb-aware --jobs 8 --seed 7 --max-nodes 2`.
const SMOKE_BODY: &str = r#"{"type":"campaign","platform":"cori:striped","nodes":8,
    "policy":"bb-aware","workload":{"type":"synthetic","seed":7,"jobs":8,"max_nodes":2}}"#;

// ---- a minimal HTTP/1.1 client (Connection: close lets us read to EOF) --

struct HttpResponse {
    status: u16,
    body: Vec<u8>,
}

fn http(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> HttpResponse {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body).expect("write body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> HttpResponse {
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a header/body separator");
    let head = std::str::from_utf8(&raw[..split]).expect("ascii head");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let chunked = lines
        .filter_map(|l| l.split_once(':'))
        .any(|(n, v)| n.eq_ignore_ascii_case("transfer-encoding") && v.trim() == "chunked");
    let payload = &raw[split + 4..];
    let body = if chunked {
        dechunk(payload)
    } else {
        payload.to_vec()
    };
    HttpResponse { status, body }
}

fn dechunk(mut payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    loop {
        let line_end = payload
            .windows(2)
            .position(|w| w == b"\r\n")
            .expect("chunk size line");
        let size = usize::from_str_radix(
            std::str::from_utf8(&payload[..line_end]).expect("ascii size"),
            16,
        )
        .expect("hex chunk size");
        payload = &payload[line_end + 2..];
        if size == 0 {
            return out;
        }
        out.extend_from_slice(&payload[..size]);
        payload = &payload[size + 2..];
    }
}

fn json_str(v: &serde_json::Value, key: &str) -> String {
    v.get(key)
        .and_then(|s| s.as_str())
        .unwrap_or_default()
        .to_string()
}

fn submit(addr: std::net::SocketAddr, tenant: &str, body: &str) -> (u16, serde_json::Value) {
    let r = http(
        addr,
        "POST",
        "/v1/jobs",
        &[("X-Tenant", tenant)],
        body.as_bytes(),
    );
    let v =
        serde_json::from_str(std::str::from_utf8(&r.body).expect("utf8 body")).expect("json body");
    (r.status, v)
}

/// Polls `/v1/jobs/<id>` until the job leaves queued/running (or the
/// deadline passes), returning the last (status, body) pair.
fn await_done(addr: std::net::SocketAddr, id: u64) -> (u16, serde_json::Value) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let r = http(addr, "GET", &format!("/v1/jobs/{id}"), &[], b"");
        let v: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&r.body).expect("utf8")).expect("json");
        let state = if r.status == 504 {
            json_str(v.get("job").expect("504 carries the job"), "state")
        } else {
            json_str(&v, "state")
        };
        if state != "queued" && state != "running" {
            return (r.status, v);
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn start(config: ServeConfig) -> ServerHandle {
    Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..config
    })
    .expect("bind ephemeral port")
    .start()
}

// ---- determinism through the service ------------------------------------

#[test]
fn http_campaign_bytes_match_the_library_run_and_repeat_hits_the_cache() {
    let server = start(ServeConfig::default());
    let addr = server.addr;

    let (status, job) = submit(addr, "alice", SMOKE_BODY);
    assert_eq!(status, 202, "first submission queues a real run");
    let id = job.get("id").unwrap().as_u64().unwrap();
    let (status, done) = await_done(addr, id);
    assert_eq!(status, 200);
    assert_eq!(json_str(&done, "state"), "done");
    assert_eq!(done.get("cached").unwrap().as_bool(), Some(false));

    let report = http(
        addr,
        "GET",
        &format!("/v1/jobs/{id}/artifacts/report.json"),
        &[],
        b"",
    );
    assert_eq!(report.status, 200);

    // The exact construction the CLI `campaign` subcommand performs for
    // the smoke flags — the service must be byte-identical to it.
    let jobs = synthetic_jobs(
        7,
        &SyntheticConfig {
            jobs: 8,
            max_nodes: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let config = CampaignConfig::new(presets::cori(8, BbMode::Striped))
        .with_policy(BatchPolicy::BbAware)
        .with_platform_label("cori:striped")
        .with_decision_log(true);
    let expected = run_campaign_logged(&config, &jobs).unwrap();
    assert_eq!(
        report.body,
        expected.report.to_json().into_bytes(),
        "service report.json must be byte-identical to the library run"
    );
    let csv = http(
        addr,
        "GET",
        &format!("/v1/jobs/{id}/artifacts/jobs.csv"),
        &[],
        b"",
    );
    assert_eq!(csv.body, expected.report.jobs_csv().into_bytes());
    let decisions = http(
        addr,
        "GET",
        &format!("/v1/jobs/{id}/artifacts/decisions.jsonl"),
        &[],
        b"",
    );
    assert_eq!(decisions.body, expected.log.to_jsonl().into_bytes());

    // Same request again: answered from the cache, same bytes, counted.
    let (status, repeat) = submit(addr, "alice", SMOKE_BODY);
    assert_eq!(status, 200, "cache hits answer immediately");
    assert_eq!(repeat.get("cached").unwrap().as_bool(), Some(true));
    assert_eq!(json_str(&repeat, "state"), "done");
    assert_eq!(
        json_str(&repeat, "input_hash"),
        json_str(&done, "input_hash"),
        "identical requests share one canonical input hash"
    );
    let id2 = repeat.get("id").unwrap().as_u64().unwrap();
    let report2 = http(
        addr,
        "GET",
        &format!("/v1/jobs/{id2}/artifacts/report.json"),
        &[],
        b"",
    );
    assert_eq!(
        report2.body, report.body,
        "cached bytes are the original bytes"
    );

    let metrics = http(addr, "GET", "/v1/metrics", &[], b"");
    let m: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&metrics.body).unwrap()).unwrap();
    assert_eq!(
        m.get("jobs").unwrap().get("from_cache").unwrap().as_u64(),
        Some(1)
    );
    assert_eq!(
        m.get("cache").unwrap().get("hits").unwrap().as_u64(),
        Some(1)
    );

    // A perturbed request (different seed) is a different key: a miss.
    let perturbed = SMOKE_BODY.replace("\"seed\":7", "\"seed\":8");
    let (status, other) = submit(addr, "alice", &perturbed);
    assert_eq!(status, 202, "perturbed request re-simulates");
    assert_ne!(
        json_str(&other, "input_hash"),
        json_str(&done, "input_hash")
    );
    let other_id = other.get("id").unwrap().as_u64().unwrap();
    let (_, other_done) = await_done(addr, other_id);
    assert_eq!(json_str(&other_done, "state"), "done");

    server.stop();
}

#[test]
fn progress_stream_ends_with_the_job_document() {
    let server = start(ServeConfig::default());
    let addr = server.addr;
    let (status, job) = submit(addr, "bob", SMOKE_BODY);
    assert_eq!(status, 202);
    let id = job.get("id").unwrap().as_u64().unwrap();
    let events = http(addr, "GET", &format!("/v1/jobs/{id}/events"), &[], b"");
    assert_eq!(events.status, 200);
    let text = String::from_utf8(events.body).expect("utf8 stream");
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty());
    for line in &lines[..lines.len() - 1] {
        let v: serde_json::Value = serde_json::from_str(line).expect("heartbeat json");
        assert_eq!(json_str(&v, "type"), "heartbeat");
    }
    let last: serde_json::Value = serde_json::from_str(lines.last().unwrap()).unwrap();
    assert_eq!(json_str(&last, "type"), "end");
    assert_eq!(json_str(last.get("job").unwrap(), "state"), "done");
    server.stop();
}

// ---- job retention (the jobs table stays bounded) -----------------------

#[test]
fn terminal_jobs_are_evicted_after_the_retention_ttl() {
    let server = start(ServeConfig {
        job_ttl: Duration::from_millis(100),
        ..Default::default()
    });
    let addr = server.addr;
    let (status, job) = submit(addr, "gail", SMOKE_BODY);
    assert_eq!(status, 202);
    let id = job.get("id").unwrap().as_u64().unwrap();
    let (status, _) = await_done(addr, id);
    assert_eq!(status, 200);

    // The reaper evicts the terminal entry once the TTL elapses...
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if http(addr, "GET", &format!("/v1/jobs/{id}"), &[], b"").status == 404 {
            break;
        }
        assert!(Instant::now() < deadline, "job {id} was never evicted");
        std::thread::sleep(Duration::from_millis(25));
    }
    let m: serde_json::Value = serde_json::from_str(
        std::str::from_utf8(&http(addr, "GET", "/v1/metrics", &[], b"").body).unwrap(),
    )
    .unwrap();
    assert!(m.get("jobs").unwrap().get("evicted").unwrap().as_u64() >= Some(1));

    // ...but the result cache is independent of job retention: the
    // same request is still answered from cache.
    let (status, repeat) = submit(addr, "gail", SMOKE_BODY);
    assert_eq!(status, 200, "cache survives job eviction");
    assert_eq!(repeat.get("cached").unwrap().as_bool(), Some(true));
    server.stop();
}

#[test]
fn terminal_job_count_is_capped_dropping_the_oldest_first() {
    let server = start(ServeConfig {
        max_jobs: 1,
        ..Default::default()
    });
    let addr = server.addr;
    let (_, first) = submit(addr, "hank", SMOKE_BODY);
    let first_id = first.get("id").unwrap().as_u64().unwrap();
    await_done(addr, first_id);
    let perturbed = SMOKE_BODY.replace("\"seed\":7", "\"seed\":9");
    let (_, second) = submit(addr, "hank", &perturbed);
    let second_id = second.get("id").unwrap().as_u64().unwrap();
    await_done(addr, second_id);

    // Two terminal entries over a cap of one: the reaper drops the
    // oldest; the newest stays fetchable.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if http(addr, "GET", &format!("/v1/jobs/{first_id}"), &[], b"").status == 404 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "oldest terminal job was never evicted"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    let r = http(addr, "GET", &format!("/v1/jobs/{second_id}"), &[], b"");
    assert_eq!(r.status, 200, "the newest terminal job is retained");
    server.stop();
}

// ---- cache-key sensitivity ----------------------------------------------

#[test]
fn every_field_perturbation_changes_the_cache_key() {
    let base = JobRequest::parse(SMOKE_BODY.as_bytes()).unwrap();
    // Explicit defaults hash the same as implicit ones.
    let explicit = JobRequest::parse(
        SMOKE_BODY
            .replace(
                "\"max_nodes\":2}",
                "\"max_nodes\":2,\"mean_interarrival\":30.0,\"bb_request_scale\":1.0}",
            )
            .as_bytes(),
    )
    .unwrap();
    assert_eq!(base.cache_key(), explicit.cache_key());

    for (from, to) in [
        ("\"seed\":7", "\"seed\":8"),
        ("\"policy\":\"bb-aware\"", "\"policy\":\"fcfs\""),
        ("\"jobs\":8", "\"jobs\":9"),
        ("\"nodes\":8", "\"nodes\":4"),
        (
            "\"platform\":\"cori:striped\"",
            "\"platform\":\"cori:private\"",
        ),
        (
            "\"max_nodes\":2}",
            "\"max_nodes\":2,\"bb_request_scale\":0.5}",
        ),
    ] {
        let perturbed = JobRequest::parse(SMOKE_BODY.replace(from, to).as_bytes()).unwrap();
        assert_ne!(
            base.cache_key(),
            perturbed.cache_key(),
            "{from} -> {to} must change the key"
        );
    }
}

// ---- typed quota errors -------------------------------------------------

#[test]
fn in_flight_quota_returns_a_typed_429() {
    let server = start(ServeConfig {
        workers: 1,
        quota: TenantQuota {
            max_in_flight: 1,
            ..Default::default()
        },
        ..Default::default()
    });
    let addr = server.addr;
    // A long campaign holds carol's only slot...
    let long = SMOKE_BODY.replace("\"jobs\":8", "\"jobs\":60");
    let (status, first) = submit(addr, "carol", &long);
    assert_eq!(status, 202);
    // ...so her second submission is refused with the typed error...
    let (status, refused) = submit(addr, "carol", SMOKE_BODY);
    assert_eq!(status, 429);
    let error = refused.get("error").expect("typed error body");
    assert_eq!(json_str(error, "code"), "quota_in_flight");
    assert_eq!(error.get("status").unwrap().as_u64(), Some(429));
    // ...while another tenant is unaffected.
    let (status, _) = submit(addr, "dave", SMOKE_BODY);
    assert_eq!(status, 202);
    let id = first.get("id").unwrap().as_u64().unwrap();
    let (_, done) = await_done(addr, id);
    assert_eq!(json_str(&done, "state"), "done");
    server.stop();
}

#[test]
fn oversized_bodies_get_a_typed_413_before_the_body_is_read() {
    let server = start(ServeConfig {
        quota: TenantQuota {
            max_body_bytes: 64,
            ..Default::default()
        },
        ..Default::default()
    });
    let big = format!("{{\"pad\":\"{}\"}}", "x".repeat(500));
    let r = http(server.addr, "POST", "/v1/jobs", &[], big.as_bytes());
    assert_eq!(r.status, 413);
    let v: serde_json::Value = serde_json::from_str(std::str::from_utf8(&r.body).unwrap()).unwrap();
    assert_eq!(
        json_str(v.get("error").unwrap(), "code"),
        "quota_body_bytes"
    );
    server.stop();
}

#[test]
fn wall_clock_timeout_reaps_the_job_with_a_typed_504_and_frees_the_quota() {
    let server = start(ServeConfig {
        workers: 1,
        quota: TenantQuota {
            max_in_flight: 1,
            timeout_s: 0.1,
            ..Default::default()
        },
        ..Default::default()
    });
    let addr = server.addr;
    let long = SMOKE_BODY.replace("\"jobs\":8", "\"jobs\":400");
    let (status, job) = submit(addr, "erin", &long);
    assert_eq!(status, 202);
    let id = job.get("id").unwrap().as_u64().unwrap();
    let (status, body) = await_done(addr, id);
    assert_eq!(status, 504, "reaped job answers with the typed timeout");
    let error = body.get("error").expect("typed error body");
    assert_eq!(json_str(error, "code"), "timeout");
    assert_eq!(json_str(body.get("job").unwrap(), "state"), "timeout");
    // The reap freed erin's slot: she can submit again immediately.
    let (status, _) = submit(addr, "erin", SMOKE_BODY);
    assert_eq!(status, 202, "quota slot freed by the reap");
    // And the reap shows up in metrics.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let m: serde_json::Value = serde_json::from_str(
            std::str::from_utf8(&http(addr, "GET", "/v1/metrics", &[], b"").body).unwrap(),
        )
        .unwrap();
        if m.get("jobs").unwrap().get("timeout").unwrap().as_u64() == Some(1) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "timeout never surfaced in metrics"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    server.stop();
}

#[test]
fn unknown_routes_and_bad_bodies_get_typed_errors() {
    let server = start(ServeConfig::default());
    let addr = server.addr;
    let r = http(addr, "GET", "/v1/nonsense", &[], b"");
    assert_eq!(r.status, 404);
    let r = http(addr, "POST", "/v1/jobs", &[], b"{\"type\":\"teleport\"}");
    assert_eq!(r.status, 400);
    let r = http(addr, "GET", "/v1/jobs/999", &[], b"");
    assert_eq!(r.status, 404);
    let r = http(addr, "DELETE", "/v1/jobs/1", &[], b"");
    assert_eq!(r.status, 405);
    // Artifacts of an unfinished job: 409 not_ready.
    let (status, job) = submit(addr, "frank", SMOKE_BODY);
    assert_eq!(status, 202);
    let id = job.get("id").unwrap().as_u64().unwrap();
    let r = http(
        addr,
        "GET",
        &format!("/v1/jobs/{id}/artifacts/report.json"),
        &[],
        b"",
    );
    if r.status != 200 {
        // Unless the tiny campaign already finished, which is fine too.
        assert_eq!(r.status, 409);
        let v: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&r.body).unwrap()).unwrap();
        assert_eq!(json_str(v.get("error").unwrap(), "code"), "not_ready");
    }
    let (_, done) = await_done(addr, id);
    assert_eq!(json_str(&done, "state"), "done");
    server.stop();
}

// ---- metrics schema -----------------------------------------------------

#[test]
fn metrics_endpoint_carries_the_documented_schema() {
    let server = start(ServeConfig::default());
    let m: serde_json::Value = serde_json::from_str(
        std::str::from_utf8(&http(server.addr, "GET", "/v1/metrics", &[], b"").body).unwrap(),
    )
    .unwrap();
    assert_eq!(m.get("api_version").unwrap().as_u64(), Some(1));
    let workers = m.get("workers").unwrap();
    for key in ["configured", "busy", "replaced", "utilization"] {
        assert!(workers.get(key).is_some(), "workers.{key} missing");
    }
    assert!(m.get("queue_depth").is_some());
    let jobs = m.get("jobs").unwrap();
    for key in [
        "running",
        "done",
        "failed",
        "timeout",
        "from_cache",
        "evicted",
    ] {
        assert!(jobs.get(key).is_some(), "jobs.{key} missing");
    }
    let cache = m.get("cache").unwrap();
    for key in [
        "entries",
        "bytes",
        "capacity_bytes",
        "hits",
        "misses",
        "insertions",
        "evictions",
        "uncacheable",
        "hit_ratio",
    ] {
        assert!(cache.get(key).is_some(), "cache.{key} missing");
    }
    assert!(m.get("tenants").unwrap().as_array().is_some());
    server.stop();
}

// ---- quota-ledger accounting never goes negative ------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random admit/complete/reap/hit traffic across three tenants:
    /// in-flight counts always equal admits minus releases, never go
    /// negative, and every reap frees exactly one slot.
    #[test]
    fn quota_ledger_accounting_is_exact(ops in proptest::collection::vec((0usize..4, 0usize..3), 1..200)) {
        let quota = TenantQuota { max_in_flight: 3, ..Default::default() };
        let tenants = ["a", "b", "c"];
        let mut ledger = QuotaLedger::new();
        let mut model = [0usize; 3];
        for (op, who) in ops {
            let tenant = tenants[who];
            match op {
                0 => match ledger.admit(tenant, &quota) {
                    Ok(()) => {
                        model[who] += 1;
                        prop_assert!(model[who] <= quota.max_in_flight);
                    }
                    Err(_) => prop_assert_eq!(model[who], quota.max_in_flight),
                },
                1 if model[who] > 0 => {
                    ledger.release_completed(tenant);
                    model[who] -= 1;
                }
                2 if model[who] > 0 => {
                    ledger.release_reaped(tenant);
                    model[who] -= 1;
                }
                _ => ledger.record_cache_hit(tenant),
            }
            for (i, tenant) in tenants.iter().enumerate() {
                let usage = ledger.usage(tenant);
                prop_assert_eq!(usage.in_flight, model[i]);
                prop_assert_eq!(
                    usage.admitted,
                    usage.completed + usage.reaped + usage.in_flight as u64
                );
            }
            prop_assert_eq!(ledger.total_in_flight(), model.iter().sum::<usize>());
        }
    }
}
