//! Workflow linting.
//!
//! Structural validity (acyclicity, single producers) is enforced at
//! build time; this module reports the *suspicious-but-legal* patterns
//! that typically indicate authoring mistakes in real traces — dangling
//! files, zero-work tasks, dead-end data — so users can check imported
//! workflows (e.g. WfCommons traces) before spending simulation time on
//! them.

use crate::graph::Workflow;

/// One lint finding.
#[derive(Debug, Clone, PartialEq)]
pub enum Lint {
    /// A file nothing produces and nothing reads.
    OrphanFile {
        /// The file's name.
        file: String,
    },
    /// A task with no compute work and no file I/O at all.
    EmptyTask {
        /// The task's name.
        task: String,
    },
    /// An intermediate file larger than all data its producer read —
    /// legal, but often a unit mistake (MB vs bytes) in imported traces.
    AmplifiedOutput {
        /// The producing task.
        task: String,
        /// The suspicious output file.
        file: String,
        /// Output bytes divided by the producer's input bytes.
        factor: f64,
    },
    /// A task whose requested cores exceed a typical node (>= 1024) —
    /// usually an import artifact.
    HugeCoreRequest {
        /// The task's name.
        task: String,
        /// Requested cores.
        cores: usize,
    },
    /// Tasks whose names differ only by an index but whose categories
    /// disagree — usually a category-derivation mistake.
    InconsistentCategory {
        /// The category observed most often for the stem.
        expected: String,
        /// The deviating task.
        task: String,
    },
}

impl std::fmt::Display for Lint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Lint::OrphanFile { file } => write!(f, "file {file:?} is never produced or read"),
            Lint::EmptyTask { task } => {
                write!(f, "task {task:?} has no compute work and no file I/O")
            }
            Lint::AmplifiedOutput { task, file, factor } => write!(
                f,
                "task {task:?} writes {file:?}, {factor:.0}x larger than everything it read"
            ),
            Lint::HugeCoreRequest { task, cores } => {
                write!(f, "task {task:?} requests {cores} cores")
            }
            Lint::InconsistentCategory { expected, task } => write!(
                f,
                "task {task:?} deviates from its name-stem's usual category {expected:?}"
            ),
        }
    }
}

/// Output-amplification factor above which a lint fires.
const AMPLIFICATION_THRESHOLD: f64 = 1000.0;

impl Workflow {
    /// Scans the workflow for suspicious-but-legal patterns.
    pub fn lint(&self) -> Vec<Lint> {
        let mut findings = Vec::new();

        for file in self.files() {
            if self.producer(file.id).is_none() && self.consumers(file.id).is_empty() {
                findings.push(Lint::OrphanFile {
                    file: file.name.clone(),
                });
            }
        }

        for task in self.tasks() {
            if task.flops == 0.0 && task.inputs.is_empty() && task.outputs.is_empty() {
                findings.push(Lint::EmptyTask {
                    task: task.name.clone(),
                });
            }
            if task.cores >= 1024 {
                findings.push(Lint::HugeCoreRequest {
                    task: task.name.clone(),
                    cores: task.cores,
                });
            }
            let read: f64 = task.inputs.iter().map(|&f| self.file(f).size).sum();
            if read > 0.0 {
                for &out in &task.outputs {
                    let size = self.file(out).size;
                    if size > read * AMPLIFICATION_THRESHOLD {
                        findings.push(Lint::AmplifiedOutput {
                            task: task.name.clone(),
                            file: self.file(out).name.clone(),
                            factor: size / read,
                        });
                    }
                }
            }
        }

        // Name stem vs category: group "foo_1"/"foo_2" by stem "foo".
        let mut stems: std::collections::HashMap<&str, Vec<&crate::Task>> = Default::default();
        for task in self.tasks() {
            if let Some((stem, suffix)) = task.name.rsplit_once(['_', '.']) {
                if suffix.chars().all(|c| c.is_ascii_digit()) && !stem.is_empty() {
                    stems.entry(stem).or_default().push(task);
                }
            }
        }
        for tasks in stems.values() {
            if tasks.len() < 2 {
                continue;
            }
            let mut counts: std::collections::HashMap<&str, usize> = Default::default();
            for t in tasks {
                *counts.entry(t.category.as_str()).or_default() += 1;
            }
            if counts.len() > 1 {
                let (&expected, _) = counts
                    .iter()
                    .max_by_key(|(cat, &n)| (n, std::cmp::Reverse(cat.len())))
                    .expect("non-empty");
                for t in tasks {
                    if t.category != expected {
                        findings.push(Lint::InconsistentCategory {
                            expected: expected.to_string(),
                            task: t.name.clone(),
                        });
                    }
                }
            }
        }

        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::WorkflowBuilder;

    #[test]
    fn clean_workflows_produce_no_findings() {
        let mut b = WorkflowBuilder::new("clean");
        let fi = b.add_file("in", 10.0);
        let fo = b.add_file("out", 10.0);
        b.task("t_1")
            .category("t")
            .flops(1.0)
            .input(fi)
            .output(fo)
            .add();
        assert!(b.build().unwrap().lint().is_empty());
    }

    #[test]
    fn orphan_files_are_flagged() {
        let mut b = WorkflowBuilder::new("orphan");
        b.add_file("nobody", 5.0);
        b.task("t").flops(1.0).add();
        let findings = b.build().unwrap().lint();
        assert!(findings
            .iter()
            .any(|l| matches!(l, Lint::OrphanFile { file } if file == "nobody")));
    }

    #[test]
    fn empty_tasks_are_flagged() {
        let mut b = WorkflowBuilder::new("empty");
        b.task("noop").add();
        let findings = b.build().unwrap().lint();
        assert!(findings
            .iter()
            .any(|l| matches!(l, Lint::EmptyTask { task } if task == "noop")));
    }

    #[test]
    fn amplified_outputs_are_flagged() {
        let mut b = WorkflowBuilder::new("amp");
        let small = b.add_file("small", 1.0);
        let huge = b.add_file("huge", 1e7);
        b.task("expander")
            .flops(1.0)
            .input(small)
            .output(huge)
            .add();
        let findings = b.build().unwrap().lint();
        assert!(findings.iter().any(|l| matches!(
            l,
            Lint::AmplifiedOutput { factor, .. } if *factor > 1e6
        )));
    }

    #[test]
    fn huge_core_requests_are_flagged() {
        let mut b = WorkflowBuilder::new("cores");
        b.task("monster").cores(4096).flops(1.0).add();
        let findings = b.build().unwrap().lint();
        assert!(findings
            .iter()
            .any(|l| matches!(l, Lint::HugeCoreRequest { cores: 4096, .. })));
    }

    #[test]
    fn inconsistent_categories_are_flagged() {
        let mut b = WorkflowBuilder::new("cats");
        b.task("proc_1").category("process").flops(1.0).add();
        b.task("proc_2").category("process").flops(1.0).add();
        b.task("proc_3").category("oops").flops(1.0).add();
        let findings = b.build().unwrap().lint();
        assert!(findings.iter().any(|l| matches!(
            l,
            Lint::InconsistentCategory { task, expected }
                if task == "proc_3" && expected == "process"
        )));
    }

    #[test]
    fn generators_are_lint_clean() {
        // Our own generators must never trip their own linter.
        let wf = crate::graph::WorkflowBuilder::new("x").build().unwrap();
        assert!(wf.lint().is_empty());
    }

    #[test]
    fn findings_display_readably() {
        let l = Lint::OrphanFile { file: "f".into() };
        assert!(l.to_string().contains("never produced"));
        let l = Lint::HugeCoreRequest {
            task: "t".into(),
            cores: 2048,
        };
        assert!(l.to_string().contains("2048"));
    }
}
