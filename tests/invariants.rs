//! Cross-crate property tests: physical invariants every simulation must
//! satisfy, checked over randomized workflows and configurations.

use proptest::prelude::*;

use wfbb::prelude::*;
use wfbb::workloads::patterns;

fn platform_for(idx: usize, nodes: usize) -> wfbb::platform::PlatformSpec {
    match idx % 3 {
        0 => presets::cori(nodes, BbMode::Private),
        1 => presets::cori(nodes, BbMode::Striped),
        _ => presets::summit(nodes),
    }
}

// ---- pinned regressions -------------------------------------------------
//
// Failure cases recorded in `invariants.proptest-regressions`, replayed
// here as explicit tests so they run on every `cargo test` regardless of
// which cases the property sampler draws.

/// Regression: `makespan_respects_compute_lower_bounds` with
/// layers = 2, width = 2, seed = 199, platform_idx = 0, nodes = 1,
/// fraction = 0.0. A two-layer workflow on single-node Cori (private BB)
/// with everything on the PFS once undershot the critical-path bound:
/// near-tied fair shares at PFS-scale capacities froze at fractionally
/// uneven rates, letting one access finish early.
#[test]
fn pinned_seed_199_cori_private_respects_compute_bounds() {
    let wf = patterns::random_layered(2, 2, 199);
    let platform = presets::cori(1, BbMode::Private);
    let report = SimulationBuilder::new(platform.clone(), wf.clone())
        .placement(PlacementPolicy::FractionToBb { fraction: 0.0 })
        .run()
        .unwrap();
    let makespan = report.makespan.seconds();
    let speed = platform.gflops_per_core * 1e9;

    let (cp_flops, _) = wf.critical_path(|t| {
        let task = wf.task(t);
        let cores = task.cores.min(platform.cores_per_node);
        task.flops / cores as f64
    });
    let cp_bound = cp_flops / speed;
    assert!(
        makespan >= cp_bound * (1.0 - 1e-9),
        "makespan {makespan} below critical-path bound {cp_bound}"
    );

    let total_flops: f64 = wf.tasks().iter().map(|t| t.flops).sum();
    let throughput_bound = total_flops / speed / platform.total_cores() as f64;
    assert!(
        makespan >= throughput_bound * (1.0 - 1e-9),
        "makespan {makespan} below throughput bound {throughput_bound}"
    );
}

/// Regression: `staging_is_monotone_on_summit` with layers = 2,
/// width = 2, seed = 57. Staging all files to Summit's on-node BB once
/// appeared slower than staging none, for the same near-tie rounding
/// reason as above (the two runs resolved the tie differently).
#[test]
fn pinned_seed_57_summit_staging_is_monotone() {
    let wf = patterns::random_layered(2, 2, 57);
    let run = |fraction| {
        SimulationBuilder::new(presets::summit(1), wf.clone())
            .placement(PlacementPolicy::FractionToBb { fraction })
            .run()
            .unwrap()
            .makespan
            .seconds()
    };
    let none = run(0.0);
    let all = run(1.0);
    assert!(
        all <= none * (1.0 + 1e-6),
        "staging everything must not hurt Summit: {none} -> {all}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The makespan can never beat two physical lower bounds: the
    /// critical path's compute time (at full-node parallelism) and the
    /// total compute divided by the machine's core count.
    #[test]
    fn makespan_respects_compute_lower_bounds(
        layers in 1usize..5,
        width in 1usize..5,
        seed in 0u64..500,
        platform_idx in 0usize..3,
        nodes in 1usize..3,
        fraction in 0.0f64..=1.0,
    ) {
        let wf = patterns::random_layered(layers, width, seed);
        let platform = platform_for(platform_idx, nodes);
        let report = SimulationBuilder::new(platform.clone(), wf.clone())
            .placement(PlacementPolicy::FractionToBb { fraction })
            .run()
            .unwrap();
        let makespan = report.makespan.seconds();
        let speed = platform.gflops_per_core * 1e9;

        // Critical path at the most favorable parallelism.
        let (cp_flops, _) = wf.critical_path(|t| {
            let task = wf.task(t);
            let cores = task.cores.min(platform.cores_per_node);
            task.flops / cores as f64
        });
        let cp_bound = cp_flops / speed;
        prop_assert!(
            makespan >= cp_bound * (1.0 - 1e-9),
            "makespan {makespan} below critical-path bound {cp_bound}"
        );

        // Throughput bound: all cores busy all the time.
        let total_flops: f64 = wf.tasks().iter().map(|t| t.flops).sum();
        let throughput_bound = total_flops / speed / platform.total_cores() as f64;
        prop_assert!(
            makespan >= throughput_bound * (1.0 - 1e-9),
            "makespan {makespan} below throughput bound {throughput_bound}"
        );
    }

    /// Tier byte accounting covers at least every file access the
    /// workflow performs (each access moves the file's bytes through
    /// exactly one tier; staged inputs additionally move once more).
    #[test]
    fn tier_bytes_cover_all_accesses(
        layers in 1usize..4,
        width in 1usize..5,
        seed in 0u64..500,
        platform_idx in 0usize..3,
    ) {
        let wf = patterns::random_layered(layers, width, seed);
        let platform = platform_for(platform_idx, 1);
        let report = SimulationBuilder::new(platform, wf.clone())
            .placement(PlacementPolicy::AllBb)
            .run()
            .unwrap();
        let traffic = wf.total_io_traffic();
        let moved = report.bb_bytes + report.pfs_bytes;
        prop_assert!(
            moved >= traffic * (1.0 - 1e-6),
            "moved {moved} < access traffic {traffic}"
        );
    }

    /// Staging more files never slows the on-node architecture down
    /// (its BB is strictly faster than the PFS and never contended
    /// against other nodes' data in these single-node instances).
    #[test]
    fn staging_is_monotone_on_summit(
        layers in 1usize..4,
        width in 1usize..4,
        seed in 0u64..200,
    ) {
        let wf = patterns::random_layered(layers, width, seed);
        let run = |fraction| {
            SimulationBuilder::new(presets::summit(1), wf.clone())
                .placement(PlacementPolicy::FractionToBb { fraction })
                .run()
                .unwrap()
                .makespan
                .seconds()
        };
        let none = run(0.0);
        let all = run(1.0);
        prop_assert!(
            all <= none * (1.0 + 1e-6),
            "staging everything must not hurt Summit: {none} -> {all}"
        );
    }

    /// Every task report is internally consistent regardless of platform,
    /// scheduler, or workflow shape.
    #[test]
    fn task_records_are_well_formed(
        layers in 1usize..4,
        width in 1usize..5,
        seed in 0u64..500,
        platform_idx in 0usize..3,
        nodes in 1usize..4,
    ) {
        let wf = patterns::random_layered(layers, width, seed);
        let platform = platform_for(platform_idx, nodes);
        let report = SimulationBuilder::new(platform.clone(), wf.clone())
            .placement(PlacementPolicy::AllBb)
            .run()
            .unwrap();
        prop_assert_eq!(report.tasks.len(), wf.task_count());
        for t in &report.tasks {
            prop_assert!(t.start <= t.read_end);
            prop_assert!(t.read_end <= t.compute_end);
            prop_assert!(t.compute_end <= t.end);
            prop_assert!(t.node < platform.compute_nodes);
            prop_assert!(t.cores >= 1 && t.cores <= platform.cores_per_node);
            prop_assert!(t.end <= report.makespan);
            // Dependencies finished before this task started.
            for dep in wf.dependencies(t.task) {
                prop_assert!(report.tasks[dep.index()].end <= t.start);
            }
        }
    }
}
