//! Campaign-level results: per-job outcomes, cluster utilization
//! series, aggregate metrics, and deterministic JSON / CSV / Perfetto
//! exports.

use std::fmt::Write as _;

use crate::decisionlog::{DecisionLog, DecisionRecord};
use crate::policy::{BatchPolicy, BlockReason};
use wfbb_simcore::EngineCounters;
use wfbb_wms::SimulationReport;

/// Bounded-slowdown threshold τ, seconds: very short jobs do not get to
/// claim astronomic slowdowns (Feitelson's bounded slowdown metric).
pub const BOUNDED_SLOWDOWN_TAU: f64 = 10.0;

/// Terminal state of a campaign job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Ran to workflow completion.
    Completed,
    /// Started but aborted on an executor error (e.g. retry budget
    /// exhausted under kill faults).
    Failed,
    /// Never admitted: the request can never be satisfied on this
    /// machine (too many nodes, more BB than the pool, ...).
    Rejected,
}

impl JobStatus {
    /// Stable lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Completed => "completed",
            JobStatus::Failed => "failed",
            JobStatus::Rejected => "rejected",
        }
    }
}

/// Everything the campaign learned about one job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Campaign job id (index in submission order).
    pub job: u32,
    /// Display name from the [`crate::JobSpec`].
    pub name: String,
    /// Workflow spec string (`swarp:2:8`, ...).
    pub workflow: String,
    /// Submit time, seconds.
    pub submit: f64,
    /// Nodes requested (and, if started, held).
    pub nodes: usize,
    /// BB bytes requested (and, if started, reserved).
    pub bb_request: f64,
    /// User walltime estimate, seconds.
    pub walltime_est: f64,
    /// Terminal state.
    pub status: JobStatus,
    /// Start (admission) time, seconds; 0 and meaningless for rejected
    /// jobs — check `status`.
    pub start: f64,
    /// End time (completion or abort), seconds.
    pub end: f64,
    /// Queue wait `start - submit`, seconds.
    pub wait: f64,
    /// Execution time `end - start`, seconds.
    pub run: f64,
    /// Stretch `(wait + run) / run`.
    pub stretch: f64,
    /// Bounded slowdown `max(1, (wait + run) / max(run, τ))` with
    /// τ = [`BOUNDED_SLOWDOWN_TAU`].
    pub bounded_slowdown: f64,
    /// Seconds of queue wait spent blocked on free compute nodes. The
    /// three `blocked_on_*` components always sum to `wait` (within
    /// floating accumulation, ≤ 1e-9; exactly 0.0 each for jobs that
    /// never waited) — the scheduler-side analogue of the task-level
    /// time decomposition. Derived from admission-pass verdicts, so
    /// they are filled whether or not the decision log is enabled.
    pub blocked_on_nodes: f64,
    /// Seconds of queue wait spent blocked on free BB capacity.
    pub blocked_on_bb: f64,
    /// Seconds of queue wait spent physically fitting but held back by
    /// queue order or the blocked head's reservation shadow.
    pub blocked_on_reservation: f64,
    /// The start time the scheduler first promised this job when it
    /// blocked at the head of the queue (`None` if it never blocked or
    /// under FCFS). Instrumentation for the EASY no-delay invariant:
    /// with conservative estimates, `start <= reserved_start`.
    pub reserved_start: Option<f64>,
    /// Failure/rejection detail, if any.
    pub detail: Option<String>,
    /// The job's own single-run-shaped simulation report (`None` for
    /// rejected jobs). Note: cluster-cumulative fields (`bb_bytes`,
    /// `pfs_bytes`, achieved bandwidths) are measured engine-wide at the
    /// job's completion instant, so in a campaign they include
    /// co-tenants' traffic.
    pub report: Option<SimulationReport>,
}

/// One sample of the cluster state, taken at every scheduling event
/// (arrival, admission, completion).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilSample {
    /// Sample time, seconds.
    pub time: f64,
    /// Jobs currently executing.
    pub running_jobs: usize,
    /// Nodes held by running jobs.
    pub busy_nodes: usize,
    /// BB bytes reserved by running jobs.
    pub bb_reserved: f64,
    /// Jobs waiting in the queue.
    pub queue_depth: usize,
}

/// The result of a campaign simulation.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Scheduling policy the campaign ran under.
    pub policy: BatchPolicy,
    /// Platform description string.
    pub platform: String,
    /// Total compute nodes of the machine.
    pub total_nodes: usize,
    /// Total BB pool capacity, bytes.
    pub bb_pool_bytes: f64,
    /// Per-job outcomes, in job-id order.
    pub jobs: Vec<JobOutcome>,
    /// Campaign makespan: last job end (0 if nothing ran).
    pub makespan: f64,
    /// Mean queue wait over non-rejected jobs, seconds. `0.0` (an
    /// explicit NaN-free sentinel, rendered `n/a` in the text summary)
    /// when `jobs_ran == 0`.
    pub mean_wait: f64,
    /// Max queue wait over non-rejected jobs, seconds; sentinel `0.0`
    /// when `jobs_ran == 0`.
    pub max_wait: f64,
    /// Mean stretch over non-rejected jobs; sentinel `0.0` when
    /// `jobs_ran == 0`.
    pub mean_stretch: f64,
    /// Mean bounded slowdown over non-rejected jobs; sentinel `0.0`
    /// when `jobs_ran == 0`.
    pub mean_bounded_slowdown: f64,
    /// Number of non-rejected jobs the means aggregate over. When every
    /// job was rejected this is `0` and the mean fields hold their
    /// sentinel — check this before comparing means across campaigns.
    pub jobs_ran: usize,
    /// Time-averaged fraction of nodes busy over the makespan.
    pub node_utilization: f64,
    /// Time-averaged fraction of the BB pool reserved over the makespan.
    pub bb_utilization: f64,
    /// Cluster-state samples at every scheduling event, time order.
    pub utilization: Vec<UtilSample>,
    /// Free bytes in the BB reservation pool after the campaign drained.
    /// Conservation demands this equals `bb_pool_bytes` exactly.
    pub bb_pool_free_end: f64,
    /// Total seconds of queue wait blocked on nodes, summed over
    /// non-rejected jobs (filled by `finalize`).
    pub blocked_on_nodes_total: f64,
    /// Total seconds of queue wait blocked on BB capacity.
    pub blocked_on_bb_total: f64,
    /// Total seconds of queue wait blocked by queue order / the head's
    /// reservation shadow.
    pub blocked_on_reservation_total: f64,
    /// Final counters of the shared engine — the same 15 identifiers
    /// single-run traces export ([`EngineCounters::as_named`]),
    /// including the five partition counters of `docs/performance.md`.
    pub counters: EngineCounters,
}

pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn num(x: f64) -> String {
    format!("{x:.6}")
}

impl CampaignReport {
    /// Builds the aggregate metrics from per-job outcomes and the sample
    /// series (the driver fills `jobs`/`utilization` and calls this).
    pub(crate) fn finalize(&mut self) {
        let ran: Vec<&JobOutcome> = self
            .jobs
            .iter()
            .filter(|j| j.status != JobStatus::Rejected)
            .collect();
        self.makespan = ran.iter().map(|j| j.end).fold(0.0, f64::max);
        let n = ran.len() as f64;
        self.jobs_ran = ran.len();
        if ran.is_empty() {
            // Every job was rejected/killed before starting: pin the
            // aggregates to an explicit NaN-free sentinel instead of
            // whatever the caller initialized them to. `summary_text`
            // renders these as `n/a`.
            self.mean_wait = 0.0;
            self.max_wait = 0.0;
            self.mean_stretch = 0.0;
            self.mean_bounded_slowdown = 0.0;
        } else {
            self.mean_wait = ran.iter().map(|j| j.wait).sum::<f64>() / n;
            self.max_wait = ran.iter().map(|j| j.wait).fold(0.0, f64::max);
            self.mean_stretch = ran.iter().map(|j| j.stretch).sum::<f64>() / n;
            self.mean_bounded_slowdown = ran.iter().map(|j| j.bounded_slowdown).sum::<f64>() / n;
        }
        self.blocked_on_nodes_total = ran.iter().map(|j| j.blocked_on_nodes).sum();
        self.blocked_on_bb_total = ran.iter().map(|j| j.blocked_on_bb).sum();
        self.blocked_on_reservation_total = ran.iter().map(|j| j.blocked_on_reservation).sum();
        // Piecewise-constant integrals of the sample series.
        let mut node_area = 0.0;
        let mut bb_area = 0.0;
        for w in self.utilization.windows(2) {
            let dt = w[1].time - w[0].time;
            node_area += w[0].busy_nodes as f64 * dt;
            bb_area += w[0].bb_reserved * dt;
        }
        if self.makespan > 0.0 {
            self.node_utilization = node_area / (self.total_nodes as f64 * self.makespan);
            if self.bb_pool_bytes > 0.0 {
                self.bb_utilization = bb_area / (self.bb_pool_bytes * self.makespan);
            }
        }
    }

    /// The resource campaign waits were dominated by: `nodes`, `bb`, or
    /// `reservation` — whichever `blocked_on_*_total` is largest (ties
    /// break in that order) — or `none` when nothing ever waited.
    pub fn dominant_block(&self) -> &'static str {
        let n = self.blocked_on_nodes_total;
        let b = self.blocked_on_bb_total;
        let r = self.blocked_on_reservation_total;
        if n <= 0.0 && b <= 0.0 && r <= 0.0 {
            "none"
        } else if n >= b && n >= r {
            "nodes"
        } else if b >= r {
            "bb"
        } else {
            "reservation"
        }
    }

    /// Human-readable summary table.
    pub fn summary_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "campaign: policy={} platform={} nodes={} bb_pool={:.3e} B",
            self.policy.label(),
            self.platform,
            self.total_nodes,
            self.bb_pool_bytes
        );
        if self.jobs_ran == 0 {
            // Nothing ran: the aggregate means are undefined (their
            // fields hold the 0.0 sentinel), so print n/a rather than a
            // number that looks like a perfect score.
            let _ = writeln!(
                out,
                "  jobs={} makespan={:.1}s mean_wait=n/a max_wait=n/a \
                 mean_stretch=n/a mean_bounded_slowdown=n/a (no jobs ran)",
                self.jobs.len(),
                self.makespan,
            );
        } else {
            let _ = writeln!(
                out,
                "  jobs={} makespan={:.1}s mean_wait={:.1}s max_wait={:.1}s \
                 mean_stretch={:.3} mean_bounded_slowdown={:.3}",
                self.jobs.len(),
                self.makespan,
                self.mean_wait,
                self.max_wait,
                self.mean_stretch,
                self.mean_bounded_slowdown
            );
        }
        let _ = writeln!(
            out,
            "  node_utilization={:.1}% bb_utilization={:.1}%",
            self.node_utilization * 100.0,
            self.bb_utilization * 100.0
        );
        let _ = writeln!(
            out,
            "  wait blocked on: nodes={:.1}s bb={:.1}s reservation={:.1}s (dominant: {})",
            self.blocked_on_nodes_total,
            self.blocked_on_bb_total,
            self.blocked_on_reservation_total,
            self.dominant_block()
        );
        let _ = writeln!(
            out,
            "  {:>3} {:<22} {:<12} {:>9} {:>5} {:>10} {:>9} {:>9} {:>8} {:>8}",
            "id",
            "name",
            "workflow",
            "submit",
            "nodes",
            "bb(B)",
            "wait",
            "run",
            "stretch",
            "status"
        );
        for j in &self.jobs {
            let _ = writeln!(
                out,
                "  {:>3} {:<22} {:<12} {:>9.1} {:>5} {:>10.2e} {:>9.1} {:>9.1} {:>8.2} {:>8}",
                j.job,
                j.name,
                j.workflow,
                j.submit,
                j.nodes,
                j.bb_request,
                j.wait,
                j.run,
                j.stretch,
                j.status.label()
            );
        }
        out
    }

    /// Per-job outcomes as CSV (header + one row per job, job-id order).
    pub fn jobs_csv(&self) -> String {
        let mut out = String::from(
            "job,name,workflow,policy,submit,nodes,bb_request,walltime_est,\
             status,start,end,wait,run,stretch,bounded_slowdown,\
             blocked_on_nodes,blocked_on_bb,blocked_on_reservation\n",
        );
        for j in &self.jobs {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                j.job,
                j.name,
                j.workflow,
                self.policy.label(),
                num(j.submit),
                j.nodes,
                num(j.bb_request),
                num(j.walltime_est),
                j.status.label(),
                num(j.start),
                num(j.end),
                num(j.wait),
                num(j.run),
                num(j.stretch),
                num(j.bounded_slowdown),
                num(j.blocked_on_nodes),
                num(j.blocked_on_bb),
                num(j.blocked_on_reservation)
            );
        }
        out
    }

    /// The whole report as deterministic JSON (stable key order, fixed
    /// float formatting — identical campaigns produce identical bytes).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"schema_version\":3,\"policy\":\"{}\",\"platform\":\"{}\",\
             \"total_nodes\":{},\"bb_pool_bytes\":{},\"makespan\":{},\
             \"mean_wait\":{},\"max_wait\":{},\"mean_stretch\":{},\
             \"mean_bounded_slowdown\":{},\"jobs_ran\":{},\"node_utilization\":{},\
             \"bb_utilization\":{},\"bb_pool_free_end\":{},\
             \"blocked_on_nodes_total\":{},\"blocked_on_bb_total\":{},\
             \"blocked_on_reservation_total\":{},\"dominant_block\":\"{}\",\
             \"engine_counters\":{{",
            self.policy.label(),
            esc(&self.platform),
            self.total_nodes,
            num(self.bb_pool_bytes),
            num(self.makespan),
            num(self.mean_wait),
            num(self.max_wait),
            num(self.mean_stretch),
            num(self.mean_bounded_slowdown),
            self.jobs_ran,
            num(self.node_utilization),
            num(self.bb_utilization),
            num(self.bb_pool_free_end),
            num(self.blocked_on_nodes_total),
            num(self.blocked_on_bb_total),
            num(self.blocked_on_reservation_total),
            self.dominant_block(),
        );
        for (i, (name, value)) in self.counters.as_named().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{value}");
        }
        out.push_str("},\"jobs\":[");
        for (i, j) in self.jobs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"job\":{},\"name\":\"{}\",\"workflow\":\"{}\",\"submit\":{},\
                 \"nodes\":{},\"bb_request\":{},\"walltime_est\":{},\"status\":\"{}\",\
                 \"start\":{},\"end\":{},\"wait\":{},\"run\":{},\"stretch\":{},\
                 \"bounded_slowdown\":{},\"blocked_on_nodes\":{},\"blocked_on_bb\":{},\
                 \"blocked_on_reservation\":{}",
                j.job,
                esc(&j.name),
                esc(&j.workflow),
                num(j.submit),
                j.nodes,
                num(j.bb_request),
                num(j.walltime_est),
                j.status.label(),
                num(j.start),
                num(j.end),
                num(j.wait),
                num(j.run),
                num(j.stretch),
                num(j.bounded_slowdown),
                num(j.blocked_on_nodes),
                num(j.blocked_on_bb),
                num(j.blocked_on_reservation),
            );
            if let Some(r) = j.reserved_start {
                let _ = write!(out, ",\"reserved_start\":{}", num(r));
            }
            if let Some(d) = &j.detail {
                let _ = write!(out, ",\"detail\":\"{}\"", esc(d));
            }
            if let Some(rep) = &j.report {
                let _ = write!(
                    out,
                    ",\"tasks\":{},\"retries\":{},\"stage_in_time\":{}",
                    rep.tasks.len(),
                    rep.retries,
                    num(rep.stage_in_time)
                );
            }
            out.push('}');
        }
        out.push_str("],\"utilization\":[");
        for (i, s) in self.utilization.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"time\":{},\"running_jobs\":{},\"busy_nodes\":{},\
                 \"bb_reserved\":{},\"queue_depth\":{}}}",
                num(s.time),
                s.running_jobs,
                s.busy_nodes,
                num(s.bb_reserved),
                s.queue_depth
            );
        }
        out.push_str("]}");
        out
    }

    /// Perfetto/Chrome trace of the campaign: one process lane per job
    /// (a `queued` slice from submit to start, a `run` slice from start
    /// to end) plus a counter process tracking busy nodes, reserved and
    /// free BB pool bytes, and queue depth, closed by an
    /// `engine_counters` instant carrying the 15 engine counter
    /// identifiers. Load at `ui.perfetto.dev`.
    pub fn perfetto_trace_json(&self) -> String {
        self.build_perfetto(None)
    }

    /// [`CampaignReport::perfetto_trace_json`] plus a `scheduler`
    /// process lane rendering the decision log (schema v4): one instant
    /// per admission verdict transition, pool ledger operation, and plan
    /// ordering search. See `docs/trace-format.md`.
    pub fn perfetto_trace_with_decisions(&self, log: &DecisionLog) -> String {
        self.build_perfetto(Some(log))
    }

    fn build_perfetto(&self, log: Option<&DecisionLog>) -> String {
        let us = |sec: f64| format!("{:.3}", sec * 1e6);
        let mut events: Vec<(f64, String)> = Vec::new();
        let mut meta: Vec<String> = Vec::new();
        for j in &self.jobs {
            let pid = j.job + 1;
            meta.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"job:{}\"}}}}",
                esc(&j.name)
            ));
            if j.status == JobStatus::Rejected {
                continue;
            }
            if j.wait > 0.0 {
                events.push((
                    j.submit,
                    format!(
                        "{{\"name\":\"queued\",\"cat\":\"queue\",\"ph\":\"X\",\"ts\":{},\
                         \"dur\":{},\"pid\":{pid},\"tid\":0,\"args\":{{\"workflow\":\"{}\"}}}}",
                        us(j.submit),
                        us(j.wait),
                        esc(&j.workflow)
                    ),
                ));
            }
            events.push((
                j.start,
                format!(
                    "{{\"name\":\"run:{}\",\"cat\":\"job\",\"ph\":\"X\",\"ts\":{},\
                     \"dur\":{},\"pid\":{pid},\"tid\":0,\"args\":{{\"workflow\":\"{}\",\
                     \"nodes\":{},\"bb_request\":{},\"status\":\"{}\"}}}}",
                    esc(&j.name),
                    us(j.start),
                    us(j.run),
                    esc(&j.workflow),
                    j.nodes,
                    num(j.bb_request),
                    j.status.label()
                ),
            ));
        }
        let counter_pid = self.jobs.len() as u32 + 1;
        meta.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{counter_pid},\"tid\":0,\
             \"args\":{{\"name\":\"cluster\"}}}}"
        ));
        for s in &self.utilization {
            events.push((
                s.time,
                format!(
                    "{{\"name\":\"busy_nodes\",\"ph\":\"C\",\"ts\":{},\"pid\":{counter_pid},\
                     \"tid\":0,\"args\":{{\"nodes\":{}}}}}",
                    us(s.time),
                    s.busy_nodes
                ),
            ));
            events.push((
                s.time,
                format!(
                    "{{\"name\":\"queue_depth\",\"ph\":\"C\",\"ts\":{},\"pid\":{counter_pid},\
                     \"tid\":0,\"args\":{{\"jobs\":{}}}}}",
                    us(s.time),
                    s.queue_depth
                ),
            ));
            events.push((
                s.time,
                format!(
                    "{{\"name\":\"bb_reserved\",\"ph\":\"C\",\"ts\":{},\"pid\":{counter_pid},\
                     \"tid\":0,\"args\":{{\"bytes\":{}}}}}",
                    us(s.time),
                    num(s.bb_reserved)
                ),
            ));
            events.push((
                s.time,
                format!(
                    "{{\"name\":\"bb_pool_free\",\"ph\":\"C\",\"ts\":{},\"pid\":{counter_pid},\
                     \"tid\":0,\"args\":{{\"bytes\":{}}}}}",
                    us(s.time),
                    num(self.bb_pool_bytes - s.bb_reserved)
                ),
            ));
        }
        // Final engine counters as one instant at the makespan — the
        // same identifiers single-run traces emit (EngineCounters::
        // as_named), so the partition counters are visible per campaign.
        {
            let mut args = String::new();
            for (i, (name, value)) in self.counters.as_named().iter().enumerate() {
                if i > 0 {
                    args.push(',');
                }
                let _ = write!(args, "\"{name}\":{value}");
            }
            events.push((
                self.makespan,
                format!(
                    "{{\"name\":\"engine_counters\",\"ph\":\"i\",\"ts\":{},\
                     \"pid\":{counter_pid},\"tid\":0,\"s\":\"p\",\"args\":{{{args}}}}}",
                    us(self.makespan)
                ),
            ));
        }
        if let Some(log) = log {
            let sched_pid = self.jobs.len() as u32 + 2;
            meta.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{sched_pid},\"tid\":0,\
                 \"args\":{{\"name\":\"scheduler\"}}}}"
            ));
            let instant = |time: f64, name: &str, args: String| {
                format!(
                    "{{\"name\":\"{name}\",\"cat\":\"sched\",\"ph\":\"i\",\"ts\":{},\
                     \"pid\":{sched_pid},\"tid\":0,\"s\":\"t\",\"args\":{{{args}}}}}",
                    us(time)
                )
            };
            for rec in log.records() {
                let (time, line) = match rec {
                    DecisionRecord::Admitted { time, job, kind } => (
                        *time,
                        instant(
                            *time,
                            &format!("admit:{}", kind.label()),
                            format!("\"job\":{job}"),
                        ),
                    ),
                    DecisionRecord::Blocked { time, job, reason } => {
                        let detail = match reason {
                            BlockReason::InsufficientNodes { requested, free } => {
                                format!("\"job\":{job},\"requested\":{requested},\"free\":{free}")
                            }
                            BlockReason::InsufficientBb { requested, free } => format!(
                                "\"job\":{job},\"requested\":{},\"free\":{}",
                                num(*requested),
                                num(*free)
                            ),
                            BlockReason::ReservationShadow { head, shadow } => {
                                format!("\"job\":{job},\"head\":{head},\"shadow\":{}", num(*shadow))
                            }
                        };
                        (
                            *time,
                            instant(*time, &format!("blocked:{}", reason.kind_label()), detail),
                        )
                    }
                    DecisionRecord::PoolReserve {
                        time,
                        job,
                        bytes,
                        free_after,
                    } => (
                        *time,
                        instant(
                            *time,
                            "pool:reserve",
                            format!(
                                "\"job\":{job},\"bytes\":{},\"free_after\":{}",
                                num(*bytes),
                                num(*free_after)
                            ),
                        ),
                    ),
                    DecisionRecord::PoolRelease {
                        time,
                        job,
                        bytes,
                        free_after,
                    } => (
                        *time,
                        instant(
                            *time,
                            "pool:release",
                            format!(
                                "\"job\":{job},\"bytes\":{},\"free_after\":{}",
                                num(*bytes),
                                num(*free_after)
                            ),
                        ),
                    ),
                    DecisionRecord::PoolShrink {
                        time,
                        device,
                        bytes,
                        clawed,
                        free_after,
                    } => (
                        *time,
                        instant(
                            *time,
                            "pool:shrink",
                            format!(
                                "\"device\":{device},\"bytes\":{},\"clawed\":{},\"free_after\":{}",
                                num(*bytes),
                                num(*clawed),
                                num(*free_after)
                            ),
                        ),
                    ),
                    DecisionRecord::PlanChoice {
                        time,
                        winner,
                        candidates,
                    } => (
                        *time,
                        instant(
                            *time,
                            &format!("plan:{winner}"),
                            format!("\"candidates\":{}", candidates.len()),
                        ),
                    ),
                    DecisionRecord::Rejected { job, reason } => (
                        0.0,
                        instant(
                            0.0,
                            "reject",
                            format!("\"job\":{job},\"reason\":\"{}\"", esc(reason)),
                        ),
                    ),
                };
                events.push((time, line));
            }
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for m in meta {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&m);
        }
        for (_, e) in events {
            out.push(',');
            out.push_str(&e);
        }
        let _ = write!(
            out,
            "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"policy\":\"{}\",\
             \"platform\":\"{}\"}}}}",
            self.policy.label(),
            esc(&self.platform)
        );
        out
    }
}

/// Computes `(wait, run, stretch, bounded_slowdown)` from job times.
pub(crate) fn job_metrics(submit: f64, start: f64, end: f64) -> (f64, f64, f64, f64) {
    let wait = (start - submit).max(0.0);
    let run = (end - start).max(0.0);
    let stretch = if run > 0.0 { (wait + run) / run } else { 1.0 };
    let bsld = ((wait + run) / run.max(BOUNDED_SLOWDOWN_TAU)).max(1.0);
    (wait, run, stretch, bsld)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(job: u32, submit: f64, start: f64, end: f64) -> JobOutcome {
        let (wait, run, stretch, bounded_slowdown) = job_metrics(submit, start, end);
        JobOutcome {
            job,
            name: format!("j{job}"),
            workflow: "swarp:1:8".into(),
            submit,
            nodes: 1,
            bb_request: 1e9,
            walltime_est: 100.0,
            status: JobStatus::Completed,
            start,
            end,
            wait,
            run,
            stretch,
            bounded_slowdown,
            blocked_on_nodes: wait,
            blocked_on_bb: 0.0,
            blocked_on_reservation: 0.0,
            reserved_start: None,
            detail: None,
            report: None,
        }
    }

    fn report() -> CampaignReport {
        let mut r = CampaignReport {
            policy: BatchPolicy::Fcfs,
            platform: "cori:striped".into(),
            total_nodes: 2,
            bb_pool_bytes: 4e9,
            jobs: vec![outcome(0, 0.0, 0.0, 100.0), outcome(1, 0.0, 100.0, 200.0)],
            makespan: 0.0,
            mean_wait: 0.0,
            max_wait: 0.0,
            mean_stretch: 0.0,
            mean_bounded_slowdown: 0.0,
            jobs_ran: 0,
            node_utilization: 0.0,
            bb_utilization: 0.0,
            utilization: vec![
                UtilSample {
                    time: 0.0,
                    running_jobs: 1,
                    busy_nodes: 1,
                    bb_reserved: 1e9,
                    queue_depth: 1,
                },
                UtilSample {
                    time: 100.0,
                    running_jobs: 1,
                    busy_nodes: 1,
                    bb_reserved: 1e9,
                    queue_depth: 0,
                },
                UtilSample {
                    time: 200.0,
                    running_jobs: 0,
                    busy_nodes: 0,
                    bb_reserved: 0.0,
                    queue_depth: 0,
                },
            ],
            bb_pool_free_end: 4e9,
            blocked_on_nodes_total: 0.0,
            blocked_on_bb_total: 0.0,
            blocked_on_reservation_total: 0.0,
            counters: EngineCounters::default(),
        };
        r.finalize();
        r
    }

    #[test]
    fn finalize_computes_aggregates() {
        let r = report();
        assert_eq!(r.makespan, 200.0);
        assert_eq!(r.mean_wait, 50.0);
        assert_eq!(r.max_wait, 100.0);
        assert!((r.mean_stretch - 1.5).abs() < 1e-12);
        // node area = 1*100 + 1*100 = 200 over 2 nodes * 200 s.
        assert!((r.node_utilization - 0.5).abs() < 1e-12);
        assert!((r.bb_utilization - 0.25).abs() < 1e-12);
    }

    #[test]
    fn json_and_csv_are_deterministic_and_well_formed() {
        let a = report();
        let b = report();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.jobs_csv(), b.jobs_csv());
        let json = a.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert!(json.contains("\"policy\":\"fcfs\""));
        assert_eq!(a.jobs_csv().lines().count(), 3);
    }

    #[test]
    fn perfetto_has_one_lane_per_job_and_counters() {
        let trace = a_trace();
        assert!(trace.contains("\"name\":\"job:j0\""));
        assert!(trace.contains("\"name\":\"job:j1\""));
        assert!(trace.contains("\"name\":\"cluster\""));
        assert!(trace.contains("\"ph\":\"C\""));
        // Job 1 waited 100 s; job 0 never queued.
        assert!(trace.contains("\"name\":\"queued\""));
        assert_eq!(trace.matches("\"name\":\"queued\"").count(), 1);
    }

    fn a_trace() -> String {
        report().perfetto_trace_json()
    }

    #[test]
    fn all_rejected_campaign_reports_na_means() {
        let mut r = report();
        for j in &mut r.jobs {
            j.status = JobStatus::Rejected;
        }
        // Poison the aggregates to prove finalize pins the sentinels.
        r.mean_wait = 123.0;
        r.mean_stretch = f64::NAN;
        r.mean_bounded_slowdown = f64::NAN;
        r.max_wait = -1.0;
        r.finalize();
        assert_eq!(r.jobs_ran, 0);
        assert_eq!(r.mean_wait, 0.0);
        assert_eq!(r.max_wait, 0.0);
        assert_eq!(r.mean_stretch, 0.0);
        assert_eq!(r.mean_bounded_slowdown, 0.0);
        let text = r.summary_text();
        assert!(text.contains("mean_wait=n/a"), "{text}");
        assert!(text.contains("mean_bounded_slowdown=n/a"), "{text}");
        assert!(text.contains("(no jobs ran)"), "{text}");
        assert!(!r.to_json().contains("NaN"), "JSON must stay NaN-free");
        assert!(r.to_json().contains("\"jobs_ran\":0"));
    }

    #[test]
    fn wait_decomposition_totals_and_dominant_block() {
        let r = report();
        // Job 1 waited 100 s, all charged to nodes by the fixture.
        assert_eq!(r.blocked_on_nodes_total, 100.0);
        assert_eq!(r.blocked_on_bb_total, 0.0);
        assert_eq!(r.dominant_block(), "nodes");
        let json = r.to_json();
        assert!(json.contains("\"schema_version\":3"));
        assert!(json.contains("\"dominant_block\":\"nodes\""));
        assert!(json.contains("\"blocked_on_nodes_total\":100.000000"));
        assert!(json.contains("\"engine_counters\":{\"events\":0"));
        let csv = r.jobs_csv();
        assert!(csv
            .lines()
            .next()
            .unwrap()
            .ends_with("blocked_on_reservation"));
        assert!(
            r.summary_text().contains("dominant: nodes"),
            "{}",
            r.summary_text()
        );
        // No waits at all -> "none".
        let mut idle = report();
        for j in &mut idle.jobs {
            j.blocked_on_nodes = 0.0;
        }
        idle.finalize();
        assert_eq!(idle.dominant_block(), "none");
    }

    #[test]
    fn perfetto_has_pool_free_counter_engine_counters_and_decision_lane() {
        let plain = report().perfetto_trace_json();
        assert!(plain.contains("\"name\":\"bb_pool_free\""));
        assert!(plain.contains("\"name\":\"engine_counters\""));
        assert!(!plain.contains("\"name\":\"scheduler\""));
        let mut log = crate::decisionlog::DecisionLog::new(true, "fcfs");
        log.push(DecisionRecord::Blocked {
            time: 0.0,
            job: 1,
            reason: BlockReason::InsufficientNodes {
                requested: 2,
                free: 1,
            },
        });
        log.push(DecisionRecord::Admitted {
            time: 100.0,
            job: 1,
            kind: crate::policy::AdmitKind::Head,
        });
        let traced = report().perfetto_trace_with_decisions(&log);
        assert!(traced.contains("\"name\":\"scheduler\""));
        assert!(traced.contains("\"name\":\"blocked:nodes\""));
        assert!(traced.contains("\"name\":\"admit:head\""));
        assert_eq!(
            traced.matches('{').count(),
            traced.matches('}').count(),
            "balanced braces"
        );
    }

    #[test]
    fn bounded_slowdown_is_clamped() {
        // A 1-second job that waited 9 seconds: raw slowdown 10, bounded
        // uses τ=10 -> (9+1)/10 = 1.
        let (_, _, stretch, bsld) = job_metrics(0.0, 9.0, 10.0);
        assert_eq!(stretch, 10.0);
        assert_eq!(bsld, 1.0);
    }
}
