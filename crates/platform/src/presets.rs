//! Calibrated platform presets.
//!
//! The Cori and Summit presets encode the paper's Table I verbatim:
//!
//! | | Proc. speed | BB network | BB disk | PFS network | PFS disk |
//! |---|---|---|---|---|---|
//! | Cori | 36.80 GFlop/s/core | 800 MB/s | 950 MB/s | 1.0 GB/s | 100 MB/s |
//! | Summit | 49.12 GFlop/s/core | 6.5 GB/s | 3.3 GB/s | 2.1 GB/s | 100 MB/s |
//!
//! Remaining parameters (NIC and fabric bandwidths, per-file latencies, the
//! staging-source bandwidth) are calibration choices documented in
//! DESIGN.md; they are set so that the relative behaviors of Section III of
//! the paper are reproduced, and they are deliberately identical across
//! presets except where an architectural difference demands otherwise.

use crate::latency::LatencyProfile;
use crate::spec::{BbArchitecture, BbMode, PlatformSpec};
use crate::units::*;

/// Number of BB nodes in a default striped Cori allocation (files are
/// striped over all of them).
pub const CORI_STRIPE_NODES: usize = 4;

/// Cori (NERSC): Cray XC40 Haswell partition with remote shared burst
/// buffers (Cray DataWarp).
///
/// `mode` selects the DataWarp allocation mode. Private allocations use a
/// single BB node (one namespace per compute node on that node); striped
/// allocations spread files over [`CORI_STRIPE_NODES`] BB nodes.
pub fn cori(compute_nodes: usize, mode: BbMode) -> PlatformSpec {
    let bb_nodes = match mode {
        BbMode::Private => 1,
        BbMode::Striped => CORI_STRIPE_NODES,
    };
    // DataWarp metadata throughput: the private mode's per-node namespaces
    // make metadata cheap; the striped mode funnels per-stripe opens through
    // a shared metadata service (Section III-D of the paper observes
    // metadata-bound behavior and up to two orders of magnitude slowdowns).
    let bb_meta_ops = match mode {
        BbMode::Private => 200.0,
        // Per-BB-node rate: striped opens hit every stripe's node in
        // parallel, so the per-node service must be slow enough to
        // reproduce the measured collapse on many-small-file workloads.
        BbMode::Striped => 4.0,
    };
    PlatformSpec {
        name: format!("cori-{}", mode.label()),
        compute_nodes,
        cores_per_node: 32,
        gflops_per_core: 36.80,
        nic_bw: 8.0 * GB,
        interconnect_bw: 45.0 * GB,
        bb: BbArchitecture::Shared { bb_nodes, mode },
        bb_network_bw: 800.0 * MB,
        bb_disk_bw: 950.0 * MB,
        pfs_network_bw: 1.0 * GB,
        pfs_disk_bw: 100.0 * MB,
        stage_source_bw: 12.8 * GB,
        // 8 cores saturate the 800 MB/s BB path: Figure 6's Cori plateau.
        io_core_bw: 100.0 * MB,
        // Each DataWarp node exposes ~6.4 TB of usable flash.
        bb_capacity: 6.4 * TB,
        pfs_meta_ops: 100.0,
        bb_meta_ops,
        // DataWarp's default striping granularity.
        stripe_unit: 8.0 * 1024.0 * 1024.0,
        latency: LatencyProfile::default(),
    }
}

/// Summit (ORNL): IBM AC922 nodes with an on-node NVMe burst buffer
/// (Samsung PM1725a) per compute node.
pub fn summit(compute_nodes: usize) -> PlatformSpec {
    PlatformSpec {
        name: "summit-onnode".to_string(),
        compute_nodes,
        cores_per_node: 42,
        gflops_per_core: 49.12,
        nic_bw: 12.5 * GB,
        interconnect_bw: 115.0 * GB,
        bb: BbArchitecture::OnNode,
        bb_network_bw: 6.5 * GB,
        bb_disk_bw: 3.3 * GB,
        pfs_network_bw: 2.1 * GB,
        pfs_disk_bw: 100.0 * MB,
        stage_source_bw: 12.8 * GB,
        // 16 cores saturate the 3.3 GB/s NVMe device: Figure 6's Summit
        // plateau.
        io_core_bw: 210.0 * MB,
        // One 1.6 TB Samsung PM1725a per compute node.
        bb_capacity: 1.6 * TB,
        pfs_meta_ops: 100.0,
        // Local NVMe metadata is effectively free compared to a remote
        // shared service.
        bb_meta_ops: 5000.0,
        stripe_unit: 8.0 * 1024.0 * 1024.0,
        latency: LatencyProfile {
            // Local NVMe: no remote metadata server on the BB path.
            bb_onnode_per_file: 0.001,
            ..LatencyProfile::default()
        },
    }
}

/// A small generic cluster without burst buffers, useful for examples and
/// tests of the PFS-only baseline.
pub fn generic(compute_nodes: usize) -> PlatformSpec {
    PlatformSpec {
        name: "generic-pfs".to_string(),
        compute_nodes,
        cores_per_node: 16,
        gflops_per_core: 20.0,
        nic_bw: 10.0 * GB,
        interconnect_bw: 40.0 * GB,
        bb: BbArchitecture::None,
        bb_network_bw: 1.0 * GB,
        bb_disk_bw: 1.0 * GB,
        pfs_network_bw: 1.0 * GB,
        pfs_disk_bw: 100.0 * MB,
        stage_source_bw: 12.8 * GB,
        io_core_bw: 100.0 * MB,
        bb_capacity: 1.0 * TB,
        pfs_meta_ops: 100.0,
        bb_meta_ops: 500.0,
        stripe_unit: 8.0 * 1024.0 * 1024.0,
        latency: LatencyProfile::default(),
    }
}

/// The three platform configurations studied throughout the paper, in the
/// order the figures present them: Cori/private, Cori/striped,
/// Summit/on-node.
pub fn paper_configs(compute_nodes: usize) -> Vec<PlatformSpec> {
    vec![
        cori(compute_nodes, BbMode::Private),
        cori(compute_nodes, BbMode::Striped),
        summit(compute_nodes),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cori_private_uses_one_bb_node() {
        match cori(1, BbMode::Private).bb {
            BbArchitecture::Shared { bb_nodes, mode } => {
                assert_eq!(bb_nodes, 1);
                assert_eq!(mode, BbMode::Private);
            }
            _ => panic!("Cori must use a shared BB"),
        }
    }

    #[test]
    fn cori_striped_spreads_over_multiple_bb_nodes() {
        match cori(1, BbMode::Striped).bb {
            BbArchitecture::Shared { bb_nodes, .. } => assert_eq!(bb_nodes, CORI_STRIPE_NODES),
            _ => panic!("Cori must use a shared BB"),
        }
    }

    #[test]
    fn summit_is_on_node() {
        assert_eq!(summit(3).bb, BbArchitecture::OnNode);
        assert_eq!(summit(3).compute_nodes, 3);
    }

    #[test]
    fn paper_configs_cover_the_three_architectures() {
        let configs = paper_configs(1);
        let labels: Vec<&str> = configs.iter().map(|c| c.bb.label()).collect();
        assert_eq!(labels, vec!["private", "striped", "on-node"]);
        for c in &configs {
            c.validate().unwrap();
        }
    }

    #[test]
    fn summit_bb_is_faster_than_cori_bb() {
        let c = cori(1, BbMode::Private);
        let s = summit(1);
        assert!(s.bb_disk_bw > c.bb_disk_bw);
        assert!(s.latency.bb_onnode_per_file < c.latency.bb_private_per_file);
    }
}
