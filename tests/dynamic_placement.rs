//! Online data placement under capacity pressure: the watermark placer
//! protects burst buffer headroom for hot files, beating the
//! first-come-first-served occupancy of a static all-BB plan — the kind
//! of data placement strategy the paper's conclusion proposes exploring.

use wfbb::prelude::*;
use wfbb::wms::dynamic::{GreedyBb, SmallFilePlacer, WatermarkPlacer};
use wfbb::workflow::WorkflowBuilder;

/// Producers write large cold files (one consumer each); a hub then
/// distills them into one small hot file read by eight consumers.
fn cold_then_hot_workflow() -> wfbb::workflow::Workflow {
    let mut b = WorkflowBuilder::new("cold-then-hot");
    let mut colds = Vec::new();
    for i in 0..6 {
        let cold = b.add_file(format!("cold{i}"), 240e6);
        // Staggered compute times so the writes arrive one after another
        // (concurrent producers would all see an empty BB and defeat any
        // occupancy-based policy).
        b.task(format!("produce{i}"))
            .category("produce")
            .flops(3e11 * (i + 1) as f64)
            .cores(4)
            .output(cold)
            .add();
        colds.push(cold);
    }
    let hot = b.add_file("hot", 50e6);
    b.task("hub")
        .category("hub")
        .flops(2e11)
        .cores(4)
        .inputs(colds)
        .output(hot)
        .add();
    for i in 0..8 {
        let out = b.add_file(format!("result{i}"), 1e6);
        b.task(format!("consume{i}"))
            .category("consume")
            .flops(1e11)
            .cores(2)
            .input(hot)
            .output(out)
            .add();
    }
    b.build().unwrap()
}

fn tight_platform() -> wfbb::platform::PlatformSpec {
    let mut p = wfbb::platform::presets::summit(1);
    p.bb_capacity = 500e6; // fits two cold files, or one plus the hot one
    p
}

#[test]
fn watermark_placer_beats_greedy_under_capacity_pressure() {
    let wf = cold_then_hot_workflow();
    let greedy = SimulationBuilder::new(tight_platform(), wf.clone())
        .dynamic_placer(Box::new(GreedyBb))
        .run()
        .unwrap();
    let watermark = SimulationBuilder::new(tight_platform(), wf)
        .dynamic_placer(Box::new(WatermarkPlacer {
            watermark: 0.4,
            hot_consumers: 2,
        }))
        .run()
        .unwrap();
    // Greedy fills the BB with cold files and the hot file spills; the
    // watermark keeps headroom so the hot file stays in the BB.
    assert!(greedy.spilled_files > 0);
    assert!(
        watermark.makespan < greedy.makespan,
        "watermark {} !< greedy {}",
        watermark.makespan,
        greedy.makespan
    );
}

#[test]
fn greedy_dynamic_equals_static_all_bb() {
    // GreedyBb requests the BB for everything, exactly like the static
    // all-BB plan with spill — same makespan, bit for bit.
    let wf = cold_then_hot_workflow();
    let dynamic = SimulationBuilder::new(tight_platform(), wf.clone())
        .dynamic_placer(Box::new(GreedyBb))
        .run()
        .unwrap();
    let static_plan = SimulationBuilder::new(tight_platform(), wf)
        .placement(PlacementPolicy::AllBb)
        .run()
        .unwrap();
    assert_eq!(dynamic.makespan, static_plan.makespan);
    assert_eq!(dynamic.spilled_files, static_plan.spilled_files);
}

#[test]
fn small_file_placer_sends_only_small_files_to_the_bb() {
    let wf = cold_then_hot_workflow();
    let report = SimulationBuilder::new(tight_platform(), wf)
        .dynamic_placer(Box::new(SmallFilePlacer { max_bytes: 100e6 }))
        .run()
        .unwrap();
    // Only the 50 MB hot file and the 1 MB results request the BB.
    assert_eq!(report.spilled_files, 0);
    assert!(
        report.bb_peak_bytes < 200e6,
        "peak {}",
        report.bb_peak_bytes
    );
    assert!(report.bb_peak_bytes > 50e6, "hot file resides in the BB");
}

#[test]
fn dynamic_placement_does_not_affect_staged_inputs() {
    // Inputs are staged per the static plan; the dynamic placer only
    // governs task writes.
    let wf = SwarpConfig::new(1).with_cores_per_task(8).build();
    let report = SimulationBuilder::new(wfbb::platform::presets::cori(1, BbMode::Private), wf)
        .placement(PlacementPolicy::FractionToBb { fraction: 1.0 })
        .dynamic_placer(Box::new(SmallFilePlacer { max_bytes: 0.0 }))
        .run()
        .unwrap();
    // All inputs were staged to the BB even though the placer refuses
    // every write.
    assert!(report.stage_in_time > 0.0);
    assert!(
        report.bb_bytes > 0.0,
        "staged inputs and their reads hit the BB"
    );
}
