//! SWarp across the paper's three burst-buffer configurations.
//!
//! Sweeps the fraction of input files staged into the BB for Cori/private,
//! Cori/striped, and Summit/on-node, printing both the clean model's
//! prediction and an emulated "measured" execution — a miniature of the
//! paper's Figure 10 validation.
//!
//! ```sh
//! cargo run --release --example swarp_cori_vs_summit
//! ```

use wfbb::prelude::*;

fn main() {
    let emulator = Emulator::default();
    let configs = [
        presets::cori(1, BbMode::Private),
        presets::cori(1, BbMode::Striped),
        presets::summit(1),
    ];

    println!(
        "{:<14} {:>7} {:>13} {:>14} {:>8}",
        "config", "staged", "measured (s)", "simulated (s)", "error"
    );
    for platform in &configs {
        for staged in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let workflow = SwarpConfig::new(1).build();
            let placement = PlacementPolicy::FractionToBb { fraction: staged };

            // "Measured": the emulator plays the real machine (mean of 5
            // repetitions, like the paper's repeated runs).
            let measured: f64 = (0..5)
                .map(|rep| {
                    emulator
                        .run(platform, &workflow, &placement, rep)
                        .expect("emulated run succeeds")
                        .makespan
                        .seconds()
                })
                .sum::<f64>()
                / 5.0;

            // Simulated: the paper's clean model.
            let simulated = SimulationBuilder::new(platform.clone(), workflow)
                .placement(placement)
                .run()
                .expect("simulation runs")
                .makespan
                .seconds();

            println!(
                "{:<14} {:>6.0}% {:>13.2} {:>14.2} {:>+7.1}%",
                platform.name,
                staged * 100.0,
                measured,
                simulated,
                100.0 * (simulated - measured) / measured,
            );
        }
    }
    println!("\nExpected shape (paper Figs 4-5, 10): on-node < private < striped;");
    println!("staging helps private/on-node; striped barely benefits and is metadata-bound.");
}
