//! Workflow graph structure, builder, and validation.
//!
//! A workflow couples a set of [`Task`]s and a set of [`File`]s; task
//! dependencies are *induced* by files (the paper's model): if task `u`
//! produces file `f` and task `v` consumes `f`, then `v` depends on `u`.
//! Files without a producer are workflow inputs (to be staged in); files
//! without a consumer are workflow outputs.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::ids::{FileId, TaskId};

/// A data file flowing through the workflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct File {
    /// Handle of this file.
    pub id: FileId,
    /// Unique name.
    pub name: String,
    /// Size in bytes.
    pub size: f64,
}

/// A workflow task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Handle of this task.
    pub id: TaskId,
    /// Unique name.
    pub name: String,
    /// Task category ("stage-in", "resample", "combine", "sifting", ...),
    /// used by calibration tables and placement policies.
    pub category: String,
    /// Sequential compute work, in flops (excluding I/O) — the `T_i^c(1)`
    /// of Equation (4), multiplied by the reference platform's per-core
    /// speed so it is platform-independent.
    pub flops: f64,
    /// Amdahl serial fraction `α_i` of Equation (2). The paper's simulator
    /// assumes 0 (perfect speedup).
    pub alpha: f64,
    /// Number of cores the task requests.
    pub cores: usize,
    /// Input files.
    pub inputs: Vec<FileId>,
    /// Output files.
    pub outputs: Vec<FileId>,
    /// Pipeline index for embarrassingly-parallel pipeline workflows
    /// (SWarp); `None` for tasks outside any pipeline.
    pub pipeline: Option<usize>,
}

/// Validation errors raised by [`WorkflowBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkflowError {
    /// A file name was registered twice.
    DuplicateFile(String),
    /// A task name was registered twice.
    DuplicateTask(String),
    /// Two tasks claim to produce the same file.
    MultipleProducers(String),
    /// A task consumes one of its own outputs.
    SelfLoop(String),
    /// The induced dependency graph contains a cycle.
    Cycle,
    /// A task requests zero cores or has invalid numeric attributes.
    InvalidTask(String),
    /// A file has a negative or non-finite size.
    InvalidFile(String),
}

impl std::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkflowError::DuplicateFile(n) => write!(f, "duplicate file name {n:?}"),
            WorkflowError::DuplicateTask(n) => write!(f, "duplicate task name {n:?}"),
            WorkflowError::MultipleProducers(n) => {
                write!(f, "file {n:?} is produced by more than one task")
            }
            WorkflowError::SelfLoop(n) => write!(f, "task {n:?} consumes its own output"),
            WorkflowError::Cycle => write!(f, "workflow dependency graph contains a cycle"),
            WorkflowError::InvalidTask(n) => write!(f, "task {n:?} has invalid attributes"),
            WorkflowError::InvalidFile(n) => write!(f, "file {n:?} has invalid attributes"),
        }
    }
}

impl std::error::Error for WorkflowError {}

/// A validated workflow DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workflow {
    /// Workflow name.
    pub name: String,
    tasks: Vec<Task>,
    files: Vec<File>,
    /// Producer task of each file, if any (index-aligned with `files`).
    producers: Vec<Option<TaskId>>,
    /// Consumer tasks of each file (index-aligned with `files`).
    consumers: Vec<Vec<TaskId>>,
}

impl Workflow {
    /// All tasks, indexed by [`TaskId::index`].
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// All files, indexed by [`FileId::index`].
    pub fn files(&self) -> &[File] {
        &self.files
    }

    /// A task by handle.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// A file by handle.
    pub fn file(&self, id: FileId) -> &File {
        &self.files[id.index()]
    }

    /// The task producing `file`, or `None` for workflow inputs.
    pub fn producer(&self, file: FileId) -> Option<TaskId> {
        self.producers[file.index()]
    }

    /// Tasks consuming `file`.
    pub fn consumers(&self, file: FileId) -> &[TaskId] {
        &self.consumers[file.index()]
    }

    /// Direct dependencies of `task`: producers of its inputs, deduplicated
    /// and in ascending id order.
    pub fn dependencies(&self, task: TaskId) -> Vec<TaskId> {
        let mut deps: Vec<TaskId> = self.tasks[task.index()]
            .inputs
            .iter()
            .filter_map(|f| self.producers[f.index()])
            .collect();
        deps.sort_unstable();
        deps.dedup();
        deps
    }

    /// Direct dependents of `task`: consumers of its outputs, deduplicated
    /// and in ascending id order.
    pub fn dependents(&self, task: TaskId) -> Vec<TaskId> {
        let mut deps: Vec<TaskId> = self.tasks[task.index()]
            .outputs
            .iter()
            .flat_map(|f| self.consumers[f.index()].iter().copied())
            .collect();
        deps.sort_unstable();
        deps.dedup();
        deps
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Looks a task up by name.
    pub fn task_by_name(&self, name: &str) -> Option<&Task> {
        self.tasks.iter().find(|t| t.name == name)
    }

    /// Looks a file up by name.
    pub fn file_by_name(&self, name: &str) -> Option<&File> {
        self.files.iter().find(|f| f.name == name)
    }

    /// Returns a copy of the workflow with the Amdahl serial fraction of
    /// every task overridden by category (tasks whose category is not in
    /// `alphas` are unchanged). Used by the measurement emulator, which
    /// replaces the paper's perfect-speedup assumption with realistic
    /// per-task scalability.
    pub fn with_category_alphas(
        &self,
        alphas: &std::collections::HashMap<String, f64>,
    ) -> Workflow {
        self.map_tasks(|t| {
            if let Some(&a) = alphas.get(&t.category) {
                t.alpha = a;
            }
        })
    }

    /// Returns a copy of the workflow with `f` applied to every task.
    /// Numeric attributes are re-validated after the mapping.
    ///
    /// # Panics
    /// Panics if the mapping produces invalid attributes (alpha outside
    /// `[0, 1]`, non-finite flops, zero cores).
    pub fn map_tasks(&self, mut f: impl FnMut(&mut Task)) -> Workflow {
        let mut wf = self.clone();
        for t in &mut wf.tasks {
            f(t);
            assert!(
                (0.0..=1.0).contains(&t.alpha),
                "mapped task {:?} has alpha {} outside [0, 1]",
                t.name,
                t.alpha
            );
            assert!(
                t.flops.is_finite() && t.flops >= 0.0,
                "mapped task {:?} has invalid flops {}",
                t.name,
                t.flops
            );
            assert!(t.cores >= 1, "mapped task {:?} has zero cores", t.name);
        }
        wf
    }
}

/// Incremental workflow constructor.
///
/// ```
/// use wfbb_workflow::WorkflowBuilder;
///
/// let mut b = WorkflowBuilder::new("demo");
/// let input = b.add_file("in.dat", 1e6);
/// let out = b.add_file("out.dat", 2e6);
/// b.task("process")
///     .category("proc")
///     .flops(1e9)
///     .cores(4)
///     .input(input)
///     .output(out)
///     .add();
/// let wf = b.build().unwrap();
/// assert_eq!(wf.task_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct WorkflowBuilder {
    name: String,
    tasks: Vec<Task>,
    files: Vec<File>,
    file_names: HashMap<String, FileId>,
    task_names: HashMap<String, TaskId>,
    error: Option<WorkflowError>,
}

impl WorkflowBuilder {
    /// Starts a new workflow.
    pub fn new(name: impl Into<String>) -> Self {
        WorkflowBuilder {
            name: name.into(),
            tasks: Vec::new(),
            files: Vec::new(),
            file_names: HashMap::new(),
            task_names: HashMap::new(),
            error: None,
        }
    }

    /// Registers a file. Duplicate names surface as an error at
    /// [`WorkflowBuilder::build`].
    pub fn add_file(&mut self, name: impl Into<String>, size: f64) -> FileId {
        let name = name.into();
        let id = FileId::from_index(self.files.len());
        if !(size.is_finite() && size >= 0.0) {
            self.error
                .get_or_insert(WorkflowError::InvalidFile(name.clone()));
        }
        if self.file_names.insert(name.clone(), id).is_some() {
            self.error
                .get_or_insert(WorkflowError::DuplicateFile(name.clone()));
        }
        self.files.push(File { id, name, size });
        id
    }

    /// Begins describing a task; finish with [`TaskBuilder::add`].
    pub fn task(&mut self, name: impl Into<String>) -> TaskBuilder<'_> {
        TaskBuilder {
            builder: self,
            name: name.into(),
            category: String::new(),
            flops: 0.0,
            alpha: 0.0,
            cores: 1,
            inputs: Vec::new(),
            outputs: Vec::new(),
            pipeline: None,
        }
    }

    fn push_task(&mut self, task: Task) {
        if self.task_names.insert(task.name.clone(), task.id).is_some() {
            self.error
                .get_or_insert(WorkflowError::DuplicateTask(task.name.clone()));
        }
        if task.cores == 0
            || !(task.flops.is_finite() && task.flops >= 0.0)
            || !(0.0..=1.0).contains(&task.alpha)
        {
            self.error
                .get_or_insert(WorkflowError::InvalidTask(task.name.clone()));
        }
        self.tasks.push(task);
    }

    /// Validates and freezes the workflow.
    pub fn build(self) -> Result<Workflow, WorkflowError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let nfiles = self.files.len();
        let mut producers: Vec<Option<TaskId>> = vec![None; nfiles];
        let mut consumers: Vec<Vec<TaskId>> = vec![Vec::new(); nfiles];
        for t in &self.tasks {
            for f in &t.outputs {
                if producers[f.index()].is_some() {
                    return Err(WorkflowError::MultipleProducers(
                        self.files[f.index()].name.clone(),
                    ));
                }
                producers[f.index()] = Some(t.id);
            }
        }
        for t in &self.tasks {
            for f in &t.inputs {
                if producers[f.index()] == Some(t.id) {
                    return Err(WorkflowError::SelfLoop(t.name.clone()));
                }
                consumers[f.index()].push(t.id);
            }
        }

        let wf = Workflow {
            name: self.name,
            tasks: self.tasks,
            files: self.files,
            producers,
            consumers,
        };

        // Kahn's algorithm detects cycles.
        let n = wf.tasks.len();
        let mut indeg = vec![0usize; n];
        for t in &wf.tasks {
            indeg[t.id.index()] = wf.dependencies(t.id).len();
        }
        let mut queue: Vec<TaskId> = wf
            .tasks
            .iter()
            .filter(|t| indeg[t.id.index()] == 0)
            .map(|t| t.id)
            .collect();
        let mut visited = 0usize;
        while let Some(u) = queue.pop() {
            visited += 1;
            for v in wf.dependents(u) {
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    queue.push(v);
                }
            }
        }
        if visited != n {
            return Err(WorkflowError::Cycle);
        }
        Ok(wf)
    }
}

/// Fluent description of one task; created by [`WorkflowBuilder::task`].
pub struct TaskBuilder<'a> {
    builder: &'a mut WorkflowBuilder,
    name: String,
    category: String,
    flops: f64,
    alpha: f64,
    cores: usize,
    inputs: Vec<FileId>,
    outputs: Vec<FileId>,
    pipeline: Option<usize>,
}

impl TaskBuilder<'_> {
    /// Sets the task category.
    pub fn category(mut self, category: impl Into<String>) -> Self {
        self.category = category.into();
        self
    }

    /// Sets the sequential compute work in flops.
    pub fn flops(mut self, flops: f64) -> Self {
        self.flops = flops;
        self
    }

    /// Sets the Amdahl serial fraction.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the requested core count.
    pub fn cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Adds an input file.
    pub fn input(mut self, file: FileId) -> Self {
        self.inputs.push(file);
        self
    }

    /// Adds several input files.
    pub fn inputs(mut self, files: impl IntoIterator<Item = FileId>) -> Self {
        self.inputs.extend(files);
        self
    }

    /// Adds an output file.
    pub fn output(mut self, file: FileId) -> Self {
        self.outputs.push(file);
        self
    }

    /// Adds several output files.
    pub fn outputs(mut self, files: impl IntoIterator<Item = FileId>) -> Self {
        self.outputs.extend(files);
        self
    }

    /// Tags the task with a pipeline index.
    pub fn pipeline(mut self, pipeline: usize) -> Self {
        self.pipeline = Some(pipeline);
        self
    }

    /// Finalizes the task and returns its handle.
    ///
    /// Duplicate entries in the input or output lists collapse to one
    /// (reading a file is idempotent for dependency purposes, and a file
    /// has a single producer), preserving first-occurrence order.
    pub fn add(self) -> TaskId {
        let id = TaskId::from_index(self.builder.tasks.len());
        let task = Task {
            id,
            name: self.name,
            category: self.category,
            flops: self.flops,
            alpha: self.alpha,
            cores: self.cores,
            inputs: dedup_preserving_order(self.inputs),
            outputs: dedup_preserving_order(self.outputs),
            pipeline: self.pipeline,
        };
        self.builder.push_task(task);
        id
    }
}

/// Removes duplicate ids, keeping the first occurrence of each.
fn dedup_preserving_order(ids: Vec<FileId>) -> Vec<FileId> {
    let mut seen = std::collections::HashSet::new();
    ids.into_iter().filter(|f| seen.insert(*f)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Workflow {
        // a -> b, a -> c, {b, c} -> d, connected through files.
        let mut b = WorkflowBuilder::new("diamond");
        let f_in = b.add_file("in", 10.0);
        let f_ab = b.add_file("ab", 10.0);
        let f_ac = b.add_file("ac", 10.0);
        let f_bd = b.add_file("bd", 10.0);
        let f_cd = b.add_file("cd", 10.0);
        let f_out = b.add_file("out", 10.0);
        b.task("a").input(f_in).output(f_ab).output(f_ac).add();
        b.task("b").input(f_ab).output(f_bd).add();
        b.task("c").input(f_ac).output(f_cd).add();
        b.task("d").input(f_bd).input(f_cd).output(f_out).add();
        b.build().unwrap()
    }

    #[test]
    fn builds_a_diamond() {
        let wf = diamond();
        assert_eq!(wf.task_count(), 4);
        assert_eq!(wf.file_count(), 6);
        let d = wf.task_by_name("d").unwrap();
        let deps = wf.dependencies(d.id);
        assert_eq!(deps.len(), 2);
        let a = wf.task_by_name("a").unwrap();
        assert_eq!(wf.dependents(a.id).len(), 2);
        assert_eq!(wf.dependencies(a.id), vec![]);
    }

    #[test]
    fn producer_and_consumers_are_tracked() {
        let wf = diamond();
        let f = wf.file_by_name("ab").unwrap();
        assert_eq!(wf.producer(f.id), Some(wf.task_by_name("a").unwrap().id));
        assert_eq!(wf.consumers(f.id), &[wf.task_by_name("b").unwrap().id]);
        let input = wf.file_by_name("in").unwrap();
        assert_eq!(wf.producer(input.id), None);
    }

    #[test]
    fn duplicate_file_names_rejected() {
        let mut b = WorkflowBuilder::new("bad");
        b.add_file("f", 1.0);
        b.add_file("f", 2.0);
        assert_eq!(
            b.build().unwrap_err(),
            WorkflowError::DuplicateFile("f".into())
        );
    }

    #[test]
    fn duplicate_task_names_rejected() {
        let mut b = WorkflowBuilder::new("bad");
        b.task("t").add();
        b.task("t").add();
        assert_eq!(
            b.build().unwrap_err(),
            WorkflowError::DuplicateTask("t".into())
        );
    }

    #[test]
    fn multiple_producers_rejected() {
        let mut b = WorkflowBuilder::new("bad");
        let f = b.add_file("f", 1.0);
        b.task("t1").output(f).add();
        b.task("t2").output(f).add();
        assert_eq!(
            b.build().unwrap_err(),
            WorkflowError::MultipleProducers("f".into())
        );
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = WorkflowBuilder::new("bad");
        let f = b.add_file("f", 1.0);
        b.task("t").input(f).output(f).add();
        assert_eq!(b.build().unwrap_err(), WorkflowError::SelfLoop("t".into()));
    }

    #[test]
    fn cycle_rejected() {
        let mut b = WorkflowBuilder::new("bad");
        let f1 = b.add_file("f1", 1.0);
        let f2 = b.add_file("f2", 1.0);
        b.task("t1").input(f2).output(f1).add();
        b.task("t2").input(f1).output(f2).add();
        assert_eq!(b.build().unwrap_err(), WorkflowError::Cycle);
    }

    #[test]
    fn zero_core_task_rejected() {
        let mut b = WorkflowBuilder::new("bad");
        b.task("t").cores(0).add();
        assert_eq!(
            b.build().unwrap_err(),
            WorkflowError::InvalidTask("t".into())
        );
    }

    #[test]
    fn negative_file_size_rejected() {
        let mut b = WorkflowBuilder::new("bad");
        b.add_file("f", -1.0);
        assert_eq!(
            b.build().unwrap_err(),
            WorkflowError::InvalidFile("f".into())
        );
    }

    #[test]
    fn invalid_alpha_rejected() {
        let mut b = WorkflowBuilder::new("bad");
        b.task("t").alpha(2.0).add();
        assert_eq!(
            b.build().unwrap_err(),
            WorkflowError::InvalidTask("t".into())
        );
    }

    #[test]
    fn duplicate_file_references_collapse() {
        let mut b = WorkflowBuilder::new("dups");
        let f = b.add_file("f", 1.0);
        let g = b.add_file("g", 1.0);
        b.task("w").outputs([f, g]).add();
        let t = b.task("r").inputs([f, f, g, f]).add();
        let wf = b.build().unwrap();
        assert_eq!(wf.task(t).inputs, vec![f, g]);
    }

    #[test]
    fn pipeline_tags_are_preserved() {
        let mut b = WorkflowBuilder::new("p");
        b.task("t0").pipeline(3).add();
        let wf = b.build().unwrap();
        assert_eq!(wf.tasks()[0].pipeline, Some(3));
    }

    #[test]
    fn map_tasks_rewrites_attributes() {
        let wf = diamond();
        let doubled = wf.map_tasks(|t| t.flops *= 2.0);
        for (a, b) in wf.tasks().iter().zip(doubled.tasks()) {
            assert_eq!(b.flops, a.flops * 2.0);
        }
        // Structure untouched.
        assert_eq!(doubled.task_count(), wf.task_count());
        assert_eq!(
            doubled.dependencies(TaskId::from_index(3)),
            wf.dependencies(TaskId::from_index(3))
        );
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn map_tasks_validates_alpha() {
        let wf = diamond();
        let _ = wf.map_tasks(|t| t.alpha = 2.0);
    }

    #[test]
    fn category_alpha_overrides_apply_selectively() {
        let mut b = WorkflowBuilder::new("alphas");
        b.task("r").category("resample").add();
        b.task("c").category("combine").add();
        let wf = b.build().unwrap();
        let mut alphas = std::collections::HashMap::new();
        alphas.insert("combine".to_string(), 0.5);
        let adjusted = wf.with_category_alphas(&alphas);
        assert_eq!(adjusted.task_by_name("r").unwrap().alpha, 0.0);
        assert_eq!(adjusted.task_by_name("c").unwrap().alpha, 0.5);
    }

    #[test]
    fn errors_display_helpfully() {
        assert!(WorkflowError::Cycle.to_string().contains("cycle"));
        assert!(WorkflowError::SelfLoop("x".into())
            .to_string()
            .contains("x"));
    }
}
