//! Typed identifiers for engine entities.
//!
//! The engine hands out dense indices wrapped in newtypes so that resource
//! and activity handles cannot be mixed up, while staying `Copy` and cheap
//! to store in routes and event queues.

use std::fmt;

/// Handle to a resource (link, disk, CPU pool) registered in an
/// [`Engine`](crate::Engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub(crate) u32);

impl ResourceId {
    /// The dense index of this resource inside its engine.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `ResourceId` from a raw index.
    ///
    /// Only meaningful for indices previously obtained from
    /// [`ResourceId::index`] on the same engine; mainly useful for tests and
    /// serialization of traces.
    pub fn from_index(index: usize) -> Self {
        ResourceId(u32::try_from(index).expect("resource index overflows u32"))
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Handle to an activity (flow or delay) spawned in an
/// [`Engine`](crate::Engine).
///
/// Activity ids increase monotonically in spawn order; ties between
/// simultaneous completions are broken by id, making simulations
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActivityId(pub(crate) u64);

impl ActivityId {
    /// The raw sequence number of this activity.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ActivityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_id_round_trips_index() {
        let id = ResourceId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(format!("{id}"), "R7");
    }

    #[test]
    fn activity_ids_order_by_raw_value() {
        let a = ActivityId(1);
        let b = ActivityId(2);
        assert!(a < b);
        assert_eq!(format!("{a}"), "A1");
    }
}
