//! Regenerates the paper's table1 data; see `wfbb_experiments::figures`.
fn main() {
    wfbb_experiments::run_and_save("table1");
}
