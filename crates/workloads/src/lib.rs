//! # wfbb-workloads — workflow generators
//!
//! Generators for the two applications the paper studies plus generic DAG
//! patterns for testing and exploration:
//!
//! * [`swarp`] — the SWarp cosmology workflow (Figure 2): a sequential
//!   stage-in followed by embarrassingly parallel pipelines of
//!   `Resample → Combine`, 16 input images (32 MiB) and 16 weight maps
//!   (16 MiB) per pipeline, calibrated from the observed task times and
//!   λ values in `wfbb-calibration`;
//! * [`genomes`] — the 1000Genomes workflow (Figure 12): per-chromosome
//!   fork–join lattices (individuals → merge; sifting) feeding
//!   mutation-overlap and frequency tasks, sized to the paper's instance
//!   (22 chromosomes, 903 tasks, ~67 GB footprint, ~52 GB input);
//! * [`patterns`] — chains, fork–joins, and seeded random layered DAGs;
//! * [`gallery`] — classic workflow archetypes (Montage, Epigenomics,
//!   CyberShake) for exercising diverse I/O patterns.

#![deny(missing_docs)]

pub mod gallery;
pub mod genomes;
pub mod patterns;
pub mod swarp;

pub use genomes::GenomesConfig;
pub use swarp::SwarpConfig;
