//! Scheduler decision-log acceptance tests: bitwise determinism of the
//! JSONL export (per solve mode and across solver thread counts),
//! byte-identity of the campaign report with the log on vs. off, the
//! exact wait-decomposition identity on the oversubscribed 20-job
//! acceptance workload, plan-search records, and a golden-file pin of
//! the JSONL schema (regenerate with
//! `UPDATE_GOLDEN=1 cargo test --test decision_log`).

use proptest::prelude::*;
use serde_json::Value;

use wfbb::prelude::*;
use wfbb::sched::{
    run_campaign, run_campaign_logged, BatchPolicy, CampaignConfig, CampaignRun, JobSpec,
    JobStatus, SyntheticConfig,
};

const NODES: usize = 8;

fn config(policy: BatchPolicy) -> CampaignConfig {
    CampaignConfig::new(presets::cori(NODES, BbMode::Striped))
        .with_policy(policy)
        .with_platform_label("cori:striped")
        .with_decision_log(true)
}

/// The oversubscribed 20-job acceptance workload of `tests/campaign.rs`.
fn pressured_campaign() -> Vec<JobSpec> {
    wfbb::sched::synthetic_jobs(
        20260806,
        &SyntheticConfig {
            jobs: 20,
            mean_interarrival: 15.0,
            bb_request_scale: 2.0,
            max_nodes: 2,
        },
    )
    .unwrap()
}

/// A smaller pressured campaign for the golden file and proptest cases.
fn small_campaign(seed: u64, jobs: usize) -> Vec<JobSpec> {
    wfbb::sched::synthetic_jobs(
        seed,
        &SyntheticConfig {
            jobs,
            mean_interarrival: 15.0,
            bb_request_scale: 2.0,
            max_nodes: 2,
        },
    )
    .unwrap()
}

fn run_logged(policy: BatchPolicy, jobs: &[JobSpec]) -> CampaignRun {
    run_campaign_logged(&config(policy), jobs).unwrap()
}

// ---- golden file --------------------------------------------------------

#[test]
fn decision_jsonl_matches_golden_file() {
    let golden = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/campaign_decisions.jsonl"
    );
    let run = run_logged(BatchPolicy::BbAware, &small_campaign(20260806, 8));
    let jsonl = run.log.to_jsonl();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(golden).parent().unwrap()).unwrap();
        std::fs::write(golden, &jsonl).unwrap();
    }
    let expected = std::fs::read_to_string(golden)
        .expect("golden file missing; run UPDATE_GOLDEN=1 cargo test --test decision_log");
    assert_eq!(
        jsonl, expected,
        "decision-log JSONL drifted from the golden file; if the schema \
         change is intentional, regenerate with UPDATE_GOLDEN=1 and update \
         docs/trace-format.md (bumping TRACE_SCHEMA_VERSION on breaking \
         changes)"
    );
}

#[test]
fn decision_jsonl_lines_all_parse_and_cover_schema() {
    let run = run_logged(BatchPolicy::BbAware, &pressured_campaign());
    let jsonl = run.log.to_jsonl();
    let mut types = std::collections::BTreeSet::new();
    for (i, line) in jsonl.lines().enumerate() {
        let v: Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("line {} is not valid JSON ({e}): {line}", i + 1));
        let ty = v
            .get("type")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("line {} lacks a type tag", i + 1));
        types.insert(ty.to_string());
    }
    for expected in ["header", "decision", "pool", "counters", "summary"] {
        assert!(types.contains(expected), "missing record type {expected:?}");
    }
    // Header carries the trace schema version shared with run traces.
    let header: Value = serde_json::from_str(jsonl.lines().next().unwrap()).unwrap();
    assert_eq!(
        header.get("version").and_then(Value::as_u64),
        Some(wfbb::wms::TRACE_SCHEMA_VERSION as u64)
    );
    assert_eq!(
        header.get("schema").and_then(Value::as_str),
        Some("wfbb-sched-decisions")
    );
    // The summary's ledger tallies balance: every reserve was released.
    let summary: Value = serde_json::from_str(jsonl.lines().last().unwrap()).unwrap();
    assert_eq!(
        summary.get("pool_reserves").and_then(Value::as_u64),
        summary.get("pool_releases").and_then(Value::as_u64)
    );
    assert!(
        summary
            .get("min_pool_free")
            .and_then(Value::as_f64)
            .unwrap()
            >= 0.0
    );
}

// ---- determinism --------------------------------------------------------

/// Same seed, same solve mode ⇒ bitwise-identical decision logs; and the
/// partitioned solver's thread count never leaks into the log.
#[test]
fn decision_log_is_bitwise_deterministic_per_mode_and_across_threads() {
    let jobs = pressured_campaign();
    for mode in [SolveMode::Incremental, SolveMode::Naive] {
        let a = run_campaign_logged(&config(BatchPolicy::BbAware).with_solve_mode(mode), &jobs)
            .unwrap();
        let b = run_campaign_logged(&config(BatchPolicy::BbAware).with_solve_mode(mode), &jobs)
            .unwrap();
        assert_eq!(
            a.log.to_jsonl(),
            b.log.to_jsonl(),
            "{mode:?} log must be deterministic"
        );
        assert_eq!(a.report.to_json(), b.report.to_json());
    }
    let t1 =
        run_campaign_logged(&config(BatchPolicy::BbAware).with_solver_threads(1), &jobs).unwrap();
    let t4 =
        run_campaign_logged(&config(BatchPolicy::BbAware).with_solver_threads(4), &jobs).unwrap();
    assert_eq!(
        t1.log.to_jsonl(),
        t4.log.to_jsonl(),
        "solver thread count must not change the decision log"
    );
    assert_eq!(t1.report.to_json(), t4.report.to_json());
}

/// Enabling the decision log leaves the campaign report byte-identical —
/// the acceptance-criteria pin, checked across every policy.
#[test]
fn log_on_report_is_byte_identical_to_log_off() {
    let jobs = pressured_campaign();
    for policy in BatchPolicy::ALL {
        let off = run_campaign(&config(policy).with_decision_log(false), &jobs).unwrap();
        let on = run_logged(policy, &jobs);
        assert_eq!(
            off.to_json(),
            on.report.to_json(),
            "{}: the decision log must not perturb the report",
            policy.label()
        );
        assert_eq!(off.jobs_csv(), on.report.jobs_csv());
        assert_eq!(off.perfetto_trace_json(), on.report.perfetto_trace_json());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Log-on/log-off report equivalence over randomized campaigns.
    #[test]
    fn log_never_perturbs_reports(seed in 1u64..500, jobs in 4usize..10) {
        let workload = small_campaign(seed, jobs);
        let policy = match seed % 3 {
            0 => BatchPolicy::Fcfs,
            1 => BatchPolicy::EasyBackfill,
            _ => BatchPolicy::BbAware,
        };
        let off = run_campaign(&config(policy).with_decision_log(false), &workload).unwrap();
        let on = run_campaign_logged(&config(policy), &workload).unwrap();
        prop_assert_eq!(off.to_json(), on.report.to_json());
    }
}

// ---- wait decomposition -------------------------------------------------

/// On the acceptance workload, every job's queue wait decomposes exactly
/// into nodes + bb + reservation time (within 1e-9 of floating
/// accumulation), with exact zeros for jobs that never waited.
#[test]
fn wait_decomposition_sums_exactly_to_queue_wait() {
    let jobs = pressured_campaign();
    for policy in BatchPolicy::ALL {
        let run = run_logged(policy, &jobs);
        let mut blocked_jobs = 0;
        for j in &run.report.jobs {
            assert_eq!(j.status, JobStatus::Completed, "{}", policy.label());
            let sum = j.blocked_on_nodes + j.blocked_on_bb + j.blocked_on_reservation;
            assert!(
                (sum - j.wait).abs() <= 1e-9,
                "{} job {}: decomposition {sum} != wait {}",
                policy.label(),
                j.name,
                j.wait
            );
            if j.wait == 0.0 {
                assert_eq!(j.blocked_on_nodes, 0.0, "{}", j.name);
                assert_eq!(j.blocked_on_bb, 0.0, "{}", j.name);
                assert_eq!(j.blocked_on_reservation, 0.0, "{}", j.name);
            } else {
                blocked_jobs += 1;
            }
        }
        assert!(
            blocked_jobs > 0,
            "{}: the pressured campaign must block someone",
            policy.label()
        );
        let totals = run.report.blocked_on_nodes_total
            + run.report.blocked_on_bb_total
            + run.report.blocked_on_reservation_total;
        let waits: f64 = run.report.jobs.iter().map(|j| j.wait).sum();
        assert!((totals - waits).abs() <= 1e-6, "{}", policy.label());
        assert_ne!(run.report.dominant_block(), "none", "{}", policy.label());
    }
}

// ---- plan records and profile -------------------------------------------

/// Under the plan policy the log carries ordering-search records with
/// scored candidates, and the profile counts the forks.
#[test]
fn plan_policy_logs_ordering_searches() {
    let jobs = small_campaign(3, 8);
    let run = run_logged(BatchPolicy::Plan, &jobs);
    let jsonl = run.log.to_jsonl();
    let plans: Vec<Value> = jsonl
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .filter(|v: &Value| v.get("type").and_then(Value::as_str) == Some("plan"))
        .collect();
    assert!(!plans.is_empty(), "plan campaign must record searches");
    const RULES: [&str; 5] = [
        "arrival",
        "shortest_first",
        "smallest_bb_first",
        "largest_bb_first",
        "fewest_nodes_first",
    ];
    for p in &plans {
        let winner = p.get("winner").and_then(Value::as_str).unwrap();
        assert!(RULES.contains(&winner), "unknown winner {winner:?}");
        let candidates = p.get("candidates").and_then(Value::as_array).unwrap();
        assert!(!candidates.is_empty());
        for c in candidates {
            let rule = c.get("rule").and_then(Value::as_str).unwrap();
            assert!(RULES.contains(&rule));
            assert!(c.get("score").and_then(Value::as_f64).unwrap() >= 1.0 - 1e-9);
            assert!(!c.get("order").and_then(Value::as_array).unwrap().is_empty());
        }
        // The winner is one of the scored candidates.
        assert!(candidates
            .iter()
            .any(|c| c.get("rule").and_then(Value::as_str) == Some(winner)));
    }
    assert!(run.profile.plan_forks > 0, "forks must be counted");
    assert!(run.profile.plan_choices as usize >= plans.len());
    assert!(run.profile.admission_passes > 0);
    assert!(run.profile.events > 0);
}

/// The decision lane survives into the campaign Perfetto trace, and the
/// partition counters surface in both exports when partitioning is on.
#[test]
fn perfetto_and_jsonl_surface_decisions_and_partition_counters() {
    let jobs = small_campaign(20260806, 8);
    let run =
        run_campaign_logged(&config(BatchPolicy::BbAware).with_solver_threads(2), &jobs).unwrap();
    let trace = run.report.perfetto_trace_with_decisions(&run.log);
    assert!(trace.contains("\"name\":\"scheduler\""), "decision lane");
    assert!(trace.contains("\"name\":\"bb_pool_free\""), "pool counter");
    assert!(trace.contains("\"name\":\"engine_counters\""));
    assert!(trace.contains("\"partitioned_solves\":"));
    let jsonl = run.log.to_jsonl();
    let counters = jsonl
        .lines()
        .find(|l| l.contains("\"type\":\"counters\""))
        .expect("counters line");
    for key in [
        "partitioned_solves",
        "components",
        "component_max",
        "singleton_components",
        "components_reused",
    ] {
        assert!(counters.contains(&format!("\"{key}\":")), "{counters}");
    }
    let report_json = run.report.to_json();
    assert!(report_json.contains("\"engine_counters\":{"));
    assert!(report_json.contains("\"components_reused\":"));
}
