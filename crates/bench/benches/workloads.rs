//! Full-simulation benchmarks: the paper's two applications end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wfbb_platform::{presets, BbMode};
use wfbb_storage::PlacementPolicy;
use wfbb_wms::SimulationBuilder;
use wfbb_workloads::{GenomesConfig, SwarpConfig};

/// SWarp with increasing pipeline counts on Cori/private (the Figure 7/11
/// configuration).
fn bench_swarp(c: &mut Criterion) {
    let mut group = c.benchmark_group("swarp_simulation");
    for pipelines in [1usize, 8, 32] {
        group.bench_with_input(
            BenchmarkId::from_parameter(pipelines),
            &pipelines,
            |b, &p| {
                let platform = presets::cori(1, BbMode::Private);
                let wf = SwarpConfig::new(p).with_cores_per_task(1).build();
                b.iter(|| {
                    let report = SimulationBuilder::new(platform.clone(), wf.clone())
                        .placement(PlacementPolicy::AllBb)
                        .run()
                        .unwrap();
                    black_box(report.makespan)
                })
            },
        );
    }
    group.finish();
}

/// 1000Genomes at increasing chromosome counts on Summit, up to the
/// paper's 22-chromosome / 903-task instance.
fn bench_genomes(c: &mut Criterion) {
    let mut group = c.benchmark_group("genomes_simulation");
    group.sample_size(10);
    for chromosomes in [4usize, 22] {
        group.bench_with_input(
            BenchmarkId::from_parameter(chromosomes),
            &chromosomes,
            |b, &n| {
                let platform = presets::summit(4);
                let wf = GenomesConfig::new(n).build();
                b.iter(|| {
                    let report = SimulationBuilder::new(platform.clone(), wf.clone())
                        .placement(PlacementPolicy::FractionToBb { fraction: 0.5 })
                        .run()
                        .unwrap();
                    black_box(report.makespan)
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_swarp, bench_genomes
}
criterion_main!(benches);
