//! Automatic parameter calibration.
//!
//! The paper calibrates its simulator by hand from Table I and published
//! characterizations, and argues (Section IV-B) that adding parameters
//! only helps if accurate values exist for them. This module automates
//! the step the authors did manually: given *measured* makespans over a
//! sweep (here: emulator output standing in for real runs), search a
//! small set of platform parameters to minimize the mean absolute
//! percentage error of the simulator on that sweep.
//!
//! The optimizer is a deterministic coordinate descent over log-scaled
//! parameters with shrinking step size — simple, derivative-free, and
//! reproducible, which matters more here than convergence speed.

use wfbb_platform::PlatformSpec;

use crate::error::mean_absolute_percentage_error;

/// A tunable platform parameter exposed to the fitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitParam {
    /// `bb_network_bw` — the shared-BB path bandwidth.
    BbNetworkBw,
    /// `bb_disk_bw` — the BB device bandwidth.
    BbDiskBw,
    /// `pfs_disk_bw` — the PFS backing-store bandwidth.
    PfsDiskBw,
    /// `io_core_bw` — per-core POSIX I/O throughput.
    IoCoreBw,
    /// `bb_meta_ops` — BB metadata throughput.
    BbMetaOps,
}

impl FitParam {
    /// Reads the parameter's current value.
    pub fn get(self, p: &PlatformSpec) -> f64 {
        match self {
            FitParam::BbNetworkBw => p.bb_network_bw,
            FitParam::BbDiskBw => p.bb_disk_bw,
            FitParam::PfsDiskBw => p.pfs_disk_bw,
            FitParam::IoCoreBw => p.io_core_bw,
            FitParam::BbMetaOps => p.bb_meta_ops,
        }
    }

    /// Writes a new value for the parameter.
    pub fn set(self, p: &mut PlatformSpec, value: f64) {
        match self {
            FitParam::BbNetworkBw => p.bb_network_bw = value,
            FitParam::BbDiskBw => p.bb_disk_bw = value,
            FitParam::PfsDiskBw => p.pfs_disk_bw = value,
            FitParam::IoCoreBw => p.io_core_bw = value,
            FitParam::BbMetaOps => p.bb_meta_ops = value,
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            FitParam::BbNetworkBw => "bb_network_bw",
            FitParam::BbDiskBw => "bb_disk_bw",
            FitParam::PfsDiskBw => "pfs_disk_bw",
            FitParam::IoCoreBw => "io_core_bw",
            FitParam::BbMetaOps => "bb_meta_ops",
        }
    }
}

/// Result of a calibration run.
#[derive(Debug, Clone)]
pub struct FitResult {
    /// The calibrated platform.
    pub platform: PlatformSpec,
    /// Error before fitting, percent.
    pub initial_error: f64,
    /// Error after fitting, percent.
    pub final_error: f64,
    /// Simulator evaluations performed.
    pub evaluations: usize,
}

/// Calibrates `params` of `initial` so that `simulate(platform)` best
/// matches `measured` (MAPE), via coordinate descent on a log scale.
///
/// `simulate` must return one predicted value per entry of `measured`
/// (e.g. the makespans of a staged-fraction sweep). Each parameter is
/// constrained to `[initial/limit, initial×limit]` with `limit = 8`, so
/// the fit refines the hand calibration rather than wandering off to a
/// degenerate optimum.
pub fn fit_platform<F>(
    initial: &PlatformSpec,
    params: &[FitParam],
    measured: &[f64],
    mut simulate: F,
) -> FitResult
where
    F: FnMut(&PlatformSpec) -> Vec<f64>,
{
    assert!(!measured.is_empty(), "need at least one measured point");
    assert!(!params.is_empty(), "need at least one parameter to fit");
    const LIMIT: f64 = 8.0;
    const ROUNDS: usize = 6;
    let mut evaluations = 0usize;
    let mut eval = |p: &PlatformSpec, evals: &mut usize| -> f64 {
        *evals += 1;
        let predicted = simulate(p);
        assert_eq!(
            predicted.len(),
            measured.len(),
            "simulate must return one prediction per measured point"
        );
        mean_absolute_percentage_error(measured, &predicted)
    };

    let mut best = initial.clone();
    let initial_error = eval(&best, &mut evaluations);
    let mut best_error = initial_error;

    // Multiplicative step, shrinking each round: 2, √2, 2^(1/4), ...
    let mut step = 2.0f64;
    for _ in 0..ROUNDS {
        for &param in params {
            let center = param.get(&best);
            let lo = param.get(initial) / LIMIT;
            let hi = param.get(initial) * LIMIT;
            for candidate in [center / step, center * step] {
                let value = candidate.clamp(lo, hi);
                let mut trial = best.clone();
                param.set(&mut trial, value);
                if trial.validate().is_err() {
                    continue;
                }
                let err = eval(&trial, &mut evaluations);
                if err < best_error {
                    best_error = err;
                    best = trial;
                }
            }
        }
        step = step.sqrt();
    }

    FitResult {
        platform: best,
        initial_error,
        final_error: best_error,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfbb_platform::{presets, BbMode};
    use wfbb_storage::PlacementPolicy;
    use wfbb_wms::SimulationBuilder;
    use wfbb_workflow::WorkflowBuilder;

    fn workflow() -> wfbb_workflow::Workflow {
        let mut b = WorkflowBuilder::new("fit");
        let inputs: Vec<_> = (0..8).map(|i| b.add_file(format!("in{i}"), 48e6)).collect();
        let out = b.add_file("out", 16e6);
        b.task("t")
            .category("work")
            .flops(1e12)
            .cores(16)
            .inputs(inputs)
            .output(out)
            .add();
        b.build().unwrap()
    }

    fn sweep(platform: &PlatformSpec) -> Vec<f64> {
        [0.0, 0.5, 1.0]
            .iter()
            .map(|&fraction| {
                SimulationBuilder::new(platform.clone(), workflow())
                    .placement(PlacementPolicy::FractionToBb { fraction })
                    .run()
                    .unwrap()
                    .makespan
                    .seconds()
            })
            .collect()
    }

    #[test]
    fn recovers_a_perturbed_bandwidth() {
        // Ground truth: the standard Cori. "Measured" series comes from
        // it; start the fit from a mis-calibrated copy.
        let truth = presets::cori(1, BbMode::Private);
        let measured = sweep(&truth);
        let mut start = truth.clone();
        start.bb_network_bw /= 3.0;
        let initial_err;
        let result = {
            let r = fit_platform(&start, &[FitParam::BbNetworkBw], &measured, sweep);
            initial_err = r.initial_error;
            r
        };
        assert!(initial_err > 1.0, "mis-calibration must be visible");
        assert!(
            result.final_error < initial_err / 2.0,
            "fit must recover most of the error: {initial_err} -> {}",
            result.final_error
        );
        let recovered = result.platform.bb_network_bw;
        assert!(
            (recovered / truth.bb_network_bw) > 0.5 && (recovered / truth.bb_network_bw) < 2.0,
            "recovered bandwidth within 2x of truth: {recovered}"
        );
    }

    #[test]
    fn perfect_start_stays_put() {
        let truth = presets::summit(1);
        let measured = sweep(&truth);
        let result = fit_platform(&truth, &[FitParam::BbDiskBw], &measured, sweep);
        assert!(result.initial_error < 1e-9);
        assert!(result.final_error <= result.initial_error + 1e-12);
    }

    #[test]
    fn multi_parameter_fit_reduces_error() {
        let truth = presets::cori(1, BbMode::Private);
        let measured = sweep(&truth);
        let mut start = truth.clone();
        start.bb_network_bw *= 2.5;
        start.pfs_disk_bw /= 2.0;
        let result = fit_platform(
            &start,
            &[FitParam::BbNetworkBw, FitParam::PfsDiskBw],
            &measured,
            sweep,
        );
        assert!(result.final_error < result.initial_error);
        assert!(result.evaluations > 10, "the search actually searched");
    }

    #[test]
    fn params_round_trip_through_get_set() {
        let mut p = presets::generic(1);
        for param in [
            FitParam::BbNetworkBw,
            FitParam::BbDiskBw,
            FitParam::PfsDiskBw,
            FitParam::IoCoreBw,
            FitParam::BbMetaOps,
        ] {
            param.set(&mut p, 123.0);
            assert_eq!(param.get(&p), 123.0, "{}", param.label());
        }
    }

    #[test]
    #[should_panic(expected = "at least one measured point")]
    fn empty_measurements_rejected() {
        let p = presets::generic(1);
        let _ = fit_platform(&p, &[FitParam::PfsDiskBw], &[], |_| vec![]);
    }
}
