//! Offline stand-in for the [rayon](https://docs.rs/rayon) crate.
//!
//! Implements the subset of the rayon 1.x API this workspace uses —
//! [`scope`] with [`Scope::spawn`] and [`current_num_threads`] — on top of
//! one process-wide persistent worker pool. Workers are spawned lazily on
//! first use (one per available hardware thread) and live for the rest of
//! the process, so dispatching a scope costs a queue push, not a thread
//! spawn; callers that invoke [`scope`] hot (the simulation engine solves
//! many thousands of epochs per run) pay no per-call thread setup.
//!
//! Scheduling differences from real rayon (a global FIFO queue instead of
//! per-worker deques with stealing) only affect *which* thread runs a job,
//! never its result: the workspace's only parallel workload writes to
//! disjoint buffers and merges serially in a canonical order.
//!
//! While a scope waits for its spawned jobs it helps execute queued work,
//! so nested scopes make progress even on a pool with a single worker.
//! A panic in any spawned job is captured and re-thrown from [`scope`]
//! after all jobs of that scope have finished, matching rayon's contract.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// A unit of work after its `'scope` lifetime has been erased. Safety of
/// the erasure rests on [`scope`] never returning before the job has run.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The process-wide worker pool: a FIFO job queue and the threads
/// draining it.
struct Pool {
    queue: Mutex<VecDeque<Job>>,
    work_ready: Condvar,
    workers: usize,
}

impl Pool {
    fn push(&self, job: Job) {
        self.queue.lock().unwrap().push_back(job);
        self.work_ready.notify_one();
    }

    fn try_pop(&self) -> Option<Job> {
        self.queue.lock().unwrap().pop_front()
    }
}

/// The lazily-initialized global pool, with one worker per available
/// hardware thread (at least one).
fn pool() -> &'static Pool {
    static POOL: OnceLock<&'static Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            workers,
        }));
        for i in 0..workers {
            std::thread::Builder::new()
                .name(format!("rayon-worker-{i}"))
                .spawn(move || worker_loop(pool))
                .expect("failed to spawn rayon worker thread");
        }
        pool
    })
}

fn worker_loop(pool: &'static Pool) {
    loop {
        let job = {
            let mut queue = pool.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = pool.work_ready.wait(queue).unwrap();
            }
        };
        job();
    }
}

/// Number of worker threads in the global pool.
pub fn current_num_threads() -> usize {
    pool().workers
}

/// Shared bookkeeping of one [`scope`] invocation: how many spawned jobs
/// are still outstanding, and the first panic payload captured from them.
struct ScopeState {
    pending: Mutex<usize>,
    all_done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// A scope in which borrowed-data tasks can be spawned; see [`scope`].
pub struct Scope<'scope> {
    state: Arc<ScopeState>,
    /// Makes `'scope` invariant, as in real rayon, so a longer-lived scope
    /// cannot be smuggled where a shorter-lived one is expected.
    _marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Queues `body` for execution on the pool. The closure may borrow
    /// anything that outlives the scope; [`scope`] does not return until
    /// every spawned body has finished.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        *self.state.pending.lock().unwrap() += 1;
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let nested = Scope {
                state: Arc::clone(&state),
                _marker: PhantomData,
            };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(&nested))) {
                state.panic.lock().unwrap().get_or_insert(payload);
            }
            let mut pending = state.pending.lock().unwrap();
            *pending -= 1;
            if *pending == 0 {
                state.all_done.notify_all();
            }
        });
        // SAFETY: `scope` blocks until `pending` reaches zero, i.e. until
        // this job has run to completion, so the job can never observe a
        // dangling `'scope` borrow even though the queue stores it as
        // `'static`.
        let job: Job =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
        pool().push(job);
    }
}

/// Creates a scope whose spawned tasks may borrow non-`'static` data, and
/// blocks until all of them have completed.
///
/// Returns the closure's result. If any spawned task panicked, the first
/// captured payload is re-thrown here after all tasks have finished.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    let s = Scope {
        state: Arc::new(ScopeState {
            pending: Mutex::new(0),
            all_done: Condvar::new(),
            panic: Mutex::new(None),
        }),
        _marker: PhantomData,
    };
    let result = f(&s);
    wait_for_scope(&s.state);
    let panic = s.state.panic.lock().unwrap().take();
    if let Some(payload) = panic {
        resume_unwind(payload);
    }
    result
}

/// Blocks until the scope's pending count reaches zero, helping execute
/// queued jobs in the meantime (required for nested scopes to make
/// progress when every pool worker is itself blocked in a scope).
fn wait_for_scope(state: &ScopeState) {
    loop {
        {
            let pending = state.pending.lock().unwrap();
            if *pending == 0 {
                return;
            }
        }
        if let Some(job) = pool().try_pop() {
            job();
            continue;
        }
        let pending = state.pending.lock().unwrap();
        if *pending == 0 {
            return;
        }
        // A short timeout papers over the benign race where the last job
        // finishes (and notifies) between the queue poll above and this
        // wait; the loop re-checks both conditions on every wake-up.
        let _ = state
            .all_done
            .wait_timeout(pending, Duration::from_millis(1))
            .unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_tasks_borrow_and_complete() {
        let mut out = vec![0u64; 64];
        scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move |_| *slot = (i as u64) * 2);
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == (i as u64) * 2));
    }

    #[test]
    fn scope_returns_closure_result() {
        let hits = AtomicUsize::new(0);
        let r = scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
            42
        });
        assert_eq!(r, 42);
        assert_eq!(hits.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn nested_scopes_make_progress() {
        let total = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|_| {
                                total.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn nested_spawn_on_same_scope() {
        let total = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s| {
                total.fetch_add(1, Ordering::SeqCst);
                s.spawn(|_| {
                    total.fetch_add(1, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(total.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn panics_propagate_to_scope_caller() {
        let result = std::panic::catch_unwind(|| {
            scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn reports_at_least_one_worker() {
        assert!(current_num_threads() >= 1);
    }
}
