//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion 0.5 this workspace's benches use:
//! `Criterion::default().sample_size(n)`, `benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_with_input, finish}`,
//! `BenchmarkId::from_parameter`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery, each benchmark is timed with
//! `std::time::Instant`: a short calibration run picks an iteration count per
//! sample, `sample_size` samples are collected, and the median/min/max
//! per-iteration times are printed. Command-line flags: `--test` runs every
//! benchmark body exactly once (the CI smoke mode), a positional argument
//! filters benchmarks by substring, and other flags (e.g. `--bench`, which
//! cargo always passes) are ignored.
//!
//! Measured runs also persist each benchmark's median to
//! `<target>/criterion/<group>/<bench>/new/estimates.json` in (a subset of)
//! real criterion's on-disk layout, so tooling like
//! `scripts/bench-summary.py` works unchanged against either harness. The
//! output root honours `CRITERION_HOME`, then `CARGO_TARGET_DIR`, then the
//! `target` directory containing the bench executable.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (re-export convenience;
/// the benches may also use `std::hint::black_box` directly).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Applies command-line arguments (`--test`, name filter); called by the
    /// `criterion_group!` expansion.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                // Flags cargo/criterion accept that take a value.
                "--sample-size" | "--measurement-time" | "--warm-up-time" | "--save-baseline"
                | "--baseline" => {
                    let _ = args.next();
                }
                other if other.starts_with("--") => {}
                other => self.filter = Some(other.to_string()),
            }
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A named benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    parameter: String,
}

impl BenchmarkId {
    /// A benchmark identified by its parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            parameter: parameter.to_string(),
        }
    }

    /// A benchmark with a function name and parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            parameter: format!("{function}/{parameter}"),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks `routine`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut routine: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_name = format!("{}/{}", self.name, id.parameter);
        if let Some(filter) = &self.criterion.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            report: None,
        };
        routine(&mut bencher, input);
        match bencher.report {
            _ if bencher.test_mode => println!("{full_name}: ok (test mode)"),
            Some(report) => {
                println!(
                    "{full_name}  time: [{} {} {}] ({} samples x {} iters)",
                    format_time(report.min),
                    format_time(report.median),
                    format_time(report.max),
                    bencher.sample_size,
                    report.iters_per_sample,
                );
                save_estimates(&self.name, &id.parameter, &report);
            }
            None => println!("{full_name}: no measurement (Bencher::iter not called)"),
        }
    }

    /// Benchmarks `routine` with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut routine: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = BenchmarkId::from_parameter(id.into());
        self.bench_with_input(id, &(), |b, ()| routine(b));
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

struct Report {
    min: Duration,
    median: Duration,
    max: Duration,
    iters_per_sample: u64,
}

/// The root of the criterion output tree: `CRITERION_HOME`, else
/// `$CARGO_TARGET_DIR/criterion`, else the `target` ancestor of the bench
/// executable (cargo places it under `target/release/deps/`).
fn criterion_dir() -> Option<std::path::PathBuf> {
    if let Ok(home) = std::env::var("CRITERION_HOME") {
        return Some(std::path::PathBuf::from(home));
    }
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return Some(std::path::PathBuf::from(dir).join("criterion"));
    }
    let exe = std::env::current_exe().ok()?;
    exe.ancestors()
        .find(|p| p.file_name().is_some_and(|n| n == "target"))
        .map(|p| p.join("criterion"))
}

/// Writes `<root>/<group>/<bench>/new/estimates.json` with the median point
/// estimate in nanoseconds — the slice of real criterion's layout that
/// summary tooling reads. Benchmark ids may contain `/` (e.g.
/// `BenchmarkId::new("naive", 250)`), yielding nested directories exactly
/// as real criterion does. Failures are silent: persistence is best-effort
/// and must never fail a bench run.
fn save_estimates(group: &str, bench: &str, report: &Report) {
    let Some(root) = criterion_dir() else { return };
    let mut dir = root.join(group);
    for part in bench.split('/') {
        dir.push(part);
    }
    dir.push("new");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let body = format!(
        "{{\"median\":{{\"point_estimate\":{:.1}}}}}\n",
        report.median.as_nanos() as f64
    );
    let _ = std::fs::write(dir.join("estimates.json"), body);
}

/// Times a closure; handed to each benchmark routine.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    report: Option<Report>,
}

impl Bencher {
    /// Measures `routine` (or runs it once in `--test` mode).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Calibrate: find how many iterations fit a ~5 ms sample.
        let mut iters: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 24 {
                break elapsed / iters as u32;
            }
            iters *= 4;
        };
        let iters_per_sample = (Duration::from_millis(5).as_nanos() as u64)
            .checked_div(per_iter.as_nanos().max(1) as u64)
            .unwrap_or(1)
            .clamp(1, 1 << 24);
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples.push(start.elapsed() / iters_per_sample as u32);
        }
        samples.sort();
        self.report = Some(Report {
            min: samples[0],
            median: samples[samples.len() / 2],
            max: samples[samples.len() - 1],
            iters_per_sample,
        });
    }
}

fn format_time(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch `CRITERION_HOME` (process-global env)
    /// and keeps their estimate files out of the real `target/criterion`.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn with_criterion_home<R>(tag: &str, f: impl FnOnce() -> R) -> (std::path::PathBuf, R) {
        let _guard = ENV_LOCK.lock().unwrap();
        let home =
            std::env::temp_dir().join(format!("criterion-stub-{tag}-{}", std::process::id()));
        std::env::set_var("CRITERION_HOME", &home);
        let out = f();
        std::env::remove_var("CRITERION_HOME");
        (home, out)
    }

    #[test]
    fn test_mode_runs_once() {
        let mut criterion = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut runs = 0usize;
        let mut group = criterion.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(1), &(), |b, _| {
            b.iter(|| runs += 1)
        });
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn measurement_produces_ordered_samples() {
        let (home, ()) = with_criterion_home("measure", || {
            let mut criterion = Criterion::default().sample_size(3);
            let mut group = criterion.benchmark_group("g");
            group.bench_with_input(BenchmarkId::from_parameter("x"), &7u64, |b, &n| {
                b.iter(|| black_box(n) * 2)
            });
            group.finish();
        });
        std::fs::remove_dir_all(&home).ok();
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut criterion = Criterion {
            filter: Some("other".into()),
            ..Criterion::default()
        };
        let mut runs = 0usize;
        let mut group = criterion.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter("this"), &(), |b, _| {
            b.iter(|| runs += 1)
        });
        group.finish();
        assert_eq!(runs, 0);
    }

    #[test]
    fn measured_runs_persist_estimates() {
        let (home, ()) = with_criterion_home("persist", || {
            let mut criterion = Criterion::default().sample_size(2);
            let mut group = criterion.benchmark_group("persist");
            group.bench_with_input(BenchmarkId::new("case", 7), &3u64, |b, &n| {
                b.iter(|| black_box(n) + 1)
            });
            group.finish();
        });
        let path = home.join("persist/case/7/new/estimates.json");
        let body = std::fs::read_to_string(&path).expect("estimates written");
        assert!(body.contains("\"median\""));
        assert!(body.contains("point_estimate"));
        std::fs::remove_dir_all(&home).ok();
    }

    #[test]
    fn format_time_units() {
        assert_eq!(format_time(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_time(Duration::from_micros(1500)), "1.500 ms");
    }
}
