//! Determinism and reproducibility guarantees.
//!
//! A simulation is a pure function of (platform, workflow, placement); the
//! emulator is additionally a pure function of (seed, repetition). These
//! properties make every figure in `results/` exactly reproducible.

use wfbb::prelude::*;

fn simulate_twice(
    platform: wfbb::platform::PlatformSpec,
    wf: wfbb::workflow::Workflow,
    policy: PlacementPolicy,
) -> (SimulationReport, SimulationReport) {
    let a = SimulationBuilder::new(platform.clone(), wf.clone())
        .placement(policy.clone())
        .run()
        .unwrap();
    let b = SimulationBuilder::new(platform, wf)
        .placement(policy)
        .run()
        .unwrap();
    (a, b)
}

#[test]
fn simulations_are_bit_identical_across_runs() {
    let (a, b) = simulate_twice(
        wfbb::platform::presets::cori(2, BbMode::Striped),
        SwarpConfig::new(6).with_cores_per_task(4).build(),
        PlacementPolicy::FractionToBb { fraction: 0.5 },
    );
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.stage_in_time, b.stage_in_time);
    assert_eq!(a.tasks.len(), b.tasks.len());
    for (x, y) in a.tasks.iter().zip(&b.tasks) {
        assert_eq!(x.start, y.start, "{}", x.name);
        assert_eq!(x.end, y.end, "{}", x.name);
        assert_eq!(x.node, y.node, "{}", x.name);
    }
}

#[test]
fn genomes_simulation_is_deterministic_at_scale() {
    let wf = GenomesConfig::new(4).build();
    let (a, b) = simulate_twice(
        wfbb::platform::presets::summit(4),
        wf,
        PlacementPolicy::FractionToBb { fraction: 0.7 },
    );
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.bb_bytes, b.bb_bytes);
}

#[test]
fn emulator_is_deterministic_per_seed_and_rep() {
    let emulator = Emulator::default();
    let platform = wfbb::platform::presets::cori(1, BbMode::Private);
    let wf = SwarpConfig::new(2).build();
    let policy = PlacementPolicy::AllBb;
    let a = emulator.run(&platform, &wf, &policy, 7).unwrap();
    let b = emulator.run(&platform, &wf, &policy, 7).unwrap();
    assert_eq!(a.makespan, b.makespan);
    let c = emulator.run(&platform, &wf, &policy, 8).unwrap();
    assert_ne!(a.makespan, c.makespan);
}

#[test]
fn different_seeds_produce_different_measurement_noise() {
    let platform = wfbb::platform::presets::cori(1, BbMode::Private);
    let wf = SwarpConfig::new(1).build();
    let policy = PlacementPolicy::AllBb;
    let config_a = EmulatorConfig {
        seed: 1,
        ..EmulatorConfig::default()
    };
    let config_b = EmulatorConfig {
        seed: 2,
        ..EmulatorConfig::default()
    };
    let a = Emulator::new(config_a)
        .run(&platform, &wf, &policy, 0)
        .unwrap();
    let b = Emulator::new(config_b)
        .run(&platform, &wf, &policy, 0)
        .unwrap();
    assert_ne!(a.makespan, b.makespan);
}

#[test]
fn task_order_in_reports_is_stable_task_id_order() {
    let wf = SwarpConfig::new(4).build();
    let report = SimulationBuilder::new(wfbb::platform::presets::summit(1), wf.clone())
        .placement(PlacementPolicy::AllBb)
        .run()
        .unwrap();
    for (record, task) in report.tasks.iter().zip(wf.tasks()) {
        assert_eq!(record.task, task.id);
        assert_eq!(record.name, task.name);
    }
}
