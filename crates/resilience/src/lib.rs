//! # wfbb-resilience — failure economics as a first-class simulated object
//!
//! This crate owns everything the simulator knows about *going wrong and
//! paying for it*:
//!
//! * **Fault schedules** ([`FaultSpec`] / [`FaultEvent`]) — the textual
//!   grammar and resolved event list describing BB node losses, tier
//!   degradations, task kills, and seeded failure clauses. The executor
//!   (`wfbb-wms`) and the campaign scheduler (`wfbb-sched`) both consume
//!   these; semantics are documented in `docs/failure-model.md`.
//! * **Retry policies** ([`RetryPolicy`]) — how many attempts a killed
//!   task may use and how long it backs off between them.
//! * **Checkpoint policies** ([`CheckpointPolicy`]) — periodic
//!   checkpoint writes as *scheduled I/O*: the executor splits a task's
//!   compute phase into segments of `interval` uncontended compute
//!   seconds and writes a checkpoint image to the target tier after each
//!   one, paying real contention through the fluid engine. A killed task
//!   restarts from its last completed checkpoint instead of its read
//!   phase. [`young_interval`] gives the classic Young/Daly first-order
//!   optimum to compare the simulated sweep against.
//!
//! Everything here is deterministic and inert-by-default: an empty fault
//! spec and an absent checkpoint policy leave a simulation
//! bitwise-identical to one that never loaded this crate.

#![deny(missing_docs)]

pub mod checkpoint;
pub mod fault;

pub use checkpoint::{young_interval, CheckpointPolicy, CheckpointSpecError, CheckpointTier};
pub use fault::{FaultEvent, FaultSpec, FaultSpecError, RetryPolicy};
