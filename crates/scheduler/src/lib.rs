//! # wfbb-sched — multi-tenant batch scheduling of workflow campaigns
//!
//! Turns the single-run simulator into a *campaign* simulator: a
//! deterministic stream of workflow jobs (arrival time, workflow,
//! node count, burst-buffer request, walltime estimate) is admitted
//! onto a shared machine by a pluggable batch scheduler and executed
//! concurrently inside one fluid engine.
//!
//! The pieces:
//!
//! * [`JobSpec`] ([`job`]) — one entry of the workload;
//! * [`workload`] — workload-file parsing and seeded synthetic
//!   campaign generation;
//! * [`BatchPolicy`] / [`policy::plan_admissions`] ([`policy`]) — FCFS,
//!   EASY backfilling, the BB-aware backfilling variant that plans
//!   burst-buffer capacity as a second schedulable resource, and the
//!   plan-based policy that simulates candidate admission orders
//!   forward before committing (both after Kopanski & Rzadca,
//!   arXiv:2109.00082);
//! * [`run_campaign`] / [`CampaignSim`] ([`campaign`]) — the driver:
//!   carves platform slices per admitted job, reserves BB capacity from
//!   a [`wfbb_storage::BbPool`], and routes engine completions to each
//!   job's [`wfbb_wms::Executor`] until the campaign drains; the
//!   stepwise [`CampaignSim`] additionally supports deterministic
//!   mid-campaign forking (`docs/snapshot.md`);
//! * [`CampaignReport`] ([`report`]) — per-job wait/run/stretch/
//!   bounded-slowdown with the three-way wait decomposition, cluster
//!   utilization series, and deterministic JSON / CSV / Perfetto
//!   exports;
//! * [`DecisionLog`] / [`SchedProfile`] ([`decisionlog`]) — the
//!   structured record of every admission verdict, BB-pool ledger
//!   operation, and plan-ordering search, plus the host-side wall-clock
//!   profile of the scheduler loop (`docs/observability.md`);
//! * [`explain_text`] / [`explain_json`] ([`explain`]) — the
//!   `--explain-sched` renderers: top blocked jobs, dominant blocking
//!   resource, plan win/loss table.
//!
//! Compute nodes and BB *capacity* are partitioned by the scheduler;
//! the PFS, interconnect, and BB *bandwidth* stay shared, so
//! cross-job contention (the interesting part) emerges naturally from
//! the fluid engine rather than from an analytic slowdown model.

#![deny(missing_docs)]

pub mod campaign;
pub mod decisionlog;
pub mod explain;
pub mod job;
pub mod policy;
pub mod report;
pub mod workload;

pub use campaign::{
    run_campaign, run_campaign_logged, CampaignConfig, CampaignError, CampaignRun, CampaignSim,
    DEFAULT_PLAN_HORIZON,
};
pub use decisionlog::{DecisionLog, DecisionRecord, PlanCandidate, SchedProfile};
pub use explain::{explain_json, explain_text};
pub use job::JobSpec;
pub use policy::{
    Admissions, AdmitKind, BatchPolicy, BlockReason, JobDecision, QueuedReq, RunningRes, Verdict,
};
pub use report::{CampaignReport, JobOutcome, JobStatus, UtilSample, BOUNDED_SLOWDOWN_TAU};
pub use workload::{
    build_workflow, parse_workload, synthetic_jobs, SyntheticConfig, WorkloadError,
};
