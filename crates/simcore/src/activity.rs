//! Activity descriptions.
//!
//! Two kinds of activity exist:
//!
//! * **Delays** — fixed-duration timers that consume no resources. The
//!   workflow layer uses them for pure compute phases on dedicated cores
//!   (where the duration is precomputed from the Amdahl model) and for
//!   bookkeeping timers.
//! * **Flows** — fluid activities that stream `amount` units of work across
//!   a `route` of resources after an initial fixed `latency`. Flows are used
//!   both for data transfers (bytes over NIC → link → disk) and for
//!   time-shared compute (core-seconds on a host CPU pool with a rate cap
//!   equal to the core count of the task).

use crate::ids::ResourceId;

/// Specification of a fluid flow activity.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Total amount of work to stream (bytes, or core-seconds for compute).
    pub amount: f64,
    /// Resources traversed by the flow. The flow's rate is constrained by
    /// every resource on the route simultaneously (store-and-forward is not
    /// modeled, matching SimGrid's fluid network model).
    pub route: Vec<ResourceId>,
    /// Fixed startup latency in seconds (network round trips, metadata
    /// operations, file opens). The flow consumes no bandwidth during this
    /// phase.
    pub latency: f64,
    /// Optional upper bound on the flow's rate, regardless of available
    /// capacity. Models e.g. a task that may use at most `p` cores of a
    /// host, or a NIC-limited client of a fat link.
    pub rate_cap: Option<f64>,
}

impl FlowSpec {
    /// Creates a flow with zero latency and no rate cap.
    pub fn new(amount: f64, route: Vec<ResourceId>) -> Self {
        FlowSpec {
            amount,
            route,
            latency: 0.0,
            rate_cap: None,
        }
    }

    /// Sets the startup latency.
    pub fn with_latency(mut self, latency: f64) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the rate cap.
    pub fn with_rate_cap(mut self, cap: f64) -> Self {
        self.rate_cap = Some(cap);
        self
    }

    /// Validates the specification, panicking on nonsensical values.
    pub(crate) fn validate(&self) {
        assert!(
            self.amount.is_finite() && self.amount >= 0.0,
            "flow amount must be finite and non-negative, got {}",
            self.amount
        );
        assert!(
            self.latency.is_finite() && self.latency >= 0.0,
            "flow latency must be finite and non-negative, got {}",
            self.latency
        );
        if let Some(cap) = self.rate_cap {
            assert!(
                cap.is_finite() && cap > 0.0,
                "flow rate cap must be positive and finite, got {cap}"
            );
        }
        assert!(
            !self.route.is_empty() || self.amount == 0.0,
            "a flow with work must traverse at least one resource"
        );
    }
}

/// Internal state of an activity inside the engine.
///
/// Flow state (remaining work, route, rate) lives in the engine's flow
/// arena, iterated densely by the integration and solve steps; the activity
/// record only carries the arena index.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ActivityKind {
    /// A fixed-duration timer; `end` is its absolute completion time.
    Delay { end: crate::SimTime },
    /// A fluid flow; `slot` indexes the engine's flow arena.
    Flow { slot: u32 },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let spec = FlowSpec::new(10.0, vec![ResourceId::from_index(0)])
            .with_latency(0.5)
            .with_rate_cap(2.0);
        assert_eq!(spec.amount, 10.0);
        assert_eq!(spec.latency, 0.5);
        assert_eq!(spec.rate_cap, Some(2.0));
        spec.validate();
    }

    #[test]
    fn zero_amount_flow_needs_no_route() {
        FlowSpec::new(0.0, vec![]).validate();
    }

    #[test]
    #[should_panic(expected = "at least one resource")]
    fn nonzero_flow_requires_route() {
        FlowSpec::new(1.0, vec![]).validate();
    }

    #[test]
    #[should_panic(expected = "rate cap must be positive")]
    fn rejects_zero_rate_cap() {
        FlowSpec::new(1.0, vec![ResourceId::from_index(0)])
            .with_rate_cap(0.0)
            .validate();
    }

    #[test]
    #[should_panic(expected = "latency must be finite")]
    fn rejects_negative_latency() {
        FlowSpec::new(1.0, vec![ResourceId::from_index(0)])
            .with_latency(-1.0)
            .validate();
    }
}
