//! Regenerates the paper's fig14 data; see `wfbb_experiments::figures`.
fn main() {
    wfbb_experiments::run_and_save("fig14");
}
