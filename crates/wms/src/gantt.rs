//! Gantt-chart views of a simulation report.
//!
//! Turns per-task records into per-node timelines for inspection and
//! plotting: a JSON export (one object per task with node, phase
//! boundaries, and pipeline tag) and a quick ASCII rendering for
//! terminals. Phase boundaries are exact simulation timestamps, so
//! downstream tools can reconstruct read/compute/write occupancy.

use crate::report::{SimulationReport, TaskRecord};

/// One Gantt lane entry.
#[derive(Debug, Clone)]
pub struct GanttEntry<'a> {
    /// The underlying task record.
    pub record: &'a TaskRecord,
}

impl SimulationReport {
    /// Task records grouped by compute node, each group sorted by start
    /// time (ties by task id).
    pub fn gantt_by_node(&self) -> Vec<Vec<GanttEntry<'_>>> {
        let nodes = self.tasks.iter().map(|t| t.node).max().map_or(0, |n| n + 1);
        let mut lanes: Vec<Vec<GanttEntry<'_>>> = (0..nodes).map(|_| Vec::new()).collect();
        for t in &self.tasks {
            lanes[t.node].push(GanttEntry { record: t });
        }
        for lane in &mut lanes {
            lane.sort_by(|a, b| {
                a.record
                    .start
                    .cmp(&b.record.start)
                    .then(a.record.task.cmp(&b.record.task))
            });
        }
        lanes
    }

    /// Exports the schedule as a JSON array (one object per task), stable
    /// across runs for a given input.
    pub fn gantt_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, t) in self.tasks.iter().enumerate() {
            let sep = if i + 1 == self.tasks.len() { "" } else { "," };
            out.push_str(&format!(
                "  {{\"task\":\"{}\",\"category\":\"{}\",\"node\":{},\"cores\":{},\
                 \"pipeline\":{},\"start\":{:.6},\"read_end\":{:.6},\"compute_end\":{:.6},\
                 \"end\":{:.6}}}{}\n",
                t.name,
                t.category,
                t.node,
                t.cores,
                t.pipeline.map_or("null".to_string(), |p| p.to_string()),
                t.start.seconds(),
                t.read_end.seconds(),
                t.compute_end.seconds(),
                t.end.seconds(),
                sep
            ));
        }
        out.push(']');
        out
    }

    /// Exports the schedule in the Chrome tracing format (load in
    /// `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)): one
    /// process per compute node, one complete event per task phase
    /// (read / compute / write), timestamps in microseconds.
    ///
    /// This is the minimal task-phase-only export; prefer
    /// [`SimulationReport::perfetto_trace_json`](crate::traceexport)
    /// (the CLI's `--trace-out`), which adds stage lanes, attribution
    /// args, and telemetry counter tracks.
    pub fn chrome_trace_json(&self) -> String {
        let mut events = Vec::new();
        for t in &self.tasks {
            let phases = [
                ("read", t.start.seconds(), t.read_end.seconds()),
                ("compute", t.read_end.seconds(), t.compute_end.seconds()),
                ("write", t.compute_end.seconds(), t.end.seconds()),
            ];
            for (phase, begin, end) in phases {
                if end > begin {
                    events.push(format!(
                        concat!(
                            "{{\"name\":\"{}:{}\",\"cat\":\"{}\",\"ph\":\"X\",",
                            "\"ts\":{:.3},\"dur\":{:.3},\"pid\":{},\"tid\":{}}}"
                        ),
                        t.name,
                        phase,
                        t.category,
                        begin * 1e6,
                        (end - begin) * 1e6,
                        t.node,
                        t.task.index(),
                    ));
                }
            }
        }
        format!("[{}]", events.join(",\n "))
    }

    /// Renders a compact ASCII Gantt chart, `width` characters wide.
    /// Phases are drawn as `r` (read), `c` (compute), `w` (write).
    pub fn gantt_ascii(&self, width: usize) -> String {
        assert!(width >= 10, "need at least 10 columns");
        let horizon = self.makespan.seconds().max(1e-12);
        let col = |t: f64| ((t / horizon) * (width as f64 - 1.0)).round() as usize;
        let mut out = String::new();
        let name_w = self
            .tasks
            .iter()
            .map(|t| t.name.len())
            .max()
            .unwrap_or(4)
            .min(24);
        for lane in self.gantt_by_node() {
            for entry in lane {
                let t = entry.record;
                let mut row = vec![' '; width];
                let (s, r, c, e) = (
                    col(t.start.seconds()),
                    col(t.read_end.seconds()),
                    col(t.compute_end.seconds()),
                    col(t.end.seconds()),
                );
                for cell in row.iter_mut().take(r).skip(s) {
                    *cell = 'r';
                }
                for cell in row.iter_mut().take(c).skip(r) {
                    *cell = 'c';
                }
                for cell in row.iter_mut().take(e.max(c + 1).min(width)).skip(c) {
                    *cell = 'w';
                }
                let name: String = t.name.chars().take(name_w).collect();
                out.push_str(&format!(
                    "n{:02} {:name_w$} |{}|\n",
                    t.node,
                    name,
                    row.iter().collect::<String>()
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use wfbb_platform::presets;
    use wfbb_storage::PlacementPolicy;
    use wfbb_workflow::WorkflowBuilder;

    use crate::builder::SimulationBuilder;

    fn report() -> crate::report::SimulationReport {
        let mut b = WorkflowBuilder::new("g");
        let f0 = b.add_file("f0", 1e6);
        let f1 = b.add_file("f1", 1e6);
        b.task("a")
            .category("x")
            .flops(1e11)
            .cores(2)
            .pipeline(0)
            .output(f0)
            .add();
        b.task("b")
            .category("x")
            .flops(1e11)
            .cores(2)
            .pipeline(1)
            .input(f0)
            .output(f1)
            .add();
        let wf = b.build().unwrap();
        SimulationBuilder::new(presets::summit(2), wf)
            .placement(PlacementPolicy::AllBb)
            .run()
            .unwrap()
    }

    #[test]
    fn lanes_group_by_node_and_sort_by_start() {
        let r = report();
        let lanes = r.gantt_by_node();
        assert_eq!(lanes.len(), 2, "two pipeline-pinned nodes");
        let total: usize = lanes.iter().map(|l| l.len()).sum();
        assert_eq!(total, 2);
        for lane in lanes {
            for w in lane.windows(2) {
                assert!(w[0].record.start <= w[1].record.start);
            }
        }
    }

    #[test]
    fn json_is_parseable_and_complete() {
        let r = report();
        let json = r.gantt_json();
        let parsed: serde_json_value_check::Value = serde_json_value_check::parse(&json);
        assert_eq!(parsed.array_len(), 2);
        assert!(json.contains("\"task\":\"a\""));
        assert!(json.contains("\"pipeline\":1"));
    }

    /// Minimal JSON sanity checker (avoids a serde_json dev-dependency
    /// here): validates bracket balance and counts top-level objects.
    mod serde_json_value_check {
        pub struct Value {
            objects: usize,
        }
        impl Value {
            pub fn array_len(&self) -> usize {
                self.objects
            }
        }
        pub fn parse(s: &str) -> Value {
            let mut depth = 0i32;
            let mut objects = 0usize;
            for ch in s.chars() {
                match ch {
                    '[' | '{' => {
                        depth += 1;
                        if ch == '{' && depth == 2 {
                            objects += 1;
                        }
                    }
                    ']' | '}' => depth -= 1,
                    _ => {}
                }
            }
            assert_eq!(depth, 0, "unbalanced JSON");
            Value { objects }
        }
    }

    #[test]
    fn chrome_trace_has_one_event_per_nonempty_phase() {
        let r = report();
        let trace = r.chrome_trace_json();
        assert!(trace.starts_with('[') && trace.ends_with(']'));
        // Two tasks with read(+meta)/compute/write each; at minimum the
        // compute phases appear.
        assert!(trace.matches("\"ph\":\"X\"").count() >= 2);
        assert!(trace.contains("\"name\":\"a:compute\""));
        assert!(trace.contains("\"pid\":0"));
        assert!(trace.contains("\"pid\":1"));
        // Balanced braces.
        assert_eq!(trace.matches('{').count(), trace.matches('}').count());
    }

    #[test]
    fn ascii_gantt_renders_phases() {
        let r = report();
        let chart = r.gantt_ascii(60);
        assert!(chart.contains('c'), "compute phases visible");
        assert_eq!(chart.lines().count(), 2);
        assert!(chart.lines().all(|l| l.contains('|')));
    }

    #[test]
    #[should_panic(expected = "at least 10 columns")]
    fn ascii_rejects_tiny_width() {
        let _ = report().gantt_ascii(3);
    }

    #[test]
    fn empty_report_exports_are_well_formed() {
        let wf = WorkflowBuilder::new("void").build().unwrap();
        let r = SimulationBuilder::new(presets::summit(1), wf)
            .run()
            .unwrap();
        assert_eq!(r.gantt_json(), "[\n]");
        assert_eq!(r.chrome_trace_json(), "[]");
        assert!(r.gantt_by_node().is_empty());
        assert_eq!(r.gantt_ascii(20), "");
        assert_eq!(r.mean_utilization(), 0.0);
    }

    /// Hand-built two-task report with round-number timestamps, so the
    /// snapshot tests below are readable by eye and fully deterministic.
    fn synthetic_report() -> crate::report::SimulationReport {
        use wfbb_simcore::SimTime;
        use wfbb_workflow::TaskId;
        let task = |idx: usize,
                    name: &str,
                    cat: &str,
                    pipeline: Option<usize>,
                    node: usize,
                    cores: usize,
                    times: [f64; 4]| {
            crate::report::TaskRecord {
                task: TaskId::from_index(idx),
                name: name.into(),
                category: cat.into(),
                pipeline,
                node,
                cores,
                start: SimTime::from_seconds(times[0]),
                read_end: SimTime::from_seconds(times[1]),
                compute_end: SimTime::from_seconds(times[2]),
                end: SimTime::from_seconds(times[3]),
                pure_compute: times[2] - times[1],
                serialized_io: (times[1] - times[0]) + (times[3] - times[2]),
                contention_wait: 0.0,
                attempts: 1,
                fault_wait: 0.0,
                checkpoint_io: 0.0,
                contention_by_resource: Vec::new(),
            }
        };
        crate::report::SimulationReport {
            workflow: "synthetic".into(),
            makespan: SimTime::from_seconds(10.0),
            stage_in_time: 0.0,
            stage_spans: Vec::new(),
            output_spans: Vec::new(),
            contention: Vec::new(),
            stage_contention: Vec::new(),
            critical_path: Vec::new(),
            faults: Vec::new(),
            fault_lost_bytes: 0.0,
            fault_lost_compute: 0.0,
            fault_wait_total: 0.0,
            retries: 0,
            checkpoints: 0,
            restores: 0,
            checkpoint_bytes: 0.0,
            checkpoint_io_total: 0.0,
            tasks: vec![
                task(0, "a", "x", Some(0), 0, 2, [0.0, 2.0, 8.0, 10.0]),
                task(1, "b", "y", None, 1, 1, [1.0, 1.5, 4.0, 5.0]),
            ],
            bb_bytes: 0.0,
            pfs_bytes: 0.0,
            bb_achieved_bw: 0.0,
            pfs_achieved_bw: 0.0,
            bb_nominal_bw: 0.0,
            pfs_nominal_bw: 0.0,
            bb_peak_bytes: 0.0,
            spilled_files: 0,
            nodes: 2,
            cores_per_node: 4,
            telemetry: None,
        }
    }

    #[test]
    fn json_snapshot_is_stable() {
        let r = synthetic_report();
        let expected = "[\n  \
            {\"task\":\"a\",\"category\":\"x\",\"node\":0,\"cores\":2,\
            \"pipeline\":0,\"start\":0.000000,\"read_end\":2.000000,\
            \"compute_end\":8.000000,\"end\":10.000000},\n  \
            {\"task\":\"b\",\"category\":\"y\",\"node\":1,\"cores\":1,\
            \"pipeline\":null,\"start\":1.000000,\"read_end\":1.500000,\
            \"compute_end\":4.000000,\"end\":5.000000}\n]";
        assert_eq!(r.gantt_json(), expected);
        // Stable across repeated calls (no hidden iteration-order state).
        assert_eq!(r.gantt_json(), r.gantt_json());
    }

    #[test]
    fn ascii_snapshot_at_width_40() {
        let r = synthetic_report();
        let expected = "\
            n00 a |rrrrrrrrcccccccccccccccccccccccwwwwwwww |\n\
            n01 b |    rrccccccccccwwww                    |\n";
        assert_eq!(r.gantt_ascii(40), expected);
    }

    #[test]
    fn ascii_rows_honor_the_requested_width() {
        let r = synthetic_report();
        for width in [10usize, 37, 64, 120] {
            let chart = r.gantt_ascii(width);
            for line in chart.lines() {
                let open = line.find('|').unwrap();
                let close = line.rfind('|').unwrap();
                assert_eq!(
                    close - open - 1,
                    width,
                    "timeline body must be exactly {width} cells wide"
                );
                assert_eq!(close, line.len() - 1, "the bar closes the row");
            }
        }
    }

    #[test]
    fn ascii_truncates_long_names_to_24_columns() {
        let mut r = synthetic_report();
        r.tasks[0].name = "a".repeat(30);
        let chart = r.gantt_ascii(40);
        let first = chart.lines().next().unwrap();
        assert!(first.contains(&"a".repeat(24)));
        assert!(!first.contains(&"a".repeat(25)));
        // Rows stay aligned: both rows open their bars at the same column.
        let cols: Vec<usize> = chart.lines().map(|l| l.find('|').unwrap()).collect();
        assert_eq!(cols[0], cols[1]);
    }

    #[test]
    fn utilization_reflects_occupancy() {
        let r = report();
        // Two 2-core tasks on two 42-core Summit nodes, running back to
        // back: utilization is low but positive on both nodes.
        let u = r.node_utilization();
        assert_eq!(u.len(), 2);
        for v in u {
            assert!(v > 0.0 && v < 0.2, "utilization {v}");
        }
    }
}
