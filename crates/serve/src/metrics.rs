//! The service's operational snapshot — the serving-layer analogue of
//! `wfbb_simcore::EngineCounters`: one cheap, always-on struct that a
//! `GET /v1/metrics` renders as deterministic-field-order JSON.

use std::fmt::Write as _;

use crate::cache::CacheCounters;
use crate::tenant::TenantUsage;

/// Point-in-time snapshot of the whole service.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeMetrics {
    /// Worker threads configured at startup.
    pub workers: usize,
    /// Workers currently executing a job.
    pub workers_busy: usize,
    /// Replacement workers spawned after a timed-out job failed to
    /// cancel within the grace period (see `docs/service.md`).
    pub workers_replaced: u64,
    /// Jobs waiting for a worker.
    pub queue_depth: usize,
    /// Jobs currently executing.
    pub jobs_running: usize,
    /// Jobs finished successfully since startup.
    pub jobs_done: u64,
    /// Jobs that ended in a simulation error.
    pub jobs_failed: u64,
    /// Jobs reaped by the wall-clock timeout.
    pub jobs_timed_out: u64,
    /// Submissions answered from the result cache.
    pub jobs_from_cache: u64,
    /// Terminal job entries evicted by retention (TTL or `max_jobs`).
    pub jobs_evicted: u64,
    /// Artifact sets currently cached.
    pub cache_entries: usize,
    /// Bytes currently cached.
    pub cache_bytes: usize,
    /// Configured cache capacity, bytes.
    pub cache_capacity_bytes: usize,
    /// Cache lookup/eviction counters.
    pub cache: CacheCounters,
    /// Per-tenant usage, sorted by tenant name.
    pub tenants: Vec<(String, TenantUsage)>,
}

impl ServeMetrics {
    /// Cache hit ratio over all lookups so far (0 when none).
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.cache.hits + self.cache.misses;
        if total == 0 {
            0.0
        } else {
            self.cache.hits as f64 / total as f64
        }
    }

    /// Worker utilization: busy workers over configured workers.
    pub fn worker_utilization(&self) -> f64 {
        if self.workers == 0 {
            0.0
        } else {
            self.workers_busy as f64 / self.workers as f64
        }
    }

    /// Deterministic-field-order JSON rendering.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"api_version\":{},\"workers\":{{\"configured\":{},\"busy\":{},\"replaced\":{},\
             \"utilization\":{}}},\"queue_depth\":{},\
             \"jobs\":{{\"running\":{},\"done\":{},\"failed\":{},\"timeout\":{},\"from_cache\":{},\
             \"evicted\":{}}},\
             \"cache\":{{\"entries\":{},\"bytes\":{},\"capacity_bytes\":{},\"hits\":{},\
             \"misses\":{},\"insertions\":{},\"evictions\":{},\"uncacheable\":{},\
             \"hit_ratio\":{}}},\"tenants\":[",
            crate::API_VERSION,
            self.workers,
            self.workers_busy,
            self.workers_replaced,
            self.worker_utilization(),
            self.queue_depth,
            self.jobs_running,
            self.jobs_done,
            self.jobs_failed,
            self.jobs_timed_out,
            self.jobs_from_cache,
            self.jobs_evicted,
            self.cache_entries,
            self.cache_bytes,
            self.cache_capacity_bytes,
            self.cache.hits,
            self.cache.misses,
            self.cache.insertions,
            self.cache.evictions,
            self.cache.uncacheable,
            self.cache_hit_ratio(),
        );
        for (i, (name, usage)) in self.tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"tenant\":\"{}\",\"in_flight\":{},\"admitted\":{},\"completed\":{},\
                 \"reaped\":{},\"rejected\":{},\"cache_hits\":{}}}",
                name.replace('\\', "\\\\").replace('"', "\\\""),
                usage.in_flight,
                usage.admitted,
                usage.completed,
                usage.reaped,
                usage.rejected,
                usage.cache_hits,
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_json_parses_and_carries_every_section() {
        let mut m = ServeMetrics {
            workers: 2,
            workers_busy: 1,
            queue_depth: 3,
            jobs_done: 5,
            cache_capacity_bytes: 1024,
            ..Default::default()
        };
        m.cache.hits = 3;
        m.cache.misses = 1;
        m.tenants
            .push(("alice".to_string(), TenantUsage::default()));
        let json = m.to_json();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value.get("queue_depth").unwrap().as_u64(), Some(3));
        let cache = value.get("cache").unwrap();
        assert_eq!(cache.get("hits").unwrap().as_u64(), Some(3));
        assert_eq!(cache.get("hit_ratio").unwrap().as_f64(), Some(0.75));
        let workers = value.get("workers").unwrap();
        assert_eq!(workers.get("utilization").unwrap().as_f64(), Some(0.5));
        let tenants = value.get("tenants").unwrap().as_array().unwrap();
        assert_eq!(tenants[0].get("tenant").unwrap().as_str(), Some("alice"));
    }
}
