//! Structural analysis of workflows.
//!
//! Topological ordering, level decomposition, critical path, degree of
//! parallelism, and data-footprint accounting. These drive both the
//! executor (ready-task discovery) and the experiment harness (e.g. the
//! 1000Genomes footprint figures quoted in Section IV-C).

use crate::graph::Workflow;
use crate::ids::{FileId, TaskId};

/// Classification of a file by its position in the DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// No producer: must be staged in before execution.
    Input,
    /// Produced and consumed within the workflow.
    Intermediate,
    /// Produced but never consumed: a workflow result.
    Output,
}

impl Workflow {
    /// Tasks in a valid topological order (dependencies first). Ties are
    /// broken by task id, so the order is deterministic.
    pub fn topological_order(&self) -> Vec<TaskId> {
        let n = self.task_count();
        let mut indeg = vec![0usize; n];
        for t in self.tasks() {
            indeg[t.id.index()] = self.dependencies(t.id).len();
        }
        // Min-heap on task id for determinism.
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<TaskId>> = self
            .tasks()
            .iter()
            .filter(|t| indeg[t.id.index()] == 0)
            .map(|t| std::cmp::Reverse(t.id))
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(u)) = heap.pop() {
            order.push(u);
            for v in self.dependents(u) {
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    heap.push(std::cmp::Reverse(v));
                }
            }
        }
        debug_assert_eq!(order.len(), n, "validated workflows are acyclic");
        order
    }

    /// The level (longest dependency distance from a source) of every task.
    pub fn levels(&self) -> Vec<usize> {
        let mut level = vec![0usize; self.task_count()];
        for &u in &self.topological_order() {
            for v in self.dependents(u) {
                level[v.index()] = level[v.index()].max(level[u.index()] + 1);
            }
        }
        level
    }

    /// Number of levels (depth of the DAG); 0 for an empty workflow.
    pub fn depth(&self) -> usize {
        self.levels().iter().max().map_or(0, |m| m + 1)
    }

    /// Maximum number of tasks on one level — an upper bound on useful
    /// task-level parallelism.
    pub fn width(&self) -> usize {
        let levels = self.levels();
        let depth = self.depth();
        let mut counts = vec![0usize; depth];
        for l in levels {
            counts[l] += 1;
        }
        counts.into_iter().max().unwrap_or(0)
    }

    /// The critical path: the dependency chain maximizing the sum of
    /// `weight(task)`. Returns `(total weight, path)`.
    pub fn critical_path(&self, weight: impl Fn(TaskId) -> f64) -> (f64, Vec<TaskId>) {
        let order = self.topological_order();
        let n = self.task_count();
        let mut best = vec![0.0f64; n];
        let mut pred: Vec<Option<TaskId>> = vec![None; n];
        for &u in &order {
            let w = weight(u);
            assert!(w.is_finite() && w >= 0.0, "weights must be finite and >= 0");
            best[u.index()] += w;
            for v in self.dependents(u) {
                if best[u.index()] >= best[v.index()] {
                    best[v.index()] = best[u.index()];
                    pred[v.index()] = Some(u);
                }
            }
        }
        let Some((end, &total)) = best
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        else {
            return (0.0, Vec::new());
        };
        let mut path = vec![TaskId::from_index(end)];
        while let Some(p) = pred[path.last().unwrap().index()] {
            path.push(p);
        }
        path.reverse();
        (total, path)
    }

    /// Classifies a file as input, intermediate, or output.
    pub fn classify_file(&self, file: FileId) -> FileClass {
        match (self.producer(file), self.consumers(file).is_empty()) {
            (None, _) => FileClass::Input,
            (Some(_), false) => FileClass::Intermediate,
            (Some(_), true) => FileClass::Output,
        }
    }

    /// All workflow input files (no producer), in id order.
    pub fn input_files(&self) -> Vec<FileId> {
        self.files()
            .iter()
            .filter(|f| self.classify_file(f.id) == FileClass::Input)
            .map(|f| f.id)
            .collect()
    }

    /// All intermediate files, in id order.
    pub fn intermediate_files(&self) -> Vec<FileId> {
        self.files()
            .iter()
            .filter(|f| self.classify_file(f.id) == FileClass::Intermediate)
            .map(|f| f.id)
            .collect()
    }

    /// All workflow output files, in id order.
    pub fn output_files(&self) -> Vec<FileId> {
        self.files()
            .iter()
            .filter(|f| self.classify_file(f.id) == FileClass::Output)
            .map(|f| f.id)
            .collect()
    }

    /// Total bytes across all files — the workflow "data footprint"
    /// (1000Genomes: ~67 GB).
    pub fn data_footprint(&self) -> f64 {
        self.files().iter().map(|f| f.size).sum()
    }

    /// Total bytes of input files (1000Genomes: ~52 GB, 77 % of the
    /// footprint).
    pub fn input_data_size(&self) -> f64 {
        self.input_files().iter().map(|&f| self.file(f).size).sum()
    }

    /// Tasks with no dependencies (sources), in id order.
    pub fn source_tasks(&self) -> Vec<TaskId> {
        self.tasks()
            .iter()
            .filter(|t| self.dependencies(t.id).is_empty())
            .map(|t| t.id)
            .collect()
    }

    /// Tasks with no dependents (sinks), in id order.
    pub fn sink_tasks(&self) -> Vec<TaskId> {
        self.tasks()
            .iter()
            .filter(|t| self.dependents(t.id).is_empty())
            .map(|t| t.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::WorkflowBuilder;

    /// stage -> (r0 -> c0), (r1 -> c1): a two-pipeline SWarp-like shape.
    fn two_pipelines() -> Workflow {
        let mut b = WorkflowBuilder::new("mini-swarp");
        let raw0 = b.add_file("raw0", 100.0);
        let raw1 = b.add_file("raw1", 100.0);
        let staged0 = b.add_file("staged0", 100.0);
        let staged1 = b.add_file("staged1", 100.0);
        let mid0 = b.add_file("mid0", 50.0);
        let mid1 = b.add_file("mid1", 50.0);
        let out0 = b.add_file("out0", 25.0);
        let out1 = b.add_file("out1", 25.0);
        b.task("stage")
            .category("stage-in")
            .inputs([raw0, raw1])
            .outputs([staged0, staged1])
            .add();
        b.task("r0")
            .category("resample")
            .flops(10.0)
            .pipeline(0)
            .input(staged0)
            .output(mid0)
            .add();
        b.task("c0")
            .category("combine")
            .flops(20.0)
            .pipeline(0)
            .input(mid0)
            .output(out0)
            .add();
        b.task("r1")
            .category("resample")
            .flops(10.0)
            .pipeline(1)
            .input(staged1)
            .output(mid1)
            .add();
        b.task("c1")
            .category("combine")
            .flops(20.0)
            .pipeline(1)
            .input(mid1)
            .output(out1)
            .add();
        b.build().unwrap()
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let wf = two_pipelines();
        let order = wf.topological_order();
        assert_eq!(order.len(), 5);
        let pos = |name: &str| {
            let id = wf.task_by_name(name).unwrap().id;
            order.iter().position(|&t| t == id).unwrap()
        };
        assert!(pos("stage") < pos("r0"));
        assert!(pos("r0") < pos("c0"));
        assert!(pos("r1") < pos("c1"));
    }

    #[test]
    fn levels_width_depth() {
        let wf = two_pipelines();
        assert_eq!(wf.depth(), 3);
        assert_eq!(wf.width(), 2);
        let levels = wf.levels();
        assert_eq!(levels[wf.task_by_name("stage").unwrap().id.index()], 0);
        assert_eq!(levels[wf.task_by_name("c1").unwrap().id.index()], 2);
    }

    #[test]
    fn critical_path_follows_heavier_chain() {
        let wf = two_pipelines();
        let (total, path) = wf.critical_path(|t| wf.task(t).flops);
        assert_eq!(total, 30.0); // 0 + 10 + 20
        assert_eq!(path.len(), 3);
        assert_eq!(wf.task(path[0]).name, "stage");
    }

    #[test]
    fn file_classification() {
        let wf = two_pipelines();
        let raw = wf.file_by_name("raw0").unwrap().id;
        let staged = wf.file_by_name("staged0").unwrap().id;
        let out = wf.file_by_name("out0").unwrap().id;
        assert_eq!(wf.classify_file(raw), FileClass::Input);
        assert_eq!(wf.classify_file(staged), FileClass::Intermediate);
        assert_eq!(wf.classify_file(out), FileClass::Output);
        assert_eq!(wf.input_files().len(), 2);
        assert_eq!(wf.intermediate_files().len(), 4);
        assert_eq!(wf.output_files().len(), 2);
    }

    #[test]
    fn footprint_sums_file_sizes() {
        let wf = two_pipelines();
        assert_eq!(wf.data_footprint(), 550.0);
        assert_eq!(wf.input_data_size(), 200.0);
    }

    #[test]
    fn sources_and_sinks() {
        let wf = two_pipelines();
        let sources = wf.source_tasks();
        assert_eq!(sources.len(), 1);
        assert_eq!(wf.task(sources[0]).name, "stage");
        let sinks = wf.sink_tasks();
        assert_eq!(sinks.len(), 2);
    }

    #[test]
    fn empty_workflow_analysis_is_sane() {
        let wf = WorkflowBuilder::new("empty").build().unwrap();
        assert_eq!(wf.depth(), 0);
        assert_eq!(wf.width(), 0);
        assert_eq!(wf.critical_path(|_| 1.0), (0.0, vec![]));
        assert_eq!(wf.data_footprint(), 0.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Random layered DAG: `layers` layers of up to `w` tasks, each task
        /// consuming a random subset of the previous layer's outputs.
        fn layered(layers: usize, w: usize) -> impl Strategy<Value = Workflow> {
            proptest::collection::vec(
                proptest::collection::vec(proptest::bits::u8::ANY, 1..=w),
                1..=layers,
            )
            .prop_map(|spec| {
                let mut b = WorkflowBuilder::new("random");
                let mut prev_outputs: Vec<crate::FileId> = Vec::new();
                for (li, layer) in spec.iter().enumerate() {
                    let mut outs = Vec::new();
                    for (ti, mask) in layer.iter().enumerate() {
                        let out = b.add_file(format!("f{li}_{ti}"), 1.0);
                        let mut t = b.task(format!("t{li}_{ti}")).flops(1.0).output(out);
                        for (pi, &pf) in prev_outputs.iter().enumerate() {
                            if mask & (1 << (pi % 8)) != 0 {
                                t = t.input(pf);
                            }
                        }
                        t.add();
                        outs.push(out);
                    }
                    prev_outputs = outs;
                }
                b.build().expect("layered DAGs are acyclic")
            })
        }

        proptest! {
            #[test]
            fn topo_order_is_a_valid_linearization(wf in layered(4, 5)) {
                let order = wf.topological_order();
                prop_assert_eq!(order.len(), wf.task_count());
                let pos: std::collections::HashMap<_, _> =
                    order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
                for t in wf.tasks() {
                    for d in wf.dependencies(t.id) {
                        prop_assert!(pos[&d] < pos[&t.id]);
                    }
                }
            }

            #[test]
            fn critical_path_weight_bounds_total(wf in layered(4, 5)) {
                let (cp, path) = wf.critical_path(|t| wf.task(t).flops);
                let total: f64 = wf.tasks().iter().map(|t| t.flops).sum();
                prop_assert!(cp <= total + 1e-9);
                // The returned path is a dependency chain.
                for w in path.windows(2) {
                    prop_assert!(wf.dependencies(w[1]).contains(&w[0]));
                }
            }

            #[test]
            fn every_file_is_classified(wf in layered(3, 4)) {
                let ins = wf.input_files().len();
                let mids = wf.intermediate_files().len();
                let outs = wf.output_files().len();
                prop_assert_eq!(ins + mids + outs, wf.file_count());
            }
        }
    }
}
