//! Quickstart: build a platform and a workflow, simulate, inspect results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use wfbb::prelude::*;

fn main() {
    // A Cori-like platform: one 32-core Haswell node, remote shared burst
    // buffer (Cray DataWarp) in private mode, calibrated per Table I.
    let platform = presets::cori(1, BbMode::Private);

    // A single SWarp pipeline: 16 raw images (32 MiB) + 16 weight maps
    // (16 MiB) resampled and combined into one co-added image.
    let workflow = SwarpConfig::new(1).with_cores_per_task(32).build();
    println!(
        "workflow: {} tasks, {} files, {:.0} MB of input",
        workflow.task_count(),
        workflow.file_count(),
        workflow.input_data_size() / 1e6
    );

    // Stage every input file into the burst buffer, keep intermediates
    // there too, and simulate.
    let report = SimulationBuilder::new(platform, workflow)
        .placement(PlacementPolicy::FractionToBb { fraction: 1.0 })
        .run()
        .expect("simulation runs");

    println!("makespan:  {:.2} s", report.makespan.seconds());
    println!("stage-in:  {:.2} s", report.stage_in_time);
    for (category, stats) in report.by_category() {
        println!(
            "{:>9}: {} task(s), mean {:.2} s ({:.2} s I/O + {:.2} s compute)",
            category, stats.count, stats.mean_duration, stats.mean_io_time, stats.mean_compute_time
        );
    }
    println!(
        "achieved BB bandwidth while busy: {:.0} MB/s",
        report.bb_achieved_bw / 1e6
    );
}
