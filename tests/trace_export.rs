//! Trace-export contract tests: golden-file pinning of the JSONL schema,
//! Perfetto well-formedness, and the telemetry-is-an-observer property
//! (enabling it never changes simulation results).
//!
//! The golden file under `tests/golden/` pins the exact bytes of the JSONL
//! export for a tiny deterministic workflow. If an intentional schema
//! change breaks it, regenerate with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test trace_export
//! ```
//!
//! and bump `TRACE_SCHEMA_VERSION` plus `docs/trace-format.md` when fields
//! were renamed, removed, or changed meaning.

use proptest::prelude::*;
use serde_json::Value;

use wfbb::prelude::*;
use wfbb::workloads::patterns;

/// Three tasks (two resamples feeding one combine), fixed sizes: small
/// enough to read the golden file by eye, rich enough to exercise stage
/// spans, all three task phases, and both storage tiers.
fn tiny_workflow() -> Workflow {
    let mut b = WorkflowBuilder::new("tiny3");
    let in0 = b.add_file("in0", 32e6);
    let in1 = b.add_file("in1", 16e6);
    let mid0 = b.add_file("mid0", 24e6);
    let mid1 = b.add_file("mid1", 8e6);
    let out = b.add_file("out", 40e6);
    b.task("resample0")
        .category("resample")
        .flops(3.68e11)
        .cores(4)
        .pipeline(0)
        .input(in0)
        .output(mid0)
        .add();
    b.task("resample1")
        .category("resample")
        .flops(1.84e11)
        .cores(4)
        .pipeline(0)
        .input(in1)
        .output(mid1)
        .add();
    b.task("combine")
        .category("combine")
        .flops(3.68e11)
        .cores(4)
        .pipeline(0)
        .inputs([mid0, mid1])
        .output(out)
        .add();
    b.build().unwrap()
}

fn tiny_report(telemetry: bool) -> SimulationReport {
    let mut builder = SimulationBuilder::new(presets::cori(1, BbMode::Private), tiny_workflow())
        .placement(PlacementPolicy::AllBb);
    if telemetry {
        builder = builder.telemetry(TelemetryConfig::enabled());
    }
    builder.run().unwrap()
}

// ---- golden file --------------------------------------------------------

#[test]
fn jsonl_matches_golden_file() {
    let golden = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/tiny_trace.jsonl");
    let trace = tiny_report(true).jsonl_trace();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(golden).parent().unwrap()).unwrap();
        std::fs::write(golden, &trace).unwrap();
    }
    let expected = std::fs::read_to_string(golden)
        .expect("golden file missing; run UPDATE_GOLDEN=1 cargo test --test trace_export");
    assert_eq!(
        trace, expected,
        "JSONL trace drifted from the golden file; if the schema change is \
         intentional, regenerate with UPDATE_GOLDEN=1 and update \
         docs/trace-format.md (bumping TRACE_SCHEMA_VERSION on breaking \
         changes)"
    );
}

#[test]
fn jsonl_lines_all_parse_and_cover_schema() {
    let report = tiny_report(true);
    let trace = report.jsonl_trace();
    let mut types = std::collections::BTreeSet::new();
    for (i, line) in trace.lines().enumerate() {
        let v: Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("line {} is not valid JSON ({e}): {line}", i + 1));
        let ty = v
            .get("type")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("line {} lacks a type tag", i + 1));
        types.insert(ty.to_string());
    }
    // The full schema-2 vocabulary appears in a telemetry-on run.
    for expected in [
        "header",
        "stage",
        "stage_out",
        "task",
        "resource",
        "resource_sample",
        "counter",
        "summary",
    ] {
        assert!(types.contains(expected), "no {expected:?} line in trace");
    }
    // Contention lines mirror the report's blamed-resource table exactly.
    assert_eq!(
        types.contains("contention"),
        !report.contention.is_empty(),
        "contention lines must appear iff resources accrued blame"
    );
    // Header declares the documented schema version.
    let header: Value = serde_json::from_str(trace.lines().next().unwrap()).unwrap();
    assert_eq!(
        header.get("version").and_then(Value::as_u64),
        Some(TRACE_SCHEMA_VERSION as u64)
    );
    assert_eq!(
        header.get("schema").and_then(Value::as_str),
        Some("wfbb-trace")
    );
}

// ---- Perfetto well-formedness -------------------------------------------

#[test]
fn perfetto_trace_is_well_formed() {
    let report = tiny_report(true);
    let trace = report.perfetto_trace_json();
    let v: Value = serde_json::from_str(&trace).expect("Perfetto trace parses as JSON");
    let events = v
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let nodes = report.nodes as u64;
    let mut last_ts = f64::NEG_INFINITY;
    let mut seen_non_meta = false;
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).expect("ph field");
        let pid = e.get("pid").and_then(Value::as_u64).expect("pid field");
        // pid scheme: 0..nodes-1 compute nodes, nodes = stage-in,
        // nodes + 1 = engine counters, nodes + 2 = stage-out.
        assert!(pid <= nodes + 2, "pid {pid} outside the documented scheme");
        match ph {
            "M" => {
                assert!(!seen_non_meta, "metadata events must precede timed events");
                assert!(e.get("args").and_then(|a| a.get("name")).is_some());
            }
            "X" | "C" | "i" => {
                seen_non_meta = true;
                let ts = e.get("ts").and_then(Value::as_f64).expect("ts field");
                assert!(ts >= 0.0);
                assert!(ts >= last_ts, "events not sorted: {ts} after {last_ts}");
                last_ts = ts;
                if ph == "X" {
                    let dur = e.get("dur").and_then(Value::as_f64).expect("dur field");
                    assert!(dur >= 0.0);
                    // Task phases live on compute-node pids with the task
                    // index as tid; stage spans on the stage-in pid;
                    // output-write spans on the stage-out pid.
                    let cat = e.get("cat").and_then(Value::as_str).unwrap_or("");
                    if cat == "stage" {
                        assert_eq!(pid, nodes);
                    } else if cat == "stage_out" {
                        assert_eq!(pid, nodes + 2);
                    } else {
                        assert!(pid < nodes);
                        let tid = e.get("tid").and_then(Value::as_u64).expect("tid");
                        assert!((tid as usize) < report.tasks.len());
                        // Schema v2: every task phase event carries the
                        // task's makespan-decomposition attribution args.
                        let args = e.get("args").expect("task phase args");
                        for key in ["pure_compute", "serialized_io", "contention_wait"] {
                            assert!(
                                args.get(key).and_then(Value::as_f64).is_some(),
                                "task phase event lacks {key:?} arg"
                            );
                        }
                    }
                }
                if ph == "C" {
                    assert_eq!(pid, nodes + 1, "counter tracks live on the engine pid");
                }
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert!(seen_non_meta, "trace contains timed events");
    // Every X/C event's pid has a process_name metadata record.
    let named_pids: std::collections::BTreeSet<u64> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
        .map(|e| e.get("pid").and_then(Value::as_u64).unwrap())
        .collect();
    for e in events {
        let pid = e.get("pid").and_then(Value::as_u64).unwrap();
        assert!(named_pids.contains(&pid), "pid {pid} has no process_name");
    }
}

#[test]
fn perfetto_without_telemetry_has_no_counter_tracks() {
    let trace = tiny_report(false).perfetto_trace_json();
    let v: Value = serde_json::from_str(&trace).unwrap();
    let events = v.get("traceEvents").and_then(Value::as_array).unwrap();
    assert!(events
        .iter()
        .all(|e| e.get("ph").and_then(Value::as_str) != Some("C")));
    // Task phases are still exported.
    assert!(events
        .iter()
        .any(|e| e.get("ph").and_then(Value::as_str) == Some("X")));
}

// ---- telemetry is an observer -------------------------------------------

fn platform_for(idx: usize, nodes: usize) -> wfbb::platform::PlatformSpec {
    match idx % 3 {
        0 => presets::cori(nodes, BbMode::Private),
        1 => presets::cori(nodes, BbMode::Striped),
        _ => presets::summit(nodes),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Telemetry must be a pure observer: the same run with sampling on
    /// and off produces bit-identical makespans, task timings, and byte
    /// accounting.
    #[test]
    fn telemetry_never_changes_results(
        layers in 1usize..5,
        width in 1usize..5,
        seed in 0u64..500,
        platform_idx in 0usize..3,
        nodes in 1usize..3,
        fraction in 0.0f64..=1.0,
    ) {
        let wf = patterns::random_layered(layers, width, seed);
        let platform = platform_for(platform_idx, nodes);
        let run = |telemetry: bool| {
            let mut b = SimulationBuilder::new(platform.clone(), wf.clone())
                .placement(PlacementPolicy::FractionToBb { fraction });
            if telemetry {
                b = b.telemetry(TelemetryConfig::enabled());
            }
            b.run().unwrap()
        };
        let plain = run(false);
        let observed = run(true);
        prop_assert_eq!(plain.makespan, observed.makespan);
        prop_assert_eq!(plain.stage_in_time, observed.stage_in_time);
        prop_assert_eq!(plain.bb_bytes, observed.bb_bytes);
        prop_assert_eq!(plain.pfs_bytes, observed.pfs_bytes);
        prop_assert_eq!(plain.spilled_files, observed.spilled_files);
        prop_assert_eq!(plain.tasks.len(), observed.tasks.len());
        for (a, b) in plain.tasks.iter().zip(&observed.tasks) {
            prop_assert_eq!(a.start, b.start);
            prop_assert_eq!(a.read_end, b.read_end);
            prop_assert_eq!(a.compute_end, b.compute_end);
            prop_assert_eq!(a.end, b.end);
            prop_assert_eq!(a.node, b.node);
        }
        prop_assert!(plain.telemetry.is_none());
        prop_assert!(observed.telemetry.is_some());
    }
}

// ---- stage spans --------------------------------------------------------

#[test]
fn stage_spans_tile_the_stage_in_phase() {
    let report = tiny_report(false);
    // AllBb on Cori: both inputs staged sequentially.
    assert_eq!(report.stage_spans.len(), 2);
    let mut prev_end = 0.0;
    for s in &report.stage_spans {
        assert!(s.start.seconds() >= prev_end - 1e-9, "spans are sequential");
        assert!(s.end > s.start, "stage copies take time");
        assert!(s.location.starts_with("bb:"), "staged to the BB tier");
        prev_end = s.end.seconds();
    }
    let last = report.stage_spans.last().unwrap();
    assert!(
        (last.end.seconds() - report.stage_in_time).abs() < 1e-9,
        "the last span closes the stage-in phase"
    );
}

#[test]
fn output_spans_cover_every_task_write() {
    let report = tiny_report(false);
    // Each of the three tasks writes exactly one output file.
    assert_eq!(report.output_spans.len(), 3);
    for s in &report.output_spans {
        assert!(s.end > s.start, "output writes take time");
        assert!(
            s.location.starts_with("bb:"),
            "AllBb places outputs on the BB"
        );
        assert!(
            s.end.seconds() <= report.makespan.seconds() + 1e-9,
            "writes finish inside the run"
        );
    }
    // Spans are recorded in completion order.
    let mut prev = 0.0;
    for s in &report.output_spans {
        assert!(s.end.seconds() >= prev, "spans sorted by completion");
        prev = s.end.seconds();
    }
}
