//! Extension experiment: the paper's large-file conjecture.
//!
//! Section IV-B: *"The fact that the SWarp workflow reads/writes fairly
//! small files (several MB) explain also the poor performance reached by
//! the striped mode. We expect that with larger files (in the GB range),
//! the striped mode would yield better performance."* The paper never
//! tests this; the simulator can.
//!
//! We sweep the per-image file size from the paper's 32 MiB up to 2 GiB
//! (scaling compute with the data volume so the compute/I/O balance stays
//! fixed) and compare the private and striped modes. Expectation: the
//! striped mode's per-stripe metadata cost is amortized while its
//! aggregated multi-BB-node bandwidth starts to pay, so the
//! striped/private ratio falls below 1 for GB-scale files.

use wfbb_platform::{presets, BbMode};
use wfbb_storage::PlacementPolicy;
use wfbb_workloads::SwarpConfig;

use crate::harness::{par_map, simulate};
use crate::table::{f2, Table};

/// Image sizes swept, bytes (weight maps stay at half the image size, as
/// in the paper's instance).
const IMAGE_SIZES: [f64; 5] = [
    32.0 * 1024.0 * 1024.0,
    128.0 * 1024.0 * 1024.0,
    512.0 * 1024.0 * 1024.0,
    1024.0 * 1024.0 * 1024.0,
    2048.0 * 1024.0 * 1024.0,
];

/// A SWarp pipeline with scaled file sizes; compute scales with data so
/// λ_io stays roughly constant.
fn scaled_swarp(image_size: f64) -> wfbb_workflow::Workflow {
    let mut config = SwarpConfig::new(1);
    let scale = image_size / config.image_size;
    config.image_size = image_size;
    config.weight_size = image_size / 2.0;
    config.coadd_size = 2.0 * image_size;
    config.resample_flops *= scale;
    config.combine_flops *= scale;
    config.build()
}

pub(crate) fn ratio_at(image_size: f64) -> (f64, f64, f64) {
    let wf = scaled_swarp(image_size);
    let policy = PlacementPolicy::AllBb;
    let private = simulate(&presets::cori(1, BbMode::Private), &wf, &policy);
    let striped = simulate(&presets::cori(1, BbMode::Striped), &wf, &policy);
    (
        private.makespan,
        striped.makespan,
        striped.makespan / private.makespan,
    )
}

/// Builds the large-file conjecture table.
pub fn run() -> Vec<Table> {
    let results = par_map(IMAGE_SIZES.to_vec(), |&s| ratio_at(s));

    let mut t = Table::new(
        "Large files (extension): the paper's striped-mode conjecture",
        &[
            "image size (MiB)",
            "private makespan (s)",
            "striped makespan (s)",
            "striped/private",
        ],
    );
    for (size, (private, striped, ratio)) in IMAGE_SIZES.iter().zip(&results) {
        t.push_row(vec![
            format!("{:.0}", size / (1024.0 * 1024.0)),
            f2(*private),
            f2(*striped),
            f2(*ratio),
        ]);
    }
    let small_ratio = results.first().unwrap().2;
    let large_ratio = results.last().unwrap().2;
    t.note(format!(
        "striped/private ratio falls from {:.2} at 32 MiB to {:.2} at 2 GiB{} — the paper's conjecture that GB-range files would favor the striped mode",
        small_ratio,
        large_ratio,
        if large_ratio < 1.0 { " (striped wins)" } else { "" }
    ));
    t.note("mechanism: per-stripe metadata cost amortizes while the stripes aggregate 4 BB nodes of bandwidth");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striped_loses_on_small_files_and_gains_on_large() {
        let (_, _, small) = ratio_at(IMAGE_SIZES[0]);
        let (_, _, large) = ratio_at(*IMAGE_SIZES.last().unwrap());
        assert!(small > 1.0, "small files: striped slower ({small})");
        assert!(
            large < small,
            "large files must close the gap: {large} !< {small}"
        );
    }

    #[test]
    fn ratio_is_monotone_decreasing_in_file_size() {
        let ratios: Vec<f64> = [IMAGE_SIZES[0], IMAGE_SIZES[2], IMAGE_SIZES[4]]
            .iter()
            .map(|&s| ratio_at(s).2)
            .collect();
        for w in ratios.windows(2) {
            assert!(w[1] <= w[0] * 1.02, "ratio should not grow: {ratios:?}");
        }
    }
}
