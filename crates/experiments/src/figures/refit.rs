//! Extension experiment: closing the calibration loop automatically.
//!
//! The paper's methodology (its Figure 3) is characterize → calibrate →
//! validate, with the calibration step done by hand from Table I and
//! published measurements. This experiment automates it: starting from a
//! deliberately mis-calibrated Cori description, fit the BB bandwidth and
//! per-core I/O throughput against *measured* makespans (emulator output,
//! our stand-in for real runs) on the Figure 10 staging sweep, then
//! validate the fitted platform on a sweep it never saw (the Figure 11
//! pipeline sweep).

use wfbb_calibration::fit::{fit_platform, FitParam};
use wfbb_calibration::mean_absolute_percentage_error;
use wfbb_platform::{presets, BbMode, PlatformSpec};
use wfbb_storage::PlacementPolicy;
use wfbb_workloads::SwarpConfig;

use crate::harness::{emulate_mean, fraction_policy, simulate};
use crate::table::{f2, Table};

const TRAIN_FRACTIONS: [f64; 3] = [0.0, 0.5, 1.0];
const VALIDATE_PIPELINES: [usize; 3] = [1, 4, 16];

fn train_simulated(platform: &PlatformSpec) -> Vec<f64> {
    let wf = SwarpConfig::new(1).build();
    TRAIN_FRACTIONS
        .iter()
        .map(|&f| simulate(platform, &wf, &fraction_policy(f)).makespan)
        .collect()
}

fn train_measured(platform: &PlatformSpec) -> Vec<f64> {
    let wf = SwarpConfig::new(1).build();
    TRAIN_FRACTIONS
        .iter()
        .map(|&f| emulate_mean(platform, &wf, &fraction_policy(f), 5).makespan)
        .collect()
}

fn validate_error(platform: &PlatformSpec, truth: &PlatformSpec) -> f64 {
    let policy = PlacementPolicy::AllBb;
    let mut measured = Vec::new();
    let mut predicted = Vec::new();
    for &p in &VALIDATE_PIPELINES {
        let wf = SwarpConfig::new(p).with_cores_per_task(1).build();
        measured.push(emulate_mean(truth, &wf, &policy, 5).makespan);
        predicted.push(simulate(platform, &wf, &policy).makespan);
    }
    mean_absolute_percentage_error(&measured, &predicted)
}

/// Builds the auto-calibration table.
pub fn run() -> Vec<Table> {
    let truth = presets::cori(1, BbMode::Private);
    // The "measured" training data always comes from the true platform.
    let measured = train_measured(&truth);

    // Deliberate mis-calibration: wrong BB bandwidth and per-core I/O.
    let mut start = truth.clone();
    start.bb_network_bw /= 4.0;
    start.io_core_bw /= 4.0;

    let result = fit_platform(
        &start,
        &[FitParam::BbNetworkBw, FitParam::IoCoreBw],
        &measured,
        train_simulated,
    );

    let mut t = Table::new(
        "Auto-calibration (extension): fitting platform parameters to measured sweeps",
        &[
            "platform variant",
            "train error (%)",
            "validation error (%)",
        ],
    );
    t.push_row(vec![
        "hand calibration (Table I)".into(),
        f2(mean_absolute_percentage_error(
            &measured,
            &train_simulated(&truth),
        )),
        f2(validate_error(&truth, &truth)),
    ]);
    t.push_row(vec![
        "mis-calibrated (bandwidths / 4)".into(),
        f2(result.initial_error),
        f2(validate_error(&start, &truth)),
    ]);
    t.push_row(vec![
        "auto-fitted from measurements".into(),
        f2(result.final_error),
        f2(validate_error(&result.platform, &truth)),
    ]);
    t.note(format!(
        "fitted bb_network_bw = {:.0} MB/s (truth {:.0}), io_core_bw = {:.0} MB/s (truth {:.0}), {} simulator evaluations",
        result.platform.bb_network_bw / 1e6,
        truth.bb_network_bw / 1e6,
        result.platform.io_core_bw / 1e6,
        truth.io_core_bw / 1e6,
        result.evaluations
    ));
    t.note("validation uses the pipeline sweep (Fig 11), which the fit never saw — the paper's characterize/calibrate/validate loop, automated");
    t.note(
        "the fit beats hand calibration on its training sweep but generalizes worse on the \
         held-out sweep: empirical support for the paper's argument that extra parameters only \
         help when accurate values for them exist (Section IV-B)",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_most_of_the_training_error() {
        let truth = presets::cori(1, BbMode::Private);
        let measured = train_measured(&truth);
        let mut start = truth.clone();
        start.bb_network_bw /= 4.0;
        start.io_core_bw /= 4.0;
        let result = fit_platform(
            &start,
            &[FitParam::BbNetworkBw, FitParam::IoCoreBw],
            &measured,
            train_simulated,
        );
        assert!(
            result.final_error < result.initial_error / 2.0,
            "fit must at least halve the error: {} -> {}",
            result.initial_error,
            result.final_error
        );
    }

    #[test]
    fn fitted_platform_generalizes_to_the_unseen_sweep() {
        let truth = presets::cori(1, BbMode::Private);
        let measured = train_measured(&truth);
        let mut start = truth.clone();
        start.bb_network_bw /= 4.0;
        let result = fit_platform(&start, &[FitParam::BbNetworkBw], &measured, train_simulated);
        let miscalibrated = validate_error(&start, &truth);
        let fitted = validate_error(&result.platform, &truth);
        assert!(
            fitted < miscalibrated,
            "fitting must help on the held-out sweep: {fitted} !< {miscalibrated}"
        );
    }
}
