//! Regenerates the solver-scaling sweep (1000-job campaign wall-clock,
//! monolithic vs partitioned solver at 1/2/4/8 worker threads); see
//! `wfbb_experiments::figures::parallel_scaling`.
fn main() {
    wfbb_experiments::run_and_save("parallel_scaling");
}
