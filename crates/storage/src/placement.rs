//! File placement policies.
//!
//! A placement policy assigns a [`Tier`] to every workflow file. The
//! paper's experiments sweep two knobs: the **fraction of input files
//! staged into the burst buffer** (Figures 4, 10, 13, 14) and the **tier of
//! intermediate files** (Figure 5); Figures 7, 8, and 11 use the all-BB
//! setting. [`PlacementPolicy`] expresses all of these; custom policies can
//! be expressed with [`PlacementPolicy::PerCategory`] or by-size rules.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use wfbb_workflow::{FileId, Workflow};

use crate::tier::Tier;

/// Declarative file-placement policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Everything on the PFS — the paper's baseline.
    AllPfs,
    /// Everything in the burst buffer.
    AllBb,
    /// The paper's main experimental knob: a fraction of the *input* files
    /// is staged into the BB (selected by even stride over the input files
    /// in id order, so staged bytes grow near-linearly with the fraction);
    /// intermediate and output files go to `intermediates`.
    FractionToBb {
        /// Fraction of input files staged into the BB, in `[0, 1]`.
        fraction: f64,
    },
    /// Like `FractionToBb` but with explicit control of where
    /// intermediate/output files are written (Figure 5 sweeps this).
    InputFraction {
        /// Fraction of input files staged into the BB, in `[0, 1]`.
        fraction: f64,
        /// Tier for intermediate files.
        intermediates: Tier,
        /// Tier for workflow output files.
        outputs: Tier,
    },
    /// Files of at least `min_bytes` go to the BB, smaller files to the
    /// PFS — a simple size-aware heuristic enabled by the simulator.
    BySizeThreshold {
        /// Minimum size, in bytes, for BB placement.
        min_bytes: f64,
    },
    /// Tier chosen by the producing/consuming task category (files not
    /// matched default to the PFS). Keys match `Task::category` of the
    /// producer, or `"input"` for workflow inputs.
    PerCategory(HashMap<String, Tier>),
}

/// The resolved tier of every file of a workflow.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementPlan {
    tiers: Vec<Tier>,
}

impl PlacementPlan {
    /// Builds a plan from an explicit per-file tier vector (index-aligned
    /// with the workflow's files). Used by capacity-aware heuristics.
    pub fn from_tiers(tiers: Vec<Tier>) -> Self {
        PlacementPlan { tiers }
    }

    /// Tier assigned to `file`.
    pub fn tier(&self, file: FileId) -> Tier {
        self.tiers[file.index()]
    }

    /// Number of files in the plan.
    pub fn len(&self) -> usize {
        self.tiers.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.tiers.is_empty()
    }

    /// Files assigned to the burst buffer, in id order.
    pub fn bb_files(&self) -> Vec<FileId> {
        self.tiers
            .iter()
            .enumerate()
            .filter(|(_, &t)| t == Tier::BurstBuffer)
            .map(|(i, _)| FileId::from_index(i))
            .collect()
    }
}

/// Selects `⌈fraction·n⌉` indices out of `0..n` by even stride, so that the
/// selected set grows monotonically with `fraction` in count and (for
/// homogeneous interleaved inputs) in bytes.
fn stride_select(n: usize, fraction: f64) -> Vec<bool> {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be in [0, 1], got {fraction}"
    );
    let mut selected = vec![false; n];
    let mut acc = 0.0f64;
    for s in selected.iter_mut() {
        acc += fraction;
        if acc >= 1.0 - 1e-12 {
            *s = true;
            acc -= 1.0;
        }
    }
    selected
}

impl PlacementPolicy {
    /// Resolves the policy against a workflow.
    pub fn plan(&self, workflow: &Workflow) -> PlacementPlan {
        let n = workflow.file_count();
        let tiers = match self {
            PlacementPolicy::AllPfs => vec![Tier::Pfs; n],
            PlacementPolicy::AllBb => vec![Tier::BurstBuffer; n],
            PlacementPolicy::FractionToBb { fraction } => {
                return PlacementPolicy::InputFraction {
                    fraction: *fraction,
                    intermediates: Tier::BurstBuffer,
                    outputs: Tier::BurstBuffer,
                }
                .plan(workflow)
            }
            PlacementPolicy::InputFraction {
                fraction,
                intermediates,
                outputs,
            } => {
                let mut tiers = vec![Tier::Pfs; n];
                let inputs = workflow.input_files();
                let picked = stride_select(inputs.len(), *fraction);
                for (i, &f) in inputs.iter().enumerate() {
                    tiers[f.index()] = if picked[i] {
                        Tier::BurstBuffer
                    } else {
                        Tier::Pfs
                    };
                }
                for f in workflow.intermediate_files() {
                    tiers[f.index()] = *intermediates;
                }
                for f in workflow.output_files() {
                    tiers[f.index()] = *outputs;
                }
                tiers
            }
            PlacementPolicy::BySizeThreshold { min_bytes } => workflow
                .files()
                .iter()
                .map(|f| {
                    if f.size >= *min_bytes {
                        Tier::BurstBuffer
                    } else {
                        Tier::Pfs
                    }
                })
                .collect(),
            PlacementPolicy::PerCategory(map) => workflow
                .files()
                .iter()
                .map(|f| {
                    let key = match workflow.producer(f.id) {
                        Some(t) => workflow.task(t).category.clone(),
                        None => "input".to_string(),
                    };
                    map.get(&key).copied().unwrap_or(Tier::Pfs)
                })
                .collect(),
        };
        PlacementPlan { tiers }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfbb_workflow::WorkflowBuilder;

    fn workflow_with_inputs(n_inputs: usize) -> Workflow {
        let mut b = WorkflowBuilder::new("wf");
        let mut ins = Vec::new();
        for i in 0..n_inputs {
            ins.push(b.add_file(format!("in{i}"), 10.0));
        }
        let mid = b.add_file("mid", 5.0);
        let out = b.add_file("out", 1.0);
        b.task("t1")
            .category("resample")
            .inputs(ins)
            .output(mid)
            .add();
        b.task("t2")
            .category("combine")
            .input(mid)
            .output(out)
            .add();
        b.build().unwrap()
    }

    #[test]
    fn all_pfs_and_all_bb() {
        let wf = workflow_with_inputs(4);
        let plan = PlacementPolicy::AllPfs.plan(&wf);
        assert!(plan.bb_files().is_empty());
        let plan = PlacementPolicy::AllBb.plan(&wf);
        assert_eq!(plan.bb_files().len(), wf.file_count());
    }

    #[test]
    fn fraction_selects_expected_counts() {
        let wf = workflow_with_inputs(16);
        for (fraction, expected) in [(0.0, 0), (0.25, 4), (0.5, 8), (0.75, 12), (1.0, 16)] {
            let plan = PlacementPolicy::InputFraction {
                fraction,
                intermediates: Tier::Pfs,
                outputs: Tier::Pfs,
            }
            .plan(&wf);
            let staged = wf
                .input_files()
                .iter()
                .filter(|&&f| plan.tier(f) == Tier::BurstBuffer)
                .count();
            assert_eq!(staged, expected, "fraction {fraction}");
        }
    }

    #[test]
    fn fraction_to_bb_sends_intermediates_to_bb() {
        let wf = workflow_with_inputs(4);
        let plan = PlacementPolicy::FractionToBb { fraction: 0.5 }.plan(&wf);
        let mid = wf.file_by_name("mid").unwrap().id;
        let out = wf.file_by_name("out").unwrap().id;
        assert_eq!(plan.tier(mid), Tier::BurstBuffer);
        assert_eq!(plan.tier(out), Tier::BurstBuffer);
    }

    #[test]
    fn stride_selection_is_monotone_in_fraction() {
        for n in [1usize, 7, 16, 100] {
            let mut prev = 0;
            for k in 0..=10 {
                let f = k as f64 / 10.0;
                let count = stride_select(n, f).iter().filter(|&&s| s).count();
                assert!(count >= prev, "n={n} f={f}");
                prev = count;
            }
            assert_eq!(prev, n, "fraction 1.0 selects everything");
        }
    }

    #[test]
    fn stride_selection_spreads_choices() {
        // With 50 % of 4 interleaved entries, selection alternates.
        let sel = stride_select(4, 0.5);
        assert_eq!(sel, vec![false, true, false, true]);
    }

    #[test]
    fn size_threshold_splits_by_size() {
        let wf = workflow_with_inputs(2);
        let plan = PlacementPolicy::BySizeThreshold { min_bytes: 6.0 }.plan(&wf);
        // 10-byte inputs -> BB; 5-byte mid and 1-byte out -> PFS.
        let mid = wf.file_by_name("mid").unwrap().id;
        assert_eq!(plan.tier(mid), Tier::Pfs);
        assert_eq!(
            plan.tier(wf.file_by_name("in0").unwrap().id),
            Tier::BurstBuffer
        );
    }

    #[test]
    fn per_category_places_by_producer() {
        let wf = workflow_with_inputs(2);
        let mut map = HashMap::new();
        map.insert("resample".to_string(), Tier::BurstBuffer);
        map.insert("input".to_string(), Tier::BurstBuffer);
        let plan = PlacementPolicy::PerCategory(map).plan(&wf);
        let mid = wf.file_by_name("mid").unwrap().id; // produced by resample
        let out = wf.file_by_name("out").unwrap().id; // produced by combine (unmapped)
        assert_eq!(plan.tier(mid), Tier::BurstBuffer);
        assert_eq!(plan.tier(out), Tier::Pfs);
        assert_eq!(
            plan.tier(wf.file_by_name("in0").unwrap().id),
            Tier::BurstBuffer
        );
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0, 1]")]
    fn fraction_out_of_range_panics() {
        let wf = workflow_with_inputs(2);
        let _ = PlacementPolicy::FractionToBb { fraction: 1.5 }.plan(&wf);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Staged byte volume grows monotonically with the fraction.
            #[test]
            fn staged_bytes_monotone(
                n in 1usize..64,
                steps in 2usize..8,
            ) {
                let wf = workflow_with_inputs(n);
                let mut prev = -1.0f64;
                for k in 0..=steps {
                    let fraction = k as f64 / steps as f64;
                    let plan = PlacementPolicy::FractionToBb { fraction }.plan(&wf);
                    let staged: f64 = wf.input_files().iter()
                        .filter(|&&f| plan.tier(f) == Tier::BurstBuffer)
                        .map(|&f| wf.file(f).size)
                        .sum();
                    prop_assert!(staged >= prev);
                    prev = staged;
                }
            }

            /// Every file receives exactly one tier.
            #[test]
            fn plans_cover_all_files(n in 1usize..32, fraction in 0.0f64..=1.0) {
                let wf = workflow_with_inputs(n);
                let plan = PlacementPolicy::FractionToBb { fraction }.plan(&wf);
                prop_assert_eq!(plan.len(), wf.file_count());
            }
        }
    }
}
