//! Define your own platform and placement policy.
//!
//! Builds a hypothetical system (a "next-gen" shared BB with many nodes
//! and a fast fabric), a custom fork–join workflow, and compares placement
//! policies — the design-space exploration the paper's simulator exists
//! to enable.
//!
//! ```sh
//! cargo run --release --example custom_platform
//! ```

use std::collections::HashMap;

use wfbb::platform::{BbArchitecture, LatencyProfile, PlatformSpec};
use wfbb::prelude::*;
use wfbb::storage::Tier;
use wfbb::workloads::patterns;

fn hypothetical_platform() -> PlatformSpec {
    PlatformSpec {
        name: "nextgen-shared".to_string(),
        compute_nodes: 8,
        cores_per_node: 64,
        gflops_per_core: 60.0,
        nic_bw: 25e9,
        interconnect_bw: 200e9,
        // A striped shared BB with 16 nodes: high aggregate bandwidth...
        bb: BbArchitecture::Shared {
            bb_nodes: 16,
            mode: BbMode::Striped,
        },
        bb_network_bw: 2e9,
        bb_disk_bw: 3e9,
        pfs_network_bw: 4e9,
        pfs_disk_bw: 500e6,
        stage_source_bw: 25e9,
        io_core_bw: 250e6,
        bb_capacity: 10e12,
        stripe_unit: 64.0 * 1024.0 * 1024.0,
        // ...and a metadata service fast enough not to choke on small
        // files (the deployment lever the paper's Cori analysis exposes).
        pfs_meta_ops: 500.0,
        bb_meta_ops: 2000.0,
        latency: LatencyProfile {
            bb_striped_per_stripe: 0.002,
            ..LatencyProfile::default()
        },
    }
}

fn main() {
    let platform = hypothetical_platform();
    platform.validate().expect("platform is well-formed");
    println!(
        "platform {}: {} nodes x {} cores, aggregate BB bandwidth {:.0} GB/s\n",
        platform.name,
        platform.compute_nodes,
        platform.cores_per_node,
        platform.aggregate_bb_bw() / 1e9
    );

    // A wide fork-join crunching 12 GB through 96 workers.
    let workflow = patterns::fork_join(96, 12e9, 5e11);

    let policies: Vec<(&str, PlacementPolicy)> = vec![
        ("all PFS", PlacementPolicy::AllPfs),
        ("all BB", PlacementPolicy::AllBb),
        (
            "inputs PFS, intermediates BB",
            PlacementPolicy::InputFraction {
                fraction: 0.0,
                intermediates: Tier::BurstBuffer,
                outputs: Tier::Pfs,
            },
        ),
        (
            "large files only (>= 100 MB) in BB",
            PlacementPolicy::BySizeThreshold { min_bytes: 100e6 },
        ),
        (
            "by category: split/work products in BB",
            PlacementPolicy::PerCategory(HashMap::from([
                ("split".to_string(), Tier::BurstBuffer),
                ("work".to_string(), Tier::BurstBuffer),
            ])),
        ),
    ];

    println!(
        "{:<38} {:>13} {:>10} {:>10}",
        "policy", "makespan (s)", "BB GB", "PFS GB"
    );
    for (name, policy) in policies {
        let report = SimulationBuilder::new(platform.clone(), workflow.clone())
            .placement(policy)
            .run()
            .expect("simulation runs");
        println!(
            "{:<38} {:>13.2} {:>10.2} {:>10.2}",
            name,
            report.makespan.seconds(),
            report.bb_bytes / 1e9,
            report.pfs_bytes / 1e9
        );
    }
    println!("\nPlacement policies are pluggable: this is the heuristic design space");
    println!("the paper's conclusion proposes exploring with exactly this kind of simulator.");
}
