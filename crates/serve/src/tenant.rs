//! Per-tenant quotas and the admission ledger.
//!
//! Tenants are identified by the `X-Tenant` request header (default
//! `"anonymous"`). Each tenant gets the same [`TenantQuota`] (one
//! knob set per server — per-tenant overrides would be a straight
//! extension); the [`QuotaLedger`] tracks live usage and enforces the
//! in-flight cap. The invariants the proptests in `tests/serve.rs`
//! pin: usage counters never go negative, and every admitted job is
//! freed exactly once — whether it completes, fails, or is reaped by
//! the wall-clock timeout.

use std::collections::BTreeMap;

/// Resource limits applied to every tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantQuota {
    /// Maximum queued-or-running jobs per tenant; submissions beyond it
    /// get a typed `429`.
    pub max_in_flight: usize,
    /// Byte budget of the tenant's slice of the result cache; older
    /// entries are evicted LRU-first past it.
    pub max_cached_bytes: usize,
    /// Maximum request-body bytes; larger submissions get a typed `413`.
    pub max_body_bytes: usize,
    /// Wall-clock seconds a job may spend queued + running before the
    /// reaper cancels it and frees its quota (typed `504` on fetch).
    pub timeout_s: f64,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            max_in_flight: 4,
            max_cached_bytes: 16 * 1024 * 1024,
            max_body_bytes: 64 * 1024,
            timeout_s: 300.0,
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuotaError {
    /// The tenant already has `max_in_flight` jobs queued or running.
    InFlight {
        /// Jobs currently held.
        held: usize,
        /// The cap.
        limit: usize,
    },
}

impl std::fmt::Display for QuotaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuotaError::InFlight { held, limit } => {
                write!(f, "{held} jobs in flight, quota allows {limit}")
            }
        }
    }
}

impl std::error::Error for QuotaError {}

/// Live usage of one tenant, exposed via `GET /v1/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantUsage {
    /// Jobs currently queued or running.
    pub in_flight: usize,
    /// Total jobs ever admitted.
    pub admitted: u64,
    /// Jobs that finished (successfully or failed).
    pub completed: u64,
    /// Jobs reaped by the wall-clock timeout.
    pub reaped: u64,
    /// Submissions refused by the in-flight cap.
    pub rejected: u64,
    /// Submissions answered straight from the result cache.
    pub cache_hits: u64,
}

/// The tenant admission ledger: admit on submit, release exactly once
/// on completion *or* reap.
#[derive(Debug, Default)]
pub struct QuotaLedger {
    usage: BTreeMap<String, TenantUsage>,
}

impl QuotaLedger {
    /// An empty ledger.
    pub fn new() -> QuotaLedger {
        QuotaLedger::default()
    }

    /// Tries to admit one job for `tenant` under `quota`. On success
    /// the tenant holds one more in-flight slot, to be released by
    /// exactly one of [`QuotaLedger::release_completed`] /
    /// [`QuotaLedger::release_reaped`].
    pub fn admit(&mut self, tenant: &str, quota: &TenantQuota) -> Result<(), QuotaError> {
        let usage = self.usage.entry(tenant.to_string()).or_default();
        if usage.in_flight >= quota.max_in_flight {
            usage.rejected += 1;
            return Err(QuotaError::InFlight {
                held: usage.in_flight,
                limit: quota.max_in_flight,
            });
        }
        usage.in_flight += 1;
        usage.admitted += 1;
        Ok(())
    }

    /// Frees the slot of a job that ran to a terminal state.
    pub fn release_completed(&mut self, tenant: &str) {
        let usage = self.usage.entry(tenant.to_string()).or_default();
        debug_assert!(usage.in_flight > 0, "release without admit");
        usage.in_flight = usage.in_flight.saturating_sub(1);
        usage.completed += 1;
    }

    /// Frees the slot of a job killed by the wall-clock timeout.
    pub fn release_reaped(&mut self, tenant: &str) {
        let usage = self.usage.entry(tenant.to_string()).or_default();
        debug_assert!(usage.in_flight > 0, "reap without admit");
        usage.in_flight = usage.in_flight.saturating_sub(1);
        usage.reaped += 1;
    }

    /// Records a submission served from the result cache (no slot
    /// held — cached answers are free).
    pub fn record_cache_hit(&mut self, tenant: &str) {
        self.usage.entry(tenant.to_string()).or_default().cache_hits += 1;
    }

    /// Current usage of `tenant` (zeros if never seen).
    pub fn usage(&self, tenant: &str) -> TenantUsage {
        self.usage.get(tenant).copied().unwrap_or_default()
    }

    /// Every tenant's usage, sorted by name (deterministic metrics).
    pub fn all(&self) -> impl Iterator<Item = (&str, &TenantUsage)> {
        self.usage.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Total in-flight jobs across tenants.
    pub fn total_in_flight(&self) -> usize {
        self.usage.values().map(|u| u.in_flight).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admit_until_cap_then_429() {
        let quota = TenantQuota {
            max_in_flight: 2,
            ..Default::default()
        };
        let mut ledger = QuotaLedger::new();
        ledger.admit("a", &quota).unwrap();
        ledger.admit("a", &quota).unwrap();
        let err = ledger.admit("a", &quota).unwrap_err();
        assert_eq!(err, QuotaError::InFlight { held: 2, limit: 2 });
        // Another tenant is unaffected.
        ledger.admit("b", &quota).unwrap();
        // Releasing opens a slot again.
        ledger.release_completed("a");
        ledger.admit("a", &quota).unwrap();
        assert_eq!(ledger.usage("a").rejected, 1);
        assert_eq!(ledger.total_in_flight(), 3);
    }

    #[test]
    fn reap_frees_the_slot_and_counts_separately() {
        let quota = TenantQuota {
            max_in_flight: 1,
            ..Default::default()
        };
        let mut ledger = QuotaLedger::new();
        ledger.admit("a", &quota).unwrap();
        ledger.release_reaped("a");
        let usage = ledger.usage("a");
        assert_eq!(usage.in_flight, 0);
        assert_eq!(usage.reaped, 1);
        assert_eq!(usage.completed, 0);
        ledger.admit("a", &quota).unwrap();
    }
}
