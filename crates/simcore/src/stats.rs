//! Per-resource utilization accounting.
//!
//! The engine integrates, over simulated time, the amount of work served by
//! each resource and the time during which it had at least one active flow.
//! The experiment harness uses these counters to report achieved I/O
//! bandwidth (the paper's Figure 9) without instrumenting the workload.
//!
//! These two scalars are the always-on summary; when finer resolution is
//! needed, the [`crate::telemetry`] layer extends them into time series
//! (allocated rate and queue depth per solver epoch) and time-weighted
//! utilization histograms, at the cost of an explicit opt-in
//! ([`crate::TelemetryConfig`]).

/// Cumulative utilization counters for one resource.
#[derive(Debug, Clone, Default)]
pub struct ResourceStats {
    /// Total work units (bytes, core-seconds) served since simulation start.
    pub total_served: f64,
    /// Simulated seconds during which at least one flow crossed the
    /// resource.
    pub busy_time: f64,
}

impl ResourceStats {
    /// Average rate achieved while busy (work units per busy second).
    ///
    /// Returns 0 when the resource was never busy.
    pub fn mean_busy_rate(&self) -> f64 {
        if self.busy_time > 0.0 {
            self.total_served / self.busy_time
        } else {
            0.0
        }
    }

    /// Utilization over a horizon: fraction of `[0, horizon]` during which
    /// the resource was busy. Returns 0 for a zero horizon.
    pub fn utilization(&self, horizon: f64) -> f64 {
        if horizon > 0.0 {
            (self.busy_time / horizon).clamp(0.0, 1.0)
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_busy_rate_divides_served_by_busy() {
        let s = ResourceStats {
            total_served: 100.0,
            busy_time: 4.0,
        };
        assert_eq!(s.mean_busy_rate(), 25.0);
    }

    #[test]
    fn idle_resource_reports_zero_rate() {
        assert_eq!(ResourceStats::default().mean_busy_rate(), 0.0);
    }

    #[test]
    fn utilization_is_clamped() {
        let s = ResourceStats {
            total_served: 1.0,
            busy_time: 10.0,
        };
        assert_eq!(s.utilization(20.0), 0.5);
        assert_eq!(s.utilization(5.0), 1.0);
        assert_eq!(s.utilization(0.0), 0.0);
    }
}
