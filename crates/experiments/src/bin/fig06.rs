//! Regenerates the paper's fig06 data; see `wfbb_experiments::figures`.
fn main() {
    wfbb_experiments::run_and_save("fig06");
}
