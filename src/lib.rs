//! # wfbb — Workflow executions on HPC platforms with Burst Buffers
//!
//! A from-scratch Rust reproduction of Pottier, Ferreira da Silva, Casanova,
//! and Deelman, *"Modeling the Performance of Scientific Workflow Executions
//! on HPC Platforms with Burst Buffers"* (IEEE CLUSTER 2020).
//!
//! This facade crate re-exports the full stack:
//!
//! * [`simcore`] — discrete-event fluid simulation kernel (max–min fair
//!   bandwidth sharing, the SimGrid-style substrate);
//! * [`platform`] — HPC platform descriptions (compute nodes, interconnect,
//!   PFS, burst buffers) with Cori and Summit presets;
//! * [`workflow`] — workflow DAGs (tasks, files, dependencies, Amdahl
//!   speedup model);
//! * [`storage`] — storage services: parallel file system, shared burst
//!   buffers (private/striped modes), on-node burst buffers, and file
//!   placement policies;
//! * [`wms`] — the workflow management system that executes a workflow on a
//!   platform through the simulator;
//! * [`sched`] — the multi-tenant campaign layer: batch scheduling policies
//!   (FCFS, EASY backfill, BB-aware backfill) admitting concurrent workflow
//!   jobs onto one shared platform;
//! * [`resilience`] — fault schedules, retry policies, and checkpoint
//!   policies: checkpoints are scheduled I/O, restarts resume from the
//!   last completed image, and campaign-scope BB faults shrink the
//!   reservation pool (see `docs/failure-model.md`);
//! * [`calibration`] — the paper's calibration model (Equations 1–4,
//!   Table I constants) plus digitized measured data and the measurement
//!   emulator used in place of real Cori/Summit runs;
//! * [`workloads`] — SWarp and 1000Genomes workflow generators;
//! * [`serve`] — the simulation-as-a-service layer: a multi-tenant
//!   what-if HTTP API with a deterministic result cache (see
//!   `docs/service.md`).
//!
//! ## Quickstart
//!
//! ```
//! use wfbb::prelude::*;
//!
//! // A Cori-like platform with 1 compute node and a shared burst buffer in
//! // private mode.
//! let platform = presets::cori(1, BbMode::Private);
//! // One SWarp pipeline, 32 cores per task, everything staged to the BB.
//! let workflow = SwarpConfig::new(1).with_cores_per_task(32).build();
//! let placement = PlacementPolicy::FractionToBb { fraction: 1.0 };
//! let report = SimulationBuilder::new(platform, workflow)
//!     .placement(placement)
//!     .run()
//!     .expect("simulation runs");
//! assert!(report.makespan.seconds() > 0.0);
//! ```

pub use wfbb_calibration as calibration;
pub use wfbb_platform as platform;
pub use wfbb_resilience as resilience;
pub use wfbb_sched as sched;
pub use wfbb_serve as serve;
pub use wfbb_simcore as simcore;
pub use wfbb_storage as storage;
pub use wfbb_wms as wms;
pub use wfbb_workflow as workflow;
pub use wfbb_workloads as workloads;

/// Convenience re-exports of the most frequently used types.
pub mod prelude {
    pub use wfbb_calibration::emulator::{Emulator, EmulatorConfig};
    pub use wfbb_calibration::model::{amdahl_time, sequential_compute_time, CalibratedTask};
    pub use wfbb_calibration::params::{CORI, SUMMIT};
    pub use wfbb_platform::{presets, BbArchitecture, BbMode, PlatformSpec};
    pub use wfbb_resilience::{
        young_interval, CheckpointPolicy, CheckpointTier, FaultSpec, RetryPolicy,
    };
    pub use wfbb_simcore::{Engine, EngineError, FlowSpec, SimTime, SolveMode};
    pub use wfbb_storage::{PlacementPolicy, StorageKind, Tier};
    pub use wfbb_wms::{
        SimulationBuilder, SimulationReport, StageSpan, TelemetryConfig, TRACE_SCHEMA_VERSION,
    };
    pub use wfbb_workflow::{Workflow, WorkflowBuilder};
    pub use wfbb_workloads::genomes::GenomesConfig;
    pub use wfbb_workloads::swarp::SwarpConfig;
}
