//! Extension experiment: plan-based vs greedy BB-aware scheduling.
//!
//! Runs an oversubscribed 20-job campaign (2x BB pressure, 15 s mean
//! interarrivals on 8-node striped-BB Cori, jobs up to half the
//! machine so backfilling stays live) under greedy
//! BB-aware backfilling and under the plan policy, while sweeping the
//! *walltime-estimate error*: at error factor `f`, odd-indexed jobs
//! over-estimate (`est * f`) and even-indexed jobs under-estimate
//! (`est / f`), so `f = 1` is the exact workload and larger `f` makes
//! the scheduler's beliefs increasingly wrong in both directions (jobs
//! always run to their actual completion — only beliefs change). A
//! *uniform* multiplier would be a much weaker probe: it preserves
//! every est-vs-est comparison the policies make (backfill shadow
//! tests, shortest-first candidate orders) and barely moves the
//! schedule.
//!
//! The question this answers is the practical one for plan-based
//! scheduling (Kopanski & Rzadca, arXiv:2109.00082): lookahead
//! simulation scores candidate admission orders using the *estimates*,
//! so how much of the plan policy's advantage survives when users
//! under- or over-estimate their walltimes? Greedy BB-aware uses the
//! same estimates only for backfill shadow times, so it degrades
//! differently.

use wfbb_platform::{presets, BbMode};
use wfbb_sched::{
    run_campaign, synthetic_jobs, BatchPolicy, CampaignConfig, CampaignReport, JobSpec,
    SyntheticConfig,
};

use crate::harness::par_map;
use crate::table::{f2, Table};

/// Compute nodes of the shared machine.
const NODES: usize = 8;
/// Campaign length: long enough that admission order compounds.
const JOBS: usize = 20;
/// Workload seed (fixed; campaigns are deterministic).
const SEED: u64 = 1;
/// Walltime-estimate error factors: 1x is perfect information; at
/// factor `f` half the jobs believe `est * f` and half `est / f`.
const EST_ERROR: [f64; 5] = [1.0, 1.5, 2.0, 3.0, 4.0];
/// The two contenders: greedy BB-aware backfilling vs plan-based.
const POLICIES: [BatchPolicy; 2] = [BatchPolicy::BbAware, BatchPolicy::Plan];

/// The oversubscribed acceptance workload with per-job estimate error:
/// odd-indexed jobs over-estimate by `est_factor`, even-indexed jobs
/// under-estimate by the same factor.
fn workload(est_factor: f64) -> Vec<JobSpec> {
    let mut jobs = synthetic_jobs(
        SEED,
        &SyntheticConfig {
            jobs: JOBS,
            mean_interarrival: 15.0,
            bb_request_scale: 2.0,
            max_nodes: NODES / 2,
        },
    )
    .expect("synthetic workload");
    for (i, j) in jobs.iter_mut().enumerate() {
        if i % 2 == 0 {
            j.walltime_est /= est_factor;
        } else {
            j.walltime_est *= est_factor;
        }
    }
    jobs
}

fn run_one(policy: BatchPolicy, est_factor: f64) -> CampaignReport {
    let config = CampaignConfig::new(presets::cori(NODES, BbMode::Striped))
        .with_policy(policy)
        .with_platform_label("cori:striped");
    run_campaign(&config, &workload(est_factor)).expect("campaign completes")
}

/// Builds the estimate-error x policy table.
pub fn run() -> Vec<Table> {
    let grid: Vec<(f64, BatchPolicy)> = EST_ERROR
        .iter()
        .flat_map(|&e| POLICIES.into_iter().map(move |p| (e, p)))
        .collect();
    let reports = par_map(grid.clone(), |&(e, p)| run_one(p, e));

    let mut t = Table::new(
        "Plan scheduling: walltime-estimate error x policy, oversubscribed 20-job campaign on 8-node Cori striped",
        &[
            "estimate error",
            "policy",
            "jobs ran",
            "mean wait (s)",
            "max wait (s)",
            "mean bounded slowdown",
            "makespan (s)",
            "node util",
            "bb util",
        ],
    );
    for ((e, p), r) in grid.iter().zip(&reports) {
        t.push_row(vec![
            format!("{e:.2}x"),
            p.label().into(),
            format!("{}", r.jobs_ran),
            f2(r.mean_wait),
            f2(r.max_wait),
            format!("{:.3}", r.mean_bounded_slowdown),
            f2(r.makespan),
            format!("{:.1}%", r.node_utilization * 100.0),
            format!("{:.1}%", r.bb_utilization * 100.0),
        ]);
    }

    let pick = |policy: BatchPolicy, e: f64| {
        grid.iter()
            .zip(&reports)
            .find(|((ge, gp), _)| *gp == policy && *ge == e)
            .map(|(_, r)| r.mean_bounded_slowdown)
            .unwrap()
    };
    t.note(format!(
        "with perfect estimates (1x) the mean bounded slowdown is {:.3} (bb-aware) vs {:.3} (plan), and at 4x error {:.3} vs {:.3}: greedy backfilling leans on estimates for its shadow-time tests, so bad estimates make it hold jobs back (or backfill the wrong ones), while the plan policy's rollouts *execute* candidate orders in the forked simulator and only use estimates to propose orderings and to project still-running jobs — so its schedule barely moves and the gap widens (arXiv:2109.00082)",
        pick(BatchPolicy::BbAware, 1.0),
        pick(BatchPolicy::Plan, 1.0),
        pick(BatchPolicy::BbAware, 4.0),
        pick(BatchPolicy::Plan, 4.0),
    ));
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_strictly_beats_greedy_with_perfect_estimates() {
        let greedy = run_one(BatchPolicy::BbAware, 1.0);
        let plan = run_one(BatchPolicy::Plan, 1.0);
        assert_eq!(plan.jobs_ran, greedy.jobs_ran, "plan must not lose jobs");
        assert!(
            plan.mean_bounded_slowdown < greedy.mean_bounded_slowdown - 1e-9,
            "plan {} !< bb-aware {}",
            plan.mean_bounded_slowdown,
            greedy.mean_bounded_slowdown
        );
    }
}
