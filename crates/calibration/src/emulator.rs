//! The measurement emulator — our stand-in for real Cori/Summit runs.
//!
//! The paper validates its simulator against executions on two production
//! machines we do not have. Following the substitution rule in DESIGN.md,
//! the emulator plays the role of "the real platform": it is the same
//! fluid simulator, *plus* the effects the paper's deliberately simple
//! model omits — which is exactly why the paper reports 5–16 % error
//! rather than 0 %:
//!
//! * **Non-perfect task speedup.** The model assumes perfect speedup
//!   (Equation 4); real Combine barely scales (Figure 6). The emulator
//!   injects per-category Amdahl fractions.
//! * **Interference noise.** Both machines are shared; striped-mode runs
//!   vary by ~15 %, private runs less, on-node runs least (Figure 8). The
//!   emulator applies seeded log-normal noise with per-mode spread.
//! * **Private-mode small-file penalty.** Measured private-mode makespans
//!   *rise* slightly as more small files are staged (the trend inversion
//!   of Figure 10(a), attributed to concurrent storage access). The
//!   emulator degrades private BB bandwidth and metadata with the staged
//!   fraction.
//! * **The 75 % striped anomaly.** Stage-in under the striped mode is
//!   reproducibly worse at 75 % staged than at 100 % (Figure 4); the paper
//!   suspects a configuration threshold. The emulator halves striped
//!   metadata throughput in the 70–80 % band.
//!
//! Comparing clean-simulator output against emulator output therefore
//! reproduces the *structure* of the paper's validation: same trends, same
//! sign of deviation, errors of the same order.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wfbb_platform::{BbArchitecture, BbMode, PlatformSpec};
use wfbb_simcore::SimTime;
use wfbb_storage::{PlacementPolicy, Tier};
use wfbb_wms::{SimulationBuilder, SimulationError, SimulationReport};
use wfbb_workflow::Workflow;

use crate::params;
use crate::params::OBSERVED_CORES;

/// Tuning knobs of the measurement emulator.
#[derive(Debug, Clone)]
pub struct EmulatorConfig {
    /// Base RNG seed; combined with the repetition index.
    pub seed: u64,
    /// Log-normal noise spread for shared/private runs.
    pub noise_sigma_private: f64,
    /// Log-normal noise spread for shared/striped runs (largest — the
    /// paper measures ~15 % variability).
    pub noise_sigma_striped: f64,
    /// Log-normal noise spread for on-node runs (smallest — no network on
    /// the BB path).
    pub noise_sigma_onnode: f64,
    /// Private-mode degradation coefficient: BB bandwidth divided by
    /// `1 + c·fraction_staged` (drives the Figure 10(a) trend inversion).
    pub private_penalty: f64,
    /// Striped metadata slowdown factor applied when the staged fraction
    /// falls in the 70–80 % band (the Figure 4 anomaly).
    pub striped_anomaly_slowdown: f64,
    /// Interference coefficient for concurrent pipelines sharing a remote
    /// BB: shared-BB bandwidth and metadata are divided by
    /// `1 + c·(width − 1)` where `width` is the workflow's maximum task
    /// parallelism. Drives the measured per-task slowdowns of Figure 7
    /// that the clean fluid model underestimates.
    pub shared_concurrency_penalty: f64,
    /// Fixed degradation of the on-node NVMe relative to its spec-sheet
    /// bandwidth under mixed read/write task I/O.
    pub onnode_disk_derate: f64,
    /// Fixed degradation of Summit's effective per-core compute throughput
    /// for SWarp (the task calibration was done on Cori and reused for
    /// Summit, as in the paper; its on-node simulations overestimate
    /// performance by ~6 %).
    pub onnode_compute_derate: f64,
    /// Extra relative noise per unit of concurrency on shared BBs: the
    /// effective sigma is `sigma × sqrt(1 + c·(width − 1))`, so run-to-run
    /// variation worsens with interference (Figure 8).
    pub noise_concurrency_scale: f64,
    /// Per-category Amdahl overrides applied to "real" runs.
    pub alphas: HashMap<String, f64>,
}

impl Default for EmulatorConfig {
    fn default() -> Self {
        let mut alphas = HashMap::new();
        alphas.insert("resample".to_string(), params::REAL_ALPHA_RESAMPLE);
        alphas.insert("combine".to_string(), params::REAL_ALPHA_COMBINE);
        EmulatorConfig {
            seed: 0x5741_5250, // "SWRP"
            noise_sigma_private: 0.05,
            noise_sigma_striped: 0.11,
            noise_sigma_onnode: 0.015,
            private_penalty: 1.2,
            striped_anomaly_slowdown: 2.5,
            shared_concurrency_penalty: 0.016,
            onnode_disk_derate: 0.10,
            onnode_compute_derate: 0.06,
            noise_concurrency_scale: 0.03,
            alphas,
        }
    }
}

/// Generates "measured" executions.
#[derive(Debug, Clone, Default)]
pub struct Emulator {
    /// Emulator tuning.
    pub config: EmulatorConfig,
}

impl Emulator {
    /// Creates an emulator with the given configuration.
    pub fn new(config: EmulatorConfig) -> Self {
        Emulator { config }
    }

    /// Fraction of input files a placement policy stages into the BB.
    pub fn staged_fraction(placement: &PlacementPolicy, workflow: &Workflow) -> f64 {
        let inputs = workflow.input_files();
        if inputs.is_empty() {
            return 0.0;
        }
        let plan = placement.plan(workflow);
        let staged = inputs
            .iter()
            .filter(|&&f| plan.tier(f) == Tier::BurstBuffer)
            .count();
        staged as f64 / inputs.len() as f64
    }

    /// The platform as the emulator sees it: degraded private-mode BB for
    /// high staged fractions, the striped anomaly band, otherwise
    /// unchanged.
    fn effective_platform(
        &self,
        platform: &PlatformSpec,
        fraction: f64,
        width: usize,
    ) -> PlatformSpec {
        let mut p = platform.clone();
        match p.bb {
            BbArchitecture::Shared {
                mode: BbMode::Private,
                ..
            } => {
                let degrade = 1.0 + self.config.private_penalty * fraction;
                p.bb_network_bw /= degrade;
                p.bb_meta_ops /= degrade;
            }
            BbArchitecture::Shared {
                mode: BbMode::Striped,
                ..
            } if (0.70..0.80).contains(&fraction) => {
                p.bb_meta_ops /= self.config.striped_anomaly_slowdown;
            }
            _ => {}
        }
        // Interference among concurrent pipelines on a remote shared BB.
        if matches!(p.bb, BbArchitecture::Shared { .. }) && width > 1 {
            let degrade = 1.0 + self.config.shared_concurrency_penalty * (width as f64 - 1.0);
            p.bb_network_bw /= degrade;
            p.bb_meta_ops /= degrade;
            p.io_core_bw /= degrade;
        }
        // The local NVMe never reaches its spec-sheet bandwidth under the
        // mixed small-file read/write pattern of task I/O.
        if matches!(p.bb, BbArchitecture::OnNode) {
            p.bb_disk_bw /= 1.0 + self.config.onnode_disk_derate;
            p.gflops_per_core /= 1.0 + self.config.onnode_compute_derate;
        }
        p
    }

    fn noise_sigma(&self, platform: &PlatformSpec, width: usize) -> f64 {
        let base = match platform.bb {
            BbArchitecture::Shared {
                mode: BbMode::Private,
                ..
            } => self.config.noise_sigma_private,
            BbArchitecture::Shared {
                mode: BbMode::Striped,
                ..
            } => self.config.noise_sigma_striped,
            BbArchitecture::OnNode => self.config.noise_sigma_onnode,
            BbArchitecture::None => self.config.noise_sigma_private,
        };
        // Interference-driven variation grows with concurrency on the
        // shared architectures; local NVMe stays stable.
        if matches!(platform.bb, BbArchitecture::Shared { .. }) && width > 1 {
            base * (1.0 + self.config.noise_concurrency_scale * (width as f64 - 1.0)).sqrt()
        } else {
            base
        }
    }

    /// A unit-mean log-normal interference factor for repetition `rep`.
    fn noise_factor(&self, sigma: f64, rep: u64) -> f64 {
        if sigma == 0.0 {
            return 1.0;
        }
        let mut rng =
            StdRng::seed_from_u64(self.config.seed ^ rep.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Box–Muller.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (sigma * z - sigma * sigma / 2.0).exp()
    }

    /// Runs one emulated ("measured") execution; `rep` selects the
    /// interference sample, so repeated calls model repeated real runs.
    pub fn run(
        &self,
        platform: &PlatformSpec,
        workflow: &Workflow,
        placement: &PlacementPolicy,
        rep: u64,
    ) -> Result<SimulationReport, SimulationError> {
        let fraction = Self::staged_fraction(placement, workflow);
        let effective = self.effective_platform(platform, fraction, workflow.width());
        // Inject real-world Amdahl fractions *consistently with the
        // observations*: the clean model derived each task's work through
        // Equation (4) (perfect speedup at the observed core count); if the
        // real task has serial fraction alpha, the same observation implies
        // Equation (3)'s smaller sequential work. Rescale so both models
        // agree exactly at the calibration point.
        let alphas = &self.config.alphas;
        let p_obs = OBSERVED_CORES as f64;
        let wf = workflow.map_tasks(|t| {
            if let Some(&alpha) = alphas.get(&t.category) {
                t.alpha = alpha;
                t.flops *= (1.0 / p_obs) / (alpha + (1.0 - alpha) / p_obs);
            }
        });
        let report = SimulationBuilder::new(effective, wf)
            .placement(placement.clone())
            .run()?;
        let factor = self.noise_factor(self.noise_sigma(platform, workflow.width()), rep);
        Ok(scale_report(report, factor))
    }

    /// Runs `n` emulated repetitions and returns their makespans — the
    /// repetition protocol of the paper (15 runs per configuration).
    pub fn run_many(
        &self,
        platform: &PlatformSpec,
        workflow: &Workflow,
        placement: &PlacementPolicy,
        n: u64,
    ) -> Result<Vec<SimulationReport>, SimulationError> {
        (0..n)
            .map(|rep| self.run(platform, workflow, placement, rep))
            .collect()
    }
}

/// Scales every time stamp of a report by `factor`, keeping the record
/// internally consistent (bytes are unchanged; achieved bandwidths scale
/// inversely).
fn scale_report(mut report: SimulationReport, factor: f64) -> SimulationReport {
    let scale = |t: SimTime| SimTime::from_seconds(t.seconds() * factor);
    report.makespan = scale(report.makespan);
    report.stage_in_time *= factor;
    for s in report
        .stage_spans
        .iter_mut()
        .chain(report.output_spans.iter_mut())
    {
        s.start = scale(s.start);
        s.end = scale(s.end);
    }
    for r in &mut report.tasks {
        r.start = scale(r.start);
        r.read_end = scale(r.read_end);
        r.compute_end = scale(r.compute_end);
        r.end = scale(r.end);
        r.pure_compute *= factor;
        r.serialized_io *= factor;
        r.contention_wait *= factor;
        for (_, wait) in &mut r.contention_by_resource {
            *wait *= factor;
        }
    }
    for c in &mut report.contention {
        c.wait *= factor;
        c.interval = (c.interval.0 * factor, c.interval.1 * factor);
    }
    for (_, wait) in &mut report.stage_contention {
        *wait *= factor;
    }
    for step in &mut report.critical_path {
        step.start = scale(step.start);
        step.end = scale(step.end);
        step.slack *= factor;
    }
    report.bb_achieved_bw /= factor;
    report.pfs_achieved_bw /= factor;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfbb_platform::presets;
    use wfbb_workflow::WorkflowBuilder;

    fn small_workflow() -> Workflow {
        let mut b = WorkflowBuilder::new("wf");
        let inputs: Vec<_> = (0..4).map(|i| b.add_file(format!("in{i}"), 32e6)).collect();
        let mid = b.add_file("mid", 32e6);
        let out = b.add_file("out", 8e6);
        b.task("r")
            .category("resample")
            .flops(7e12)
            .cores(32)
            .pipeline(0)
            .inputs(inputs)
            .output(mid)
            .add();
        b.task("c")
            .category("combine")
            .flops(3e12)
            .cores(32)
            .pipeline(0)
            .input(mid)
            .output(out)
            .add();
        b.build().unwrap()
    }

    #[test]
    fn documented_default_penalties_match_experiments_md() {
        // EXPERIMENTS.md's Figure 4 row cites these constants by value;
        // changing a default here must update the document too.
        let c = EmulatorConfig::default();
        assert_eq!(c.private_penalty, 1.2);
        assert_eq!(c.striped_anomaly_slowdown, 2.5);
    }

    #[test]
    fn staged_fraction_tracks_policy() {
        let wf = small_workflow();
        assert_eq!(
            Emulator::staged_fraction(&PlacementPolicy::AllPfs, &wf),
            0.0
        );
        assert_eq!(Emulator::staged_fraction(&PlacementPolicy::AllBb, &wf), 1.0);
        let half = PlacementPolicy::FractionToBb { fraction: 0.5 };
        assert_eq!(Emulator::staged_fraction(&half, &wf), 0.5);
    }

    #[test]
    fn staged_fraction_handles_input_fraction_policies() {
        let wf = small_workflow();
        let policy = PlacementPolicy::InputFraction {
            fraction: 0.25,
            intermediates: Tier::Pfs,
            outputs: Tier::Pfs,
        };
        assert_eq!(Emulator::staged_fraction(&policy, &wf), 0.25);
        // A workflow with no inputs stages nothing.
        let empty = wfbb_workflow::WorkflowBuilder::new("none").build().unwrap();
        assert_eq!(
            Emulator::staged_fraction(&PlacementPolicy::AllBb, &empty),
            0.0
        );
    }

    #[test]
    fn alpha_rescaling_matches_the_observation_at_32_cores() {
        // At the calibration point (32 cores) the emulated compute time
        // must equal the clean model's, so all divergence comes from the
        // penalty/noise mechanisms.
        let emulator = Emulator::new(EmulatorConfig {
            noise_sigma_private: 0.0,
            private_penalty: 0.0,
            shared_concurrency_penalty: 0.0,
            ..EmulatorConfig::default()
        });
        let platform = presets::cori(1, BbMode::Private);
        let wf = small_workflow();
        let measured = emulator
            .run(&platform, &wf, &PlacementPolicy::AllBb, 0)
            .unwrap();
        let simulated = wfbb_wms::SimulationBuilder::new(platform, wf)
            .placement(PlacementPolicy::AllBb)
            .run()
            .unwrap();
        let m = measured.task_by_name("r").unwrap();
        let s = simulated.task_by_name("r").unwrap();
        assert!(
            (m.compute_time() - s.compute_time()).abs() < 1e-6 * s.compute_time(),
            "compute at the calibration point must match: {} vs {}",
            m.compute_time(),
            s.compute_time()
        );
    }

    #[test]
    fn emulated_runs_are_reproducible_per_rep() {
        let emulator = Emulator::default();
        let platform = presets::cori(1, BbMode::Private);
        let wf = small_workflow();
        let a = emulator
            .run(&platform, &wf, &PlacementPolicy::AllBb, 3)
            .unwrap();
        let b = emulator
            .run(&platform, &wf, &PlacementPolicy::AllBb, 3)
            .unwrap();
        assert_eq!(a.makespan, b.makespan);
        let c = emulator
            .run(&platform, &wf, &PlacementPolicy::AllBb, 4)
            .unwrap();
        assert_ne!(a.makespan, c.makespan, "different reps see different noise");
    }

    #[test]
    fn striped_runs_vary_more_than_onnode_runs() {
        let emulator = Emulator::default();
        let wf = small_workflow();
        let policy = PlacementPolicy::AllBb;
        let striped: Vec<f64> = emulator
            .run_many(&presets::cori(1, BbMode::Striped), &wf, &policy, 15)
            .unwrap()
            .iter()
            .map(|r| r.makespan.seconds())
            .collect();
        let onnode: Vec<f64> = emulator
            .run_many(&presets::summit(1), &wf, &policy, 15)
            .unwrap()
            .iter()
            .map(|r| r.makespan.seconds())
            .collect();
        let cv_striped = crate::error::coefficient_of_variation(&striped);
        let cv_onnode = crate::error::coefficient_of_variation(&onnode);
        assert!(
            cv_striped > cv_onnode,
            "striped CV {cv_striped} !> on-node CV {cv_onnode}"
        );
    }

    #[test]
    fn emulated_private_mode_is_slower_than_the_clean_model() {
        // The emulator adds penalties and Amdahl drag, so at full staging
        // its (noise-free rep-median) makespan exceeds the clean model's.
        let emulator = Emulator::new(EmulatorConfig {
            noise_sigma_private: 0.0,
            ..EmulatorConfig::default()
        });
        let platform = presets::cori(1, BbMode::Private);
        let wf = small_workflow();
        let measured = emulator
            .run(&platform, &wf, &PlacementPolicy::AllBb, 0)
            .unwrap();
        let simulated = SimulationBuilder::new(platform, wf)
            .placement(PlacementPolicy::AllBb)
            .run()
            .unwrap();
        assert!(measured.makespan > simulated.makespan);
    }

    #[test]
    fn striped_anomaly_band_slows_stage_in() {
        let emulator = Emulator::new(EmulatorConfig {
            noise_sigma_striped: 0.0,
            ..EmulatorConfig::default()
        });
        let platform = presets::cori(1, BbMode::Striped);
        let wf = small_workflow();
        let at75 = emulator
            .run(
                &platform,
                &wf,
                &PlacementPolicy::FractionToBb { fraction: 0.75 },
                0,
            )
            .unwrap();
        let at100 = emulator
            .run(
                &platform,
                &wf,
                &PlacementPolicy::FractionToBb { fraction: 1.0 },
                0,
            )
            .unwrap();
        // 75 % stages 3 of 4 files but pays doubled metadata cost: slower
        // stage-in than staging all 4 normally.
        assert!(
            at75.stage_in_time > at100.stage_in_time,
            "{} !> {}",
            at75.stage_in_time,
            at100.stage_in_time
        );
    }

    #[test]
    fn noise_factor_is_centered_near_one() {
        let emulator = Emulator::default();
        let n = 500;
        let mean: f64 = (0..n)
            .map(|rep| emulator.noise_factor(0.15, rep))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn scale_report_keeps_order_and_scales_times() {
        let emulator = Emulator::default();
        let platform = presets::summit(1);
        let wf = small_workflow();
        let base = SimulationBuilder::new(platform.clone(), wf.clone())
            .run()
            .unwrap();
        let scaled = scale_report(base.clone(), 2.0);
        assert!((scaled.makespan.seconds() - 2.0 * base.makespan.seconds()).abs() < 1e-9);
        for (a, b) in base.tasks.iter().zip(&scaled.tasks) {
            assert!((b.duration() - 2.0 * a.duration()).abs() < 1e-9);
        }
        // Unused variable silencer with meaning: emulator default exists.
        let _ = emulator;
    }
}
