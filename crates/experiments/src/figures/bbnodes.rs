//! Extension experiment: the Figure 13 allocation conjecture.
//!
//! Section IV-C: *"We conjecture that a striped BB allocation would
//! improve the performance in this case by using more BB nodes and,
//! therefore, alleviating the pressure on the bandwidth."* This
//! experiment tests it: the 1000Genomes instance on Cori, fully staged,
//! with striped allocations of 1–16 BB nodes, against the single-node
//! private allocation of Figure 13.
//!
//! Finding: the conjecture's *mechanism* works — aggregate bandwidth
//! grows with the allocation and makespans improve monotonically with
//! width — but for this many-small-files workflow the striped mode's
//! slow per-stripe metadata keeps even a 16-node allocation behind the
//! private baseline. A hypothetical striped allocation with
//! private-grade metadata (also swept below) does overtake it,
//! confirming that bandwidth is relieved exactly as the paper
//! conjectures and that metadata is the remaining obstacle — consistent
//! with the paper's own small-file findings (Section III-D).

use wfbb_platform::{presets, BbArchitecture, BbMode, PlatformSpec};
use wfbb_workloads::GenomesConfig;

use crate::harness::{fraction_policy, par_map, simulate};
use crate::table::{f2, Table};

/// Striped allocation widths swept.
const BB_NODE_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// Compute nodes (as in the Figure 13 reproduction).
const NODES: usize = 4;

fn striped_with(bb_nodes: usize) -> PlatformSpec {
    let mut p = presets::cori(NODES, BbMode::Striped);
    p.bb = BbArchitecture::Shared {
        bb_nodes,
        mode: BbMode::Striped,
    };
    p
}

/// The hypothetical the conjecture implicitly assumes: striping whose
/// metadata service keeps up (private-grade ops rate per node).
fn striped_fast_meta(bb_nodes: usize) -> PlatformSpec {
    let mut p = striped_with(bb_nodes);
    p.bb_meta_ops = presets::cori(NODES, BbMode::Private).bb_meta_ops;
    p
}

pub(crate) fn genomes_makespan(platform: &PlatformSpec) -> f64 {
    let wf = GenomesConfig::paper_instance().build();
    simulate(platform, &wf, &fraction_policy(1.0)).makespan
}

/// Builds the allocation-width table.
pub fn run() -> Vec<Table> {
    let private = genomes_makespan(&presets::cori(NODES, BbMode::Private));
    let grid: Vec<(bool, usize)> = [false, true]
        .into_iter()
        .flat_map(|fast| BB_NODE_COUNTS.iter().map(move |&n| (fast, n)))
        .collect();
    let results = par_map(grid.clone(), |&(fast, n)| {
        let p = if fast {
            striped_fast_meta(n)
        } else {
            striped_with(n)
        };
        genomes_makespan(&p)
    });

    let mut t = Table::new(
        "BB allocation width (extension): the Figure 13 striped conjecture",
        &["allocation", "BB nodes", "makespan (s)", "vs private"],
    );
    t.push_row(vec![
        "private (Fig 13 baseline)".into(),
        "1".into(),
        f2(private),
        "1.00x".into(),
    ]);
    for ((fast, n), makespan) in grid.iter().zip(&results) {
        t.push_row(vec![
            if *fast {
                "striped + fast metadata"
            } else {
                "striped"
            }
            .into(),
            n.to_string(),
            f2(*makespan),
            format!("{:.2}x", private / makespan),
        ]);
    }
    let narrow = results[0];
    let wide = results[BB_NODE_COUNTS.len() - 1];
    let wide_fast = *results.last().unwrap();
    t.note(format!(
        "width relieves bandwidth exactly as conjectured ({:.0}s at 1 BB node -> {:.0}s at 16), but DataWarp-grade striped metadata keeps the mode behind private ({:.0}s) on this many-small-files workflow",
        narrow, wide, private
    ));
    t.note(format!(
        "with private-grade metadata the conjecture fully holds: 16 striped BB nodes reach {:.0}s ({:.2}x over private) — bandwidth was the Figure 13 bottleneck, metadata is the striped mode's own",
        wide_fast,
        private / wide_fast
    ));
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_metadata_striped_confirms_the_bandwidth_conjecture() {
        // Reduced instance for speed.
        let wf = GenomesConfig::new(6).build();
        let private = simulate(
            &presets::cori(NODES, BbMode::Private),
            &wf,
            &fraction_policy(1.0),
        )
        .makespan;
        let wide_fast = simulate(&striped_fast_meta(16), &wf, &fraction_policy(1.0)).makespan;
        assert!(
            wide_fast < private,
            "16 BB nodes with scaling metadata must beat the saturated private baseline: {wide_fast} !< {private}"
        );
    }

    #[test]
    fn makespan_improves_with_allocation_width() {
        let wf = GenomesConfig::new(4).build();
        let m2 = simulate(&striped_with(2), &wf, &fraction_policy(1.0)).makespan;
        let m8 = simulate(&striped_with(8), &wf, &fraction_policy(1.0)).makespan;
        assert!(m8 < m2, "more BB nodes must help: {m8} !< {m2}");
    }
}
