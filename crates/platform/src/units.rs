//! Unit helpers.
//!
//! All bandwidths in this workspace are SI bytes per second and all data
//! sizes are bytes (`f64`). The paper mixes MB/s (Table I) and MiB (SWarp
//! file sizes); these helpers make each constant's unit explicit at the
//! definition site.

/// One SI kilobyte (1e3 bytes).
pub const KB: f64 = 1e3;
/// One SI megabyte (1e6 bytes).
pub const MB: f64 = 1e6;
/// One SI gigabyte (1e9 bytes).
pub const GB: f64 = 1e9;
/// One SI terabyte (1e12 bytes).
pub const TB: f64 = 1e12;

/// One kibibyte (1024 bytes).
pub const KIB: f64 = 1024.0;
/// One mebibyte (1024^2 bytes).
pub const MIB: f64 = 1024.0 * 1024.0;
/// One gibibyte (1024^3 bytes).
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// One gigaflop (1e9 floating-point operations).
pub const GFLOP: f64 = 1e9;

/// Formats a byte count using the most readable SI unit.
pub fn format_bytes(bytes: f64) -> String {
    if bytes >= TB {
        format!("{:.2} TB", bytes / TB)
    } else if bytes >= GB {
        format!("{:.2} GB", bytes / GB)
    } else if bytes >= MB {
        format!("{:.2} MB", bytes / MB)
    } else if bytes >= KB {
        format!("{:.2} kB", bytes / KB)
    } else {
        format!("{bytes:.0} B")
    }
}

/// Formats a bandwidth in B/s using the most readable SI unit.
pub fn format_bandwidth(bytes_per_sec: f64) -> String {
    format!("{}/s", format_bytes(bytes_per_sec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn si_and_binary_units_differ() {
        assert_eq!(MB, 1_000_000.0);
        assert_eq!(MIB, 1_048_576.0);
        let (gib, gb) = (GIB, GB);
        assert!(gib > gb);
    }

    #[test]
    fn formats_pick_sensible_units() {
        assert_eq!(format_bytes(512.0), "512 B");
        assert_eq!(format_bytes(32.0 * MB), "32.00 MB");
        assert_eq!(format_bytes(6.4 * TB), "6.40 TB");
        assert_eq!(format_bandwidth(800.0 * MB), "800.00 MB/s");
    }

    #[test]
    fn swarp_file_sizes_in_bytes() {
        // The SWarp inputs: 32 MiB images, 16 MiB weight maps.
        assert_eq!(32.0 * MIB, 33_554_432.0);
        assert_eq!(16.0 * MIB, 16_777_216.0);
    }
}
