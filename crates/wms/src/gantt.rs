//! Gantt-chart views of a simulation report.
//!
//! Turns per-task records into per-node timelines for inspection and
//! plotting: a JSON export (one object per task with node, phase
//! boundaries, and pipeline tag) and a quick ASCII rendering for
//! terminals. Phase boundaries are exact simulation timestamps, so
//! downstream tools can reconstruct read/compute/write occupancy.

use crate::report::{SimulationReport, TaskRecord};

/// One Gantt lane entry.
#[derive(Debug, Clone)]
pub struct GanttEntry<'a> {
    /// The underlying task record.
    pub record: &'a TaskRecord,
}

impl SimulationReport {
    /// Task records grouped by compute node, each group sorted by start
    /// time (ties by task id).
    pub fn gantt_by_node(&self) -> Vec<Vec<GanttEntry<'_>>> {
        let nodes = self.tasks.iter().map(|t| t.node).max().map_or(0, |n| n + 1);
        let mut lanes: Vec<Vec<GanttEntry<'_>>> = (0..nodes).map(|_| Vec::new()).collect();
        for t in &self.tasks {
            lanes[t.node].push(GanttEntry { record: t });
        }
        for lane in &mut lanes {
            lane.sort_by(|a, b| {
                a.record
                    .start
                    .cmp(&b.record.start)
                    .then(a.record.task.cmp(&b.record.task))
            });
        }
        lanes
    }

    /// Exports the schedule as a JSON array (one object per task), stable
    /// across runs for a given input.
    pub fn gantt_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, t) in self.tasks.iter().enumerate() {
            let sep = if i + 1 == self.tasks.len() { "" } else { "," };
            out.push_str(&format!(
                "  {{\"task\":\"{}\",\"category\":\"{}\",\"node\":{},\"cores\":{},\
                 \"pipeline\":{},\"start\":{:.6},\"read_end\":{:.6},\"compute_end\":{:.6},\
                 \"end\":{:.6}}}{}\n",
                t.name,
                t.category,
                t.node,
                t.cores,
                t.pipeline.map_or("null".to_string(), |p| p.to_string()),
                t.start.seconds(),
                t.read_end.seconds(),
                t.compute_end.seconds(),
                t.end.seconds(),
                sep
            ));
        }
        out.push(']');
        out
    }

    /// Exports the schedule in the Chrome tracing format (load in
    /// `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)): one
    /// process per compute node, one complete event per task phase
    /// (read / compute / write), timestamps in microseconds.
    pub fn chrome_trace_json(&self) -> String {
        let mut events = Vec::new();
        for t in &self.tasks {
            let phases = [
                ("read", t.start.seconds(), t.read_end.seconds()),
                ("compute", t.read_end.seconds(), t.compute_end.seconds()),
                ("write", t.compute_end.seconds(), t.end.seconds()),
            ];
            for (phase, begin, end) in phases {
                if end > begin {
                    events.push(format!(
                        concat!(
                            "{{\"name\":\"{}:{}\",\"cat\":\"{}\",\"ph\":\"X\",",
                            "\"ts\":{:.3},\"dur\":{:.3},\"pid\":{},\"tid\":{}}}"
                        ),
                        t.name,
                        phase,
                        t.category,
                        begin * 1e6,
                        (end - begin) * 1e6,
                        t.node,
                        t.task.index(),
                    ));
                }
            }
        }
        format!("[{}]", events.join(",\n "))
    }

    /// Renders a compact ASCII Gantt chart, `width` characters wide.
    /// Phases are drawn as `r` (read), `c` (compute), `w` (write).
    pub fn gantt_ascii(&self, width: usize) -> String {
        assert!(width >= 10, "need at least 10 columns");
        let horizon = self.makespan.seconds().max(1e-12);
        let col = |t: f64| ((t / horizon) * (width as f64 - 1.0)).round() as usize;
        let mut out = String::new();
        let name_w = self
            .tasks
            .iter()
            .map(|t| t.name.len())
            .max()
            .unwrap_or(4)
            .min(24);
        for lane in self.gantt_by_node() {
            for entry in lane {
                let t = entry.record;
                let mut row = vec![' '; width];
                let (s, r, c, e) = (
                    col(t.start.seconds()),
                    col(t.read_end.seconds()),
                    col(t.compute_end.seconds()),
                    col(t.end.seconds()),
                );
                for cell in row.iter_mut().take(r).skip(s) {
                    *cell = 'r';
                }
                for cell in row.iter_mut().take(c).skip(r) {
                    *cell = 'c';
                }
                for cell in row.iter_mut().take(e.max(c + 1).min(width)).skip(c) {
                    *cell = 'w';
                }
                let name: String = t.name.chars().take(name_w).collect();
                out.push_str(&format!(
                    "n{:02} {:name_w$} |{}|\n",
                    t.node,
                    name,
                    row.iter().collect::<String>()
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use wfbb_platform::presets;
    use wfbb_storage::PlacementPolicy;
    use wfbb_workflow::WorkflowBuilder;

    use crate::builder::SimulationBuilder;

    fn report() -> crate::report::SimulationReport {
        let mut b = WorkflowBuilder::new("g");
        let f0 = b.add_file("f0", 1e6);
        let f1 = b.add_file("f1", 1e6);
        b.task("a")
            .category("x")
            .flops(1e11)
            .cores(2)
            .pipeline(0)
            .output(f0)
            .add();
        b.task("b")
            .category("x")
            .flops(1e11)
            .cores(2)
            .pipeline(1)
            .input(f0)
            .output(f1)
            .add();
        let wf = b.build().unwrap();
        SimulationBuilder::new(presets::summit(2), wf)
            .placement(PlacementPolicy::AllBb)
            .run()
            .unwrap()
    }

    #[test]
    fn lanes_group_by_node_and_sort_by_start() {
        let r = report();
        let lanes = r.gantt_by_node();
        assert_eq!(lanes.len(), 2, "two pipeline-pinned nodes");
        let total: usize = lanes.iter().map(|l| l.len()).sum();
        assert_eq!(total, 2);
        for lane in lanes {
            for w in lane.windows(2) {
                assert!(w[0].record.start <= w[1].record.start);
            }
        }
    }

    #[test]
    fn json_is_parseable_and_complete() {
        let r = report();
        let json = r.gantt_json();
        let parsed: serde_json_value_check::Value = serde_json_value_check::parse(&json);
        assert_eq!(parsed.array_len(), 2);
        assert!(json.contains("\"task\":\"a\""));
        assert!(json.contains("\"pipeline\":1"));
    }

    /// Minimal JSON sanity checker (avoids a serde_json dev-dependency
    /// here): validates bracket balance and counts top-level objects.
    mod serde_json_value_check {
        pub struct Value {
            objects: usize,
        }
        impl Value {
            pub fn array_len(&self) -> usize {
                self.objects
            }
        }
        pub fn parse(s: &str) -> Value {
            let mut depth = 0i32;
            let mut objects = 0usize;
            for ch in s.chars() {
                match ch {
                    '[' | '{' => {
                        depth += 1;
                        if ch == '{' && depth == 2 {
                            objects += 1;
                        }
                    }
                    ']' | '}' => depth -= 1,
                    _ => {}
                }
            }
            assert_eq!(depth, 0, "unbalanced JSON");
            Value { objects }
        }
    }

    #[test]
    fn chrome_trace_has_one_event_per_nonempty_phase() {
        let r = report();
        let trace = r.chrome_trace_json();
        assert!(trace.starts_with('[') && trace.ends_with(']'));
        // Two tasks with read(+meta)/compute/write each; at minimum the
        // compute phases appear.
        assert!(trace.matches("\"ph\":\"X\"").count() >= 2);
        assert!(trace.contains("\"name\":\"a:compute\""));
        assert!(trace.contains("\"pid\":0"));
        assert!(trace.contains("\"pid\":1"));
        // Balanced braces.
        assert_eq!(trace.matches('{').count(), trace.matches('}').count());
    }

    #[test]
    fn ascii_gantt_renders_phases() {
        let r = report();
        let chart = r.gantt_ascii(60);
        assert!(chart.contains('c'), "compute phases visible");
        assert_eq!(chart.lines().count(), 2);
        assert!(chart.lines().all(|l| l.contains('|')));
    }

    #[test]
    #[should_panic(expected = "at least 10 columns")]
    fn ascii_rejects_tiny_width() {
        let _ = report().gantt_ascii(3);
    }

    #[test]
    fn empty_report_exports_are_well_formed() {
        let wf = WorkflowBuilder::new("void").build().unwrap();
        let r = SimulationBuilder::new(presets::summit(1), wf)
            .run()
            .unwrap();
        assert_eq!(r.gantt_json(), "[\n]");
        assert_eq!(r.chrome_trace_json(), "[]");
        assert!(r.gantt_by_node().is_empty());
        assert_eq!(r.gantt_ascii(20), "");
        assert_eq!(r.mean_utilization(), 0.0);
    }

    #[test]
    fn utilization_reflects_occupancy() {
        let r = report();
        // Two 2-core tasks on two 42-core Summit nodes, running back to
        // back: utilization is low but positive on both nodes.
        let u = r.node_utilization();
        assert_eq!(u.len(), 2);
        for v in u {
            assert!(v > 0.0 && v < 0.2, "utilization {v}");
        }
    }
}
