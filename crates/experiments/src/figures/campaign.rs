//! Extension experiment: multi-tenant campaign scheduling.
//!
//! Sweeps the batch policy (FCFS, EASY, BB-aware, plan) against
//! burst-buffer pressure (the `bb_request_scale` knob of the synthetic workload) and
//! arrival rate on 8-node striped-BB Cori, measuring the cluster-level
//! metrics the scheduling literature cares about: mean/max queue wait,
//! mean bounded slowdown, campaign makespan, node/BB utilization, and
//! the dominant blocking resource from the scheduler's three-way wait
//! decomposition (which resource — nodes, BB, or the head reservation
//! shadow — cost the campaign the most queue time).
//!
//! The point of the sweep is the Kopanski & Rzadca (arXiv:2109.00082)
//! effect: when aggregate BB requests are small, EASY and BB-aware
//! coincide (the BB constraint never binds) — but once requests
//! oversubscribe the pool, EASY's node-only backfilling lets short jobs
//! grab BB capacity that the blocked queue head needs, while the
//! BB-aware variant protects the head's BB reservation and wins on
//! bounded slowdown. The plan-based policy goes one step further and
//! simulates candidate admission orders forward before committing, so
//! it must never do worse than greedy BB-aware (it falls back to the
//! arrival order when lookahead finds nothing strictly better); the
//! companion `plan_scheduling` experiment sweeps its estimate-error
//! sensitivity.

use wfbb_platform::{presets, BbMode};
use wfbb_sched::{
    run_campaign, synthetic_jobs, BatchPolicy, CampaignConfig, CampaignReport, SyntheticConfig,
};

use crate::harness::par_map;
use crate::table::{f2, Table};

/// Compute nodes of the shared machine — wider than the largest job so
/// a BB-blocked queue head leaves free nodes for backfilling (the
/// regime where EASY and BB-aware actually differ).
const NODES: usize = 8;
/// Synthetic campaign length.
const JOBS: usize = 12;
/// Workload seed (arbitrary but fixed: campaigns are deterministic).
const SEED: u64 = 20260806;

/// BB-pressure knob: at 0.5x concurrent requests stay comfortably
/// inside the 25.6 TB pool; at 2x they oversubscribe it.
const BB_SCALE: [f64; 3] = [0.5, 1.0, 2.0];
/// Mean interarrival times, seconds (heavy vs light load).
const ARRIVAL: [f64; 2] = [15.0, 120.0];

fn run_one(policy: BatchPolicy, bb_scale: f64, mean_interarrival: f64) -> CampaignReport {
    let jobs = synthetic_jobs(
        SEED,
        &SyntheticConfig {
            jobs: JOBS,
            mean_interarrival,
            bb_request_scale: bb_scale,
            max_nodes: NODES / 4,
        },
    )
    .expect("synthetic workload");
    let config = CampaignConfig::new(presets::cori(NODES, BbMode::Striped))
        .with_policy(policy)
        .with_platform_label("cori:striped");
    run_campaign(&config, &jobs).expect("campaign completes")
}

/// Builds the policy x BB-pressure x arrival-rate table.
pub fn run() -> Vec<Table> {
    let grid: Vec<(BatchPolicy, f64, f64)> = BB_SCALE
        .iter()
        .flat_map(|&s| {
            ARRIVAL
                .iter()
                .flat_map(move |&a| BatchPolicy::ALL.into_iter().map(move |p| (p, s, a)))
        })
        .collect();
    let reports = par_map(grid.clone(), |&(p, s, a)| run_one(p, s, a));

    let mut t = Table::new(
        "Campaign scheduling: policy x BB pressure x arrival rate, 12 synthetic jobs on 8-node Cori striped",
        &[
            "bb scale",
            "mean interarrival (s)",
            "policy",
            "mean wait (s)",
            "max wait (s)",
            "mean bounded slowdown",
            "makespan (s)",
            "node util",
            "bb util",
            "dominant block",
        ],
    );
    for ((p, s, a), r) in grid.iter().zip(&reports) {
        t.push_row(vec![
            format!("{s:.1}x"),
            f2(*a),
            p.label().into(),
            f2(r.mean_wait),
            f2(r.max_wait),
            format!("{:.3}", r.mean_bounded_slowdown),
            f2(r.makespan),
            format!("{:.1}%", r.node_utilization * 100.0),
            format!("{:.1}%", r.bb_utilization * 100.0),
            r.dominant_block().into(),
        ]);
    }

    // The headline comparison: the cell where the policies split.
    let pick = |policy: BatchPolicy| {
        grid.iter()
            .zip(&reports)
            .find(|((p, s, a), _)| *p == policy && *s == BB_SCALE[1] && *a == ARRIVAL[0])
            .map(|(_, r)| r.mean_bounded_slowdown)
            .unwrap()
    };
    let (fcfs, easy, aware, plan) = (
        pick(BatchPolicy::Fcfs),
        pick(BatchPolicy::EasyBackfill),
        pick(BatchPolicy::BbAware),
        pick(BatchPolicy::Plan),
    );
    t.note(format!(
        "at {:.1}x BB pressure / {:.0}s interarrivals the mean bounded slowdown is {:.3} (fcfs) vs {:.3} (easy) vs {:.3} (bb-aware) vs {:.3} (plan): EASY's node-only backfilling lets queued jobs steal burst-buffer capacity the blocked head needs, planning BB as a second schedulable resource protects the head's reservation, and simulating candidate admission orders forward recovers whatever reordering slack is left (arXiv:2109.00082)",
        BB_SCALE[1], ARRIVAL[0], fcfs, easy, aware, plan,
    ));
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_experiment_builds_a_full_grid() {
        let tables = run();
        assert_eq!(tables.len(), 1);
        // 3 scales x 2 arrival rates x 4 policies.
        assert_eq!(tables[0].rows.len(), 24);
    }

    #[test]
    fn plan_never_loses_to_bb_aware_on_the_grid() {
        // The acceptance bar: at nominal (1x) BB pressure the plan
        // policy's mean bounded slowdown must be <= greedy BB-aware's
        // on this sweep, for both arrival rates.
        for &a in &ARRIVAL {
            let aware = run_one(BatchPolicy::BbAware, BB_SCALE[1], a);
            let plan = run_one(BatchPolicy::Plan, BB_SCALE[1], a);
            assert!(
                plan.mean_bounded_slowdown <= aware.mean_bounded_slowdown + 1e-9,
                "plan {} > bb-aware {} at interarrival {}",
                plan.mean_bounded_slowdown,
                aware.mean_bounded_slowdown,
                a
            );
        }
    }

    #[test]
    fn bb_aware_beats_fcfs_under_bb_pressure() {
        let fcfs = run_one(BatchPolicy::Fcfs, BB_SCALE[2], ARRIVAL[0]);
        let aware = run_one(BatchPolicy::BbAware, BB_SCALE[2], ARRIVAL[0]);
        assert!(
            aware.mean_bounded_slowdown < fcfs.mean_bounded_slowdown,
            "bb-aware {} !< fcfs {}",
            aware.mean_bounded_slowdown,
            fcfs.mean_bounded_slowdown
        );
    }
}
