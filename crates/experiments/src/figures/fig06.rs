//! Figure 6: Resample/Combine execution time vs. cores per task (1
//! pipeline, all input files staged into the BB).
//!
//! Paper findings to reproduce: Resample benefits from parallelism up to
//! ~8 cores on the shared implementation and ~16 on the on-node one, then
//! plateaus; Combine does not benefit from added cores (its single-output
//! merge is synchronization-bound); the ordering between configurations
//! does not depend on the core count.

use wfbb_calibration::measured::CORE_COUNTS;
use wfbb_storage::PlacementPolicy;
use wfbb_workloads::SwarpConfig;

use crate::harness::{emulate_mean, paper_scenarios, par_map, simulate, Scenario};
use crate::table::{f2, Table};

const REPS: u64 = 3;

fn point(scenario: &Scenario, cores: usize, reps: u64) -> (f64, f64, f64, f64) {
    let wf = SwarpConfig::new(1).with_cores_per_task(cores).build();
    let policy = PlacementPolicy::AllBb;
    let measured = emulate_mean(&scenario.platform, &wf, &policy, reps);
    let simulated = simulate(&scenario.platform, &wf, &policy);
    (
        measured.category("resample"),
        simulated.category("resample"),
        measured.category("combine"),
        simulated.category("combine"),
    )
}

/// Builds the Figure 6 table.
pub fn run() -> Vec<Table> {
    let scenarios = paper_scenarios(1);
    let grid: Vec<(usize, usize)> = scenarios
        .iter()
        .enumerate()
        .flat_map(|(i, _)| CORE_COUNTS.iter().map(move |&c| (i, c)))
        .collect();
    let results = par_map(grid.clone(), |&(i, c)| point(&scenarios[i], c, REPS));

    let mut t = Table::new(
        "Figure 6: task execution time vs. cores per task (all files in BB)",
        &[
            "config",
            "cores",
            "resample measured (s)",
            "resample simulated (s)",
            "combine measured (s)",
            "combine simulated (s)",
        ],
    );
    for ((i, c), (rm, rs, cm, cs)) in grid.iter().zip(&results) {
        t.push_row(vec![
            scenarios[*i].label.into(),
            c.to_string(),
            f2(*rm),
            f2(*rs),
            f2(*cm),
            f2(*cs),
        ]);
    }

    // Measured Combine flatness: improvement from 8 to 32 cores.
    let find = |label: &str, c: usize| {
        grid.iter()
            .position(|&(i, gc)| scenarios[i].label == label && gc == c)
            .map(|k| results[k])
            .expect("grid point exists")
    };
    let (_, _, cm8, _) = find("private", 8);
    let (_, _, cm32, _) = find("private", 32);
    t.note(format!(
        "measured Combine 8 -> 32 cores (private): {:.2}s -> {:.2}s (paper: Combine does not benefit from parallelism)",
        cm8, cm32
    ));
    let (rm1, _, _, _) = find("on-node", 1);
    let (rm16, _, _, _) = find("on-node", 16);
    let (rm32, _, _, _) = find("on-node", 32);
    t.note(format!(
        "measured Resample on-node: {:.2}s @1 core, {:.2}s @16, {:.2}s @32 (paper: plateau around 16 cores)",
        rm1, rm16, rm32
    ));
    t.note("simulated times keep improving with cores: the perfect-speedup assumption of Eq. (4), as in the paper's model");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_combine_benefits_less_from_cores_than_resample() {
        let scenarios = paper_scenarios(1);
        let (rm4, _, cm4, _) = point(&scenarios[0], 4, 1);
        let (rm32, _, cm32, _) = point(&scenarios[0], 32, 1);
        let resample_gain = rm4 / rm32;
        let combine_gain = cm4 / cm32;
        // The paper's Figure 6: Combine "does not benefit from increased
        // parallelism" the way Resample does.
        assert!(
            combine_gain < resample_gain,
            "combine gain {combine_gain} must be below resample gain {resample_gain}"
        );
    }

    #[test]
    fn simulated_resample_scales_down_with_cores() {
        let scenarios = paper_scenarios(1);
        let (_, rs1, _, _) = point(&scenarios[2], 1, 1);
        let (_, rs16, _, _) = point(&scenarios[2], 16, 1);
        assert!(rs16 < rs1 / 4.0, "resample should scale: {rs1} -> {rs16}");
    }

    #[test]
    fn config_ordering_is_core_count_independent() {
        let scenarios = paper_scenarios(1);
        for cores in [1, 32] {
            let (_, p, _, _) = point(&scenarios[0], cores, 1);
            let (_, s, _, _) = point(&scenarios[1], cores, 1);
            let (_, o, _, _) = point(&scenarios[2], cores, 1);
            assert!(s > p, "striped slower than private at {cores} cores");
            assert!(p > o, "private slower than on-node at {cores} cores");
        }
    }
}
