//! Accuracy metrics.
//!
//! The paper quantifies simulator accuracy as the average error between
//! measured and simulated makespans across a parameter sweep (e.g. 5.6 %
//! for the private mode in Figure 10). These helpers compute the same
//! statistics for our measured-vs-simulated comparisons.

/// Relative error `|predicted − reference| / reference`.
///
/// # Panics
/// Panics if `reference` is zero or either value is not finite.
pub fn relative_error(reference: f64, predicted: f64) -> f64 {
    assert!(
        reference.is_finite() && predicted.is_finite(),
        "errors need finite inputs, got {reference} and {predicted}"
    );
    assert!(
        reference != 0.0,
        "relative error undefined for zero reference"
    );
    ((predicted - reference) / reference).abs()
}

/// Mean absolute percentage error between two equal-length series, in
/// percent (the paper's headline accuracy number).
///
/// # Panics
/// Panics if the series have different lengths or are empty.
pub fn mean_absolute_percentage_error(reference: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(
        reference.len(),
        predicted.len(),
        "series must have equal length"
    );
    assert!(!reference.is_empty(), "series must be non-empty");
    let sum: f64 = reference
        .iter()
        .zip(predicted)
        .map(|(&r, &p)| relative_error(r, p))
        .sum();
    100.0 * sum / reference.len() as f64
}

/// Mean and sample standard deviation of a series.
///
/// # Panics
/// Panics on an empty series.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    assert!(!values.is_empty(), "mean_std needs at least one value");
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() == 1 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

/// Coefficient of variation (std / mean) of a series — the stability
/// statistic behind the paper's Figure 8 (striped-mode runs vary by ~15 %).
pub fn coefficient_of_variation(values: &[f64]) -> f64 {
    let (mean, std) = mean_std(values);
    if mean != 0.0 {
        std / mean
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_is_symmetric_in_sign() {
        assert!((relative_error(10.0, 11.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(10.0, 9.0) - 0.1).abs() < 1e-12);
        assert_eq!(relative_error(5.0, 5.0), 0.0);
    }

    #[test]
    fn mape_averages_percentages() {
        let reference = [10.0, 20.0];
        let predicted = [11.0, 18.0]; // 10 % and 10 %
        assert!((mean_absolute_percentage_error(&reference, &predicted) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - (32.0f64 / 7.0).sqrt()).abs() < 1e-9);
        assert_eq!(mean_std(&[3.0]), (3.0, 0.0));
    }

    #[test]
    fn cv_is_relative_spread() {
        let cv = coefficient_of_variation(&[90.0, 100.0, 110.0]);
        assert!(cv > 0.05 && cv < 0.15);
        assert_eq!(coefficient_of_variation(&[5.0, 5.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mape_rejects_mismatched_series() {
        let _ = mean_absolute_percentage_error(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "zero reference")]
    fn relative_error_rejects_zero_reference() {
        let _ = relative_error(0.0, 1.0);
    }
}
