//! Regenerates the paper's fig04 data; see `wfbb_experiments::figures`.
fn main() {
    wfbb_experiments::run_and_save("fig04");
}
