//! Amdahl's Law speedup model — the paper's Equation (2).
//!
//! The execution time of task `i` on `p` cores is
//!
//! ```text
//! T_i^c(p) = α_i · T_i^c(1) + (1 − α_i) · T_i^c(1) / p
//! ```
//!
//! where `α_i` is the fraction of the sequential execution that cannot be
//! parallelized. The paper's simulation runs use the perfect-speedup special
//! case `α = 0` (Equation (4)); the measurement emulator uses non-zero `α`
//! values (e.g. for Combine, whose synchronization-heavy merge does not
//! scale — Figure 6).

/// Parallel execution time under Amdahl's Law (Equation (2)).
///
/// # Panics
/// Panics if `p == 0`, `alpha` is outside `[0, 1]`, or `seq_time` is not
/// finite and non-negative.
pub fn amdahl_time(seq_time: f64, p: usize, alpha: f64) -> f64 {
    assert!(p >= 1, "core count must be at least 1");
    assert!(
        (0.0..=1.0).contains(&alpha),
        "Amdahl serial fraction must be in [0, 1], got {alpha}"
    );
    assert!(
        seq_time.is_finite() && seq_time >= 0.0,
        "sequential time must be finite and non-negative, got {seq_time}"
    );
    alpha * seq_time + (1.0 - alpha) * seq_time / p as f64
}

/// Speedup `T(1) / T(p)` under Amdahl's Law.
pub fn amdahl_speedup(p: usize, alpha: f64) -> f64 {
    1.0 / (alpha + (1.0 - alpha) / p as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_core_is_sequential() {
        assert_eq!(amdahl_time(100.0, 1, 0.3), 100.0);
        assert_eq!(amdahl_speedup(1, 0.5), 1.0);
    }

    #[test]
    fn perfect_speedup_divides_by_cores() {
        assert_eq!(amdahl_time(100.0, 4, 0.0), 25.0);
        assert_eq!(amdahl_speedup(8, 0.0), 8.0);
    }

    #[test]
    fn fully_serial_task_never_speeds_up() {
        assert_eq!(amdahl_time(100.0, 32, 1.0), 100.0);
        assert_eq!(amdahl_speedup(32, 1.0), 1.0);
    }

    #[test]
    fn speedup_is_bounded_by_inverse_alpha() {
        // lim p→∞ speedup = 1/α.
        let s = amdahl_speedup(1_000_000, 0.25);
        assert!(s < 4.0);
        assert!(s > 3.99);
    }

    #[test]
    fn time_matches_speedup() {
        let seq = 120.0;
        for p in [1, 2, 4, 8, 32] {
            for alpha in [0.0, 0.1, 0.5, 1.0] {
                let t = amdahl_time(seq, p, alpha);
                let s = amdahl_speedup(p, alpha);
                assert!((seq / t - s).abs() < 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_cores_rejected() {
        let _ = amdahl_time(1.0, 0, 0.0);
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn alpha_out_of_range_rejected() {
        let _ = amdahl_time(1.0, 2, 1.5);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// More cores never slow a task down, and time is monotone in α.
            #[test]
            fn monotonicity(
                seq in 0.0f64..1e6,
                p in 1usize..512,
                alpha in 0.0f64..1.0,
            ) {
                let t1 = amdahl_time(seq, p, alpha);
                let t2 = amdahl_time(seq, p + 1, alpha);
                prop_assert!(t2 <= t1 + 1e-9);
                let ta = amdahl_time(seq, p, (alpha * 0.5).min(1.0));
                prop_assert!(ta <= t1 + 1e-9);
            }

            /// Time is always between seq/p (perfect) and seq (serial).
            #[test]
            fn bounded_by_extremes(
                seq in 0.0f64..1e6,
                p in 1usize..512,
                alpha in 0.0f64..1.0,
            ) {
                let t = amdahl_time(seq, p, alpha);
                prop_assert!(t >= seq / p as f64 - 1e-9);
                prop_assert!(t <= seq + 1e-9);
            }
        }
    }
}
