//! Typed identifiers for workflow entities.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense handle to a task within one [`Workflow`](crate::Workflow).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub(crate) u32);

impl TaskId {
    /// Dense index of this task.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `TaskId` from a raw index (test/serialization helper).
    pub fn from_index(index: usize) -> Self {
        TaskId(u32::try_from(index).expect("task index overflows u32"))
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Dense handle to a file within one [`Workflow`](crate::Workflow).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(pub(crate) u32);

impl FileId {
    /// Dense index of this file.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `FileId` from a raw index (test/serialization helper).
    pub fn from_index(index: usize) -> Self {
        FileId(u32::try_from(index).expect("file index overflows u32"))
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_indices() {
        assert_eq!(TaskId::from_index(3).index(), 3);
        assert_eq!(FileId::from_index(9).index(), 9);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(format!("{}", TaskId::from_index(1)), "T1");
        assert_eq!(format!("{}", FileId::from_index(2)), "F2");
    }
}
