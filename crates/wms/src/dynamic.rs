//! Dynamic (runtime) data placement.
//!
//! Static placement plans decide every file's tier before execution; the
//! executor's only runtime freedom is spilling to the PFS when a BB
//! device is full — effectively first-come-first-served occupancy. A
//! [`DynamicPlacer`] instead decides each write's tier *at write time*,
//! seeing live BB occupancy, which lets it keep headroom for valuable
//! files instead of letting whoever writes first win. This is the
//! "data placement strategies" design space the paper's conclusion
//! proposes exploring, extended from static to online decisions.

use wfbb_storage::Tier;
use wfbb_workflow::{FileId, TaskId, Workflow};

/// Everything a placer may consult when deciding a write's tier.
#[derive(Debug)]
pub struct PlacementContext<'a> {
    /// The workflow being executed.
    pub workflow: &'a Workflow,
    /// The file about to be written.
    pub file: FileId,
    /// The writing task.
    pub task: TaskId,
    /// The compute node the writer runs on.
    pub node: usize,
    /// Current bytes stored on each BB device.
    pub bb_used: &'a [f64],
    /// Capacity of one BB device, bytes.
    pub bb_capacity: f64,
}

impl PlacementContext<'_> {
    /// Total BB occupancy across devices, bytes.
    pub fn total_used(&self) -> f64 {
        self.bb_used.iter().sum()
    }

    /// Total BB capacity across devices, bytes.
    pub fn total_capacity(&self) -> f64 {
        self.bb_capacity * self.bb_used.len() as f64
    }

    /// Overall fill fraction of the burst buffer, in `[0, 1]`.
    pub fn fill_fraction(&self) -> f64 {
        let cap = self.total_capacity();
        if cap > 0.0 {
            (self.total_used() / cap).clamp(0.0, 1.0)
        } else {
            1.0
        }
    }

    /// Number of tasks that will read the file being placed.
    pub fn consumer_count(&self) -> usize {
        self.workflow.consumers(self.file).len()
    }
}

/// An online tier decision for every written file.
///
/// The returned tier is a *request*: if the BB device is full, the
/// executor still spills to the PFS.
pub trait DynamicPlacer {
    /// Decides the tier of the write described by `ctx`.
    fn place(&mut self, ctx: &PlacementContext<'_>) -> Tier;
}

/// Always requests the burst buffer (equivalent to a static all-BB plan
/// plus first-come-first-served spilling).
#[derive(Debug, Clone, Default)]
pub struct GreedyBb;

impl DynamicPlacer for GreedyBb {
    fn place(&mut self, _ctx: &PlacementContext<'_>) -> Tier {
        Tier::BurstBuffer
    }
}

/// Stops using the BB for *cold* files once occupancy passes a watermark,
/// keeping the remaining headroom for files with at least `hot_consumers`
/// readers.
///
/// Below the watermark every file gets the BB; above it, only hot files
/// do. This protects high-reuse files from being crowded out by
/// early-written single-reader data.
#[derive(Debug, Clone)]
pub struct WatermarkPlacer {
    /// Fill fraction beyond which cold files go to the PFS.
    pub watermark: f64,
    /// Minimum consumer count for a file to qualify as hot.
    pub hot_consumers: usize,
}

impl Default for WatermarkPlacer {
    fn default() -> Self {
        WatermarkPlacer {
            watermark: 0.5,
            hot_consumers: 2,
        }
    }
}

impl DynamicPlacer for WatermarkPlacer {
    fn place(&mut self, ctx: &PlacementContext<'_>) -> Tier {
        if ctx.fill_fraction() < self.watermark || ctx.consumer_count() >= self.hot_consumers {
            Tier::BurstBuffer
        } else {
            Tier::Pfs
        }
    }
}

/// Requests the BB only for files below a size cutoff (latency-sensitive
/// small files benefit most per byte of scarce BB capacity).
#[derive(Debug, Clone)]
pub struct SmallFilePlacer {
    /// Maximum size, bytes, for BB placement.
    pub max_bytes: f64,
}

impl DynamicPlacer for SmallFilePlacer {
    fn place(&mut self, ctx: &PlacementContext<'_>) -> Tier {
        if ctx.workflow.file(ctx.file).size <= self.max_bytes {
            Tier::BurstBuffer
        } else {
            Tier::Pfs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfbb_workflow::WorkflowBuilder;

    fn workflow() -> Workflow {
        let mut b = WorkflowBuilder::new("dyn");
        let cold = b.add_file("cold", 100.0);
        let hot = b.add_file("hot", 10.0);
        let o1 = b.add_file("o1", 1.0);
        let o2 = b.add_file("o2", 1.0);
        b.task("w").outputs([cold, hot]).add();
        b.task("r1").input(hot).output(o1).add();
        b.task("r2").input(hot).output(o2).add();
        b.build().unwrap()
    }

    fn ctx<'a>(wf: &'a Workflow, file: &str, used: &'a [f64]) -> PlacementContext<'a> {
        PlacementContext {
            workflow: wf,
            file: wf.file_by_name(file).unwrap().id,
            task: wf.task_by_name("w").unwrap().id,
            node: 0,
            bb_used: used,
            bb_capacity: 100.0,
        }
    }

    #[test]
    fn context_accessors() {
        let wf = workflow();
        let used = [30.0, 50.0];
        let c = ctx(&wf, "hot", &used);
        assert_eq!(c.total_used(), 80.0);
        assert_eq!(c.total_capacity(), 200.0);
        assert_eq!(c.fill_fraction(), 0.4);
        assert_eq!(c.consumer_count(), 2);
    }

    #[test]
    fn greedy_always_says_bb() {
        let wf = workflow();
        let used = [99.0];
        assert_eq!(GreedyBb.place(&ctx(&wf, "cold", &used)), Tier::BurstBuffer);
    }

    #[test]
    fn watermark_protects_headroom_for_hot_files() {
        let wf = workflow();
        let mut placer = WatermarkPlacer {
            watermark: 0.5,
            hot_consumers: 2,
        };
        // Below watermark: everything goes to the BB.
        let low = [10.0];
        assert_eq!(placer.place(&ctx(&wf, "cold", &low)), Tier::BurstBuffer);
        // Above watermark: cold (1 consumer... cold has 0 consumers) → PFS,
        // hot (2 consumers) → BB.
        let high = [80.0];
        assert_eq!(placer.place(&ctx(&wf, "cold", &high)), Tier::Pfs);
        assert_eq!(placer.place(&ctx(&wf, "hot", &high)), Tier::BurstBuffer);
    }

    #[test]
    fn small_file_placer_uses_a_size_cutoff() {
        let wf = workflow();
        let mut placer = SmallFilePlacer { max_bytes: 50.0 };
        let used = [0.0];
        assert_eq!(placer.place(&ctx(&wf, "cold", &used)), Tier::Pfs);
        assert_eq!(placer.place(&ctx(&wf, "hot", &used)), Tier::BurstBuffer);
    }

    #[test]
    fn empty_bb_counts_as_full_for_fill_fraction() {
        let wf = workflow();
        let used: [f64; 0] = [];
        let c = PlacementContext {
            workflow: &wf,
            file: wf.file_by_name("hot").unwrap().id,
            task: wf.task_by_name("w").unwrap().id,
            node: 0,
            bb_used: &used,
            bb_capacity: 100.0,
        };
        assert_eq!(c.fill_fraction(), 1.0, "no devices means no headroom");
    }
}
