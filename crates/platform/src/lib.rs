//! # wfbb-platform — HPC platform descriptions
//!
//! Describes execution platforms in the way the paper's simulator consumes
//! them: compute nodes (cores, per-core speed), the interconnect, a parallel
//! file system (PFS), and a burst buffer (BB) in one of the two deployed
//! architectures:
//!
//! * **Shared** (remote) burst buffers on dedicated BB nodes, reached over
//!   the interconnect — Cori at NERSC (Cray DataWarp), with *private* and
//!   *striped* allocation modes;
//! * **On-node** (local) burst buffers — one NVMe SSD per compute node —
//!   Summit at ORNL.
//!
//! [`PlatformSpec`] is a plain serializable description (our JSON equivalent
//! of the paper's XML platform files). [`PlatformSpec::instantiate`] turns
//! it into concrete simulation resources inside a `wfbb-simcore` engine and
//! returns a [`PlatformInstance`] mapping logical components (node CPUs,
//! NICs, BB disks, ...) to resource handles.
//!
//! The [`presets`] module provides the calibrated Cori and Summit
//! descriptions of the paper's Table I.

#![deny(missing_docs)]

pub mod instance;
pub mod latency;
pub mod presets;
pub mod spec;
pub mod units;

pub use instance::{BbInstance, PlatformInstance};
pub use latency::LatencyProfile;
pub use spec::{BbArchitecture, BbMode, PlatformError, PlatformSpec};
