//! The paper's task calibration model — Equations (1) through (4).
//!
//! The simulator needs, for each task, the raw sequential compute time
//! `T_i^c(1)` (excluding I/O). What experiments provide is the *observed*
//! execution time `T_i(p)` on `p` cores and the observed fraction of that
//! time spent in I/O, `λ_i^io`. The model bridges the two:
//!
//! ```text
//! (1)  T_i^c(p) = (1 − λ_i^io) · T_i(p)
//! (2)  T_i^c(p) = α_i·T_i^c(1) + (1 − α_i)·T_i^c(1)/p       (Amdahl)
//! (3)  T_i^c(1) = (1 − λ_i^io)·T_i(p) / (α_i + (1 − α_i)/p)
//! (4)  T_i^c(1) = p·(1 − λ_i^io)·T_i(p)                     (α_i = 0)
//! ```

pub use wfbb_workflow::amdahl_time;

/// Equation (1): the compute part of an observed execution time.
pub fn compute_time_from_observed(observed: f64, lambda_io: f64) -> f64 {
    validate_lambda(lambda_io);
    validate_time(observed);
    (1.0 - lambda_io) * observed
}

/// Equation (4): raw sequential compute time under the paper's
/// perfect-speedup assumption.
pub fn sequential_compute_time(observed: f64, cores: usize, lambda_io: f64) -> f64 {
    assert!(cores >= 1, "core count must be at least 1");
    cores as f64 * compute_time_from_observed(observed, lambda_io)
}

/// Equation (3): raw sequential compute time under Amdahl's Law with
/// serial fraction `alpha`.
pub fn sequential_compute_time_amdahl(
    observed: f64,
    cores: usize,
    lambda_io: f64,
    alpha: f64,
) -> f64 {
    assert!(cores >= 1, "core count must be at least 1");
    assert!(
        (0.0..=1.0).contains(&alpha),
        "Amdahl serial fraction must be in [0, 1], got {alpha}"
    );
    compute_time_from_observed(observed, lambda_io) / (alpha + (1.0 - alpha) / cores as f64)
}

fn validate_lambda(lambda_io: f64) {
    assert!(
        (0.0..=1.0).contains(&lambda_io),
        "I/O fraction must be in [0, 1], got {lambda_io}"
    );
}

fn validate_time(observed: f64) {
    assert!(
        observed.is_finite() && observed >= 0.0,
        "observed time must be finite and non-negative, got {observed}"
    );
}

/// Calibration record for one task category: the observation and the
/// derived model inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibratedTask {
    /// Task category this calibration describes.
    pub category: &'static str,
    /// Observed execution time `T_i(p)`, seconds.
    pub observed_time: f64,
    /// Cores `p` used for the observation.
    pub observed_cores: usize,
    /// Observed I/O fraction `λ_i^io`.
    pub lambda_io: f64,
    /// Amdahl serial fraction used by the *measurement emulator* (the
    /// paper's simulator itself assumes 0).
    pub real_alpha: f64,
}

impl CalibratedTask {
    /// Raw sequential compute time via Equation (4).
    pub fn sequential_time(&self) -> f64 {
        sequential_compute_time(self.observed_time, self.observed_cores, self.lambda_io)
    }

    /// Raw sequential compute time via Equation (3) with `self.real_alpha`.
    pub fn sequential_time_amdahl(&self) -> f64 {
        sequential_compute_time_amdahl(
            self.observed_time,
            self.observed_cores,
            self.lambda_io,
            self.real_alpha,
        )
    }

    /// Platform-independent compute work in flops, given the per-core
    /// speed (GFlop/s) of the platform the observation was made on.
    pub fn flops(&self, gflops_per_core: f64) -> f64 {
        self.sequential_time() * gflops_per_core * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_removes_io_fraction() {
        assert!((compute_time_from_observed(10.0, 0.2) - 8.0).abs() < 1e-12);
        assert_eq!(compute_time_from_observed(10.0, 0.0), 10.0);
        assert_eq!(compute_time_from_observed(10.0, 1.0), 0.0);
    }

    #[test]
    fn eq4_scales_by_cores() {
        // T(32) = 8 s with λ = 0.203: T^c(1) = 32 · 0.797 · 8.
        let t = sequential_compute_time(8.0, 32, 0.203);
        assert!((t - 32.0 * 0.797 * 8.0).abs() < 1e-9);
    }

    #[test]
    fn eq3_reduces_to_eq4_when_alpha_zero() {
        let a = sequential_compute_time(8.0, 32, 0.203);
        let b = sequential_compute_time_amdahl(8.0, 32, 0.203, 0.0);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn eq3_with_full_serial_fraction_is_just_compute_time() {
        // α = 1: the task never sped up, so T^c(1) = T^c(p).
        let t = sequential_compute_time_amdahl(8.0, 32, 0.25, 1.0);
        assert!((t - 6.0).abs() < 1e-9);
    }

    #[test]
    fn round_trip_through_amdahl() {
        // Deriving T^c(1) by Eq (3) and re-applying Eq (2) must reproduce
        // the observed compute time for any α.
        for alpha in [0.0, 0.1, 0.5, 0.9] {
            let observed = 12.0;
            let (p, lambda) = (16, 0.3);
            let seq = sequential_compute_time_amdahl(observed, p, lambda, alpha);
            let back = amdahl_time(seq, p, alpha);
            let expected = compute_time_from_observed(observed, lambda);
            assert!(
                (back - expected).abs() < 1e-9,
                "alpha {alpha}: {back} != {expected}"
            );
        }
    }

    #[test]
    fn calibrated_task_derivations_agree() {
        let c = CalibratedTask {
            category: "resample",
            observed_time: 8.0,
            observed_cores: 32,
            lambda_io: 0.203,
            real_alpha: 0.1,
        };
        assert!((c.sequential_time() - 32.0 * 0.797 * 8.0).abs() < 1e-9);
        assert!(c.sequential_time_amdahl() < c.sequential_time());
        // flops = seconds × GFlop/s × 1e9.
        let f = c.flops(36.80);
        assert!((f / (c.sequential_time() * 36.80e9) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn invalid_lambda_rejected() {
        let _ = compute_time_from_observed(1.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_cores_rejected() {
        let _ = sequential_compute_time(1.0, 0, 0.1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Eq (3) is monotone decreasing in α (more serial work means
            /// the observed parallel time implies less total work).
            #[test]
            fn eq3_monotone_in_alpha(
                observed in 0.1f64..1e4,
                p in 2usize..128,
                lambda in 0.0f64..0.99,
            ) {
                let mut prev = f64::INFINITY;
                for k in 0..=10 {
                    let alpha = k as f64 / 10.0;
                    let t = sequential_compute_time_amdahl(observed, p, lambda, alpha);
                    prop_assert!(t <= prev + 1e-9);
                    prev = t;
                }
            }

            /// Eq (4) equals Eq (3) at α = 0 everywhere.
            #[test]
            fn eq4_is_special_case(
                observed in 0.0f64..1e4,
                p in 1usize..256,
                lambda in 0.0f64..=1.0,
            ) {
                let a = sequential_compute_time(observed, p, lambda);
                let b = sequential_compute_time_amdahl(observed, p, lambda, 0.0);
                prop_assert!((a - b).abs() <= 1e-9 * a.max(1.0));
            }
        }
    }
}
