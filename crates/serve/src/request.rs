//! The service's job-request model: JSON parsing, validation, and the
//! deterministic canonical input hash that keys the result cache.
//!
//! # Cache soundness
//!
//! The engine is deterministic — the same parsed request produces the
//! same artifact bytes (the snapshot/fork contract of `docs/snapshot.md`
//! pins this) — so caching *parsed, normalized* requests is sound. Two
//! rules keep it that way:
//!
//! 1. **Normalization before hashing.** The hash covers
//!    [`JobRequest::canonical`], a fixed-order rendering of every field
//!    *with defaults applied*, so `{"nodes": 4}` and an omitted
//!    `"nodes"` (default 4) share one cache entry, while any
//!    semantically different field value — seed, policy,
//!    `bb_request_scale`, ... — produces a different key.
//! 2. **No ambient inputs.** Requests may only reference the built-in
//!    workflow generators (`swarp:*`, `genomes:*`) and platform presets.
//!    File paths are rejected at parse time: a file's *content* is
//!    invisible to the hash, so accepting paths would let two different
//!    simulations collide on one key.
//!
//! The hash itself is FNV-1a over the canonical bytes — the same
//! content-keying approach `wfbb_simcore::partition` uses for solver
//! memoization.

use crate::API_VERSION;
use serde_json::Value;
use wfbb_sched::{BatchPolicy, SyntheticConfig, DEFAULT_PLAN_HORIZON};

/// A request the service refuses to run, rendered as a typed `400`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError(pub String);

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for RequestError {}

fn err<T>(msg: impl Into<String>) -> Result<T, RequestError> {
    Err(RequestError(msg.into()))
}

/// A validated, normalized job submission.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Declared `api_version` (must equal [`API_VERSION`]).
    pub api_version: u32,
    /// What to simulate.
    pub kind: JobKind,
}

/// The two job shapes the service runs.
#[derive(Debug, Clone, PartialEq)]
pub enum JobKind {
    /// One workflow on one platform — the `simulate` subcommand over
    /// HTTP.
    Simulate(SimulateRequest),
    /// A multi-tenant batch campaign — the `campaign` subcommand over
    /// HTTP.
    Campaign(CampaignRequest),
}

/// A single-workflow simulation request (defaults match `wfbb simulate`).
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateRequest {
    /// Workflow spec (`swarp:<p>[:<c>]` or `genomes:<c>`; generators
    /// only — see the module docs for why files are rejected).
    pub workflow: String,
    /// Platform preset (`cori`, `cori:private`, `cori:striped`,
    /// `summit`, `generic`).
    pub platform: String,
    /// Compute nodes (default 1).
    pub nodes: usize,
    /// Placement spec (`allbb` | `allpfs` | `fraction:<f>` |
    /// `threshold:<bytes>`; default `allbb`).
    pub placement: String,
    /// Task-to-node scheduler (`affinity` | `least-loaded` |
    /// `round-robin`; default `affinity`).
    pub scheduler: String,
    /// Inline fault spec in the `docs/failure-model.md` grammar
    /// (default empty — fault-free).
    pub faults: String,
    /// Failover policy when a BB namespace dies (`pfs` | `bb`).
    pub failover: String,
    /// Per-task attempt budget under kill faults (default 3).
    pub retries: u32,
}

/// A campaign request (defaults match `wfbb campaign`).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRequest {
    /// Platform preset label.
    pub platform: String,
    /// Machine size in compute nodes (default 4).
    pub nodes: usize,
    /// Admission policy (default `fcfs`).
    pub policy: BatchPolicy,
    /// `plan` policy lookahead, seconds (default 86400).
    pub plan_horizon: f64,
    /// Solver mode (`incremental` | `naive`; default `incremental`).
    pub solver: String,
    /// Partitioned-solver worker threads (default 0 = monolithic).
    pub solver_threads: usize,
    /// Where the jobs come from.
    pub workload: WorkloadSource,
}

/// A campaign's job stream: a seeded synthetic draw or an inline
/// workload document.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSource {
    /// Seeded synthetic campaign ([`wfbb_sched::synthetic_jobs`]).
    Synthetic {
        /// Generator seed.
        seed: u64,
        /// Draw parameters.
        config: SyntheticConfig,
    },
    /// Inline workload text in the `docs/scheduler.md` file format
    /// (the *content* travels in the request, so it is covered by the
    /// cache key — unlike a path, which would not be).
    Inline(String),
}

const PLATFORMS: [&str; 6] = [
    "cori",
    "cori:private",
    "cori:striped",
    "summit",
    "summit:onnode",
    "generic",
];

fn check_keys(obj: &Value, allowed: &[&str], what: &str) -> Result<(), RequestError> {
    let Value::Object(entries) = obj else {
        return err(format!("{what} must be a JSON object, got {}", obj.kind()));
    };
    for (k, _) in entries {
        if !allowed.contains(&k.as_str()) {
            return err(format!("unknown field {k:?} in {what}"));
        }
    }
    Ok(())
}

fn get_str<'v>(obj: &'v Value, key: &str, default: &'v str) -> Result<&'v str, RequestError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_str()
            .ok_or_else(|| RequestError(format!("field {key:?} must be a string"))),
    }
}

fn get_u64(obj: &Value, key: &str, default: u64) -> Result<u64, RequestError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| RequestError(format!("field {key:?} must be a non-negative integer"))),
    }
}

fn get_f64(obj: &Value, key: &str, default: f64) -> Result<f64, RequestError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| RequestError(format!("field {key:?} must be a number"))),
    }
}

fn validate_workflow_spec(spec: &str) -> Result<(), RequestError> {
    wfbb_sched::build_workflow(spec)
        .map(|_| ())
        .map_err(|e| RequestError(format!("bad workflow spec: {e}")))
}

fn validate_platform(spec: &str) -> Result<(), RequestError> {
    if PLATFORMS.contains(&spec) {
        Ok(())
    } else {
        err(format!(
            "unknown platform {spec:?} (presets only: {})",
            PLATFORMS.join(", ")
        ))
    }
}

impl JobRequest {
    /// Parses and validates a JSON request body. Unknown fields are
    /// rejected so client typos fail loudly instead of silently running
    /// a default simulation.
    pub fn parse(body: &[u8]) -> Result<JobRequest, RequestError> {
        let text =
            std::str::from_utf8(body).map_err(|_| RequestError("body is not UTF-8".into()))?;
        let value: Value =
            serde_json::from_str(text).map_err(|e| RequestError(format!("invalid JSON: {e}")))?;
        let api_version = get_u64(&value, "api_version", u64::from(API_VERSION))? as u32;
        if api_version != API_VERSION {
            return err(format!(
                "unsupported api_version {api_version} (this server speaks {API_VERSION})"
            ));
        }
        let kind = get_str(&value, "type", "")?;
        match kind {
            "simulate" => Self::parse_simulate(&value),
            "campaign" => Self::parse_campaign(&value),
            "" => err("missing required field \"type\" (simulate | campaign)"),
            other => err(format!("unknown job type {other:?} (simulate | campaign)")),
        }
    }

    fn parse_simulate(value: &Value) -> Result<JobRequest, RequestError> {
        check_keys(
            value,
            &[
                "api_version",
                "type",
                "workflow",
                "platform",
                "nodes",
                "placement",
                "scheduler",
                "faults",
                "failover",
                "retries",
            ],
            "a simulate request",
        )?;
        let workflow = get_str(value, "workflow", "")?;
        if workflow.is_empty() {
            return err("simulate request needs a \"workflow\" spec");
        }
        validate_workflow_spec(workflow)?;
        let platform = get_str(value, "platform", "")?;
        if platform.is_empty() {
            return err("simulate request needs a \"platform\" preset");
        }
        validate_platform(platform)?;
        let nodes = get_u64(value, "nodes", 1)? as usize;
        if nodes == 0 {
            return err("\"nodes\" must be >= 1");
        }
        let placement = get_str(value, "placement", "allbb")?;
        crate::runner::parse_placement(placement).map_err(RequestError)?;
        let scheduler = get_str(value, "scheduler", "affinity")?;
        crate::runner::parse_scheduler(scheduler).map_err(RequestError)?;
        let faults = get_str(value, "faults", "")?;
        if !faults.is_empty() {
            wfbb_wms::FaultSpec::parse(faults)
                .map_err(|e| RequestError(format!("bad fault spec: {e}")))?;
        }
        let failover = get_str(value, "failover", "pfs")?;
        if !matches!(failover, "pfs" | "bb") {
            return err(format!("unknown failover {failover:?} (pfs | bb)"));
        }
        let retries = get_u64(value, "retries", 3)? as u32;
        Ok(JobRequest {
            api_version: API_VERSION,
            kind: JobKind::Simulate(SimulateRequest {
                workflow: workflow.to_string(),
                platform: platform.to_string(),
                nodes,
                placement: placement.to_string(),
                scheduler: scheduler.to_string(),
                faults: faults.to_string(),
                failover: failover.to_string(),
                retries,
            }),
        })
    }

    fn parse_campaign(value: &Value) -> Result<JobRequest, RequestError> {
        check_keys(
            value,
            &[
                "api_version",
                "type",
                "platform",
                "nodes",
                "policy",
                "plan_horizon",
                "solver",
                "solver_threads",
                "workload",
            ],
            "a campaign request",
        )?;
        let platform = get_str(value, "platform", "")?;
        if platform.is_empty() {
            return err("campaign request needs a \"platform\" preset");
        }
        validate_platform(platform)?;
        let nodes = get_u64(value, "nodes", 4)? as usize;
        if nodes == 0 {
            return err("\"nodes\" must be >= 1");
        }
        let policy_label = get_str(value, "policy", "fcfs")?;
        let policy = BatchPolicy::parse(policy_label).ok_or_else(|| {
            RequestError(format!(
                "unknown policy {policy_label:?} (fcfs | easy | bb-aware | plan)"
            ))
        })?;
        let plan_horizon = get_f64(value, "plan_horizon", DEFAULT_PLAN_HORIZON)?;
        if !plan_horizon.is_finite() || plan_horizon <= 0.0 {
            return err("\"plan_horizon\" must be a positive number");
        }
        let solver = get_str(value, "solver", "incremental")?;
        if !matches!(solver, "incremental" | "naive") {
            return err(format!("unknown solver {solver:?} (incremental | naive)"));
        }
        let solver_threads = get_u64(value, "solver_threads", 0)? as usize;

        let workload = match value.get("workload") {
            None => WorkloadSource::Synthetic {
                seed: 1,
                config: SyntheticConfig {
                    max_nodes: nodes,
                    ..SyntheticConfig::default()
                },
            },
            Some(w) => {
                let wtype = get_str(w, "type", "synthetic")?;
                match wtype {
                    "synthetic" => {
                        check_keys(
                            w,
                            &[
                                "type",
                                "jobs",
                                "seed",
                                "mean_interarrival",
                                "bb_request_scale",
                                "max_nodes",
                            ],
                            "a synthetic workload",
                        )?;
                        let jobs = get_u64(w, "jobs", 20)? as usize;
                        if jobs == 0 {
                            return err("\"jobs\" must be >= 1");
                        }
                        let seed = get_u64(w, "seed", 1)?;
                        let mean_interarrival = get_f64(w, "mean_interarrival", 30.0)?;
                        let bb_request_scale = get_f64(w, "bb_request_scale", 1.0)?;
                        let max_nodes = get_u64(w, "max_nodes", nodes as u64)? as usize;
                        WorkloadSource::Synthetic {
                            seed,
                            config: SyntheticConfig {
                                jobs,
                                mean_interarrival,
                                bb_request_scale,
                                max_nodes,
                            },
                        }
                    }
                    "inline" => {
                        check_keys(w, &["type", "text"], "an inline workload")?;
                        let text = get_str(w, "text", "")?;
                        if text.is_empty() {
                            return err("inline workload needs a non-empty \"text\"");
                        }
                        wfbb_sched::parse_workload(text)
                            .map_err(|e| RequestError(format!("bad workload: {e}")))?;
                        WorkloadSource::Inline(text.to_string())
                    }
                    other => err(format!(
                        "unknown workload type {other:?} (synthetic | inline)"
                    ))?,
                }
            }
        };
        Ok(JobRequest {
            api_version: API_VERSION,
            kind: JobKind::Campaign(CampaignRequest {
                platform: platform.to_string(),
                nodes,
                policy,
                plan_horizon,
                solver: solver.to_string(),
                solver_threads,
                workload,
            }),
        })
    }

    /// The canonical normalized rendering the cache key hashes: every
    /// field in a fixed order with defaults applied, so syntactically
    /// different but semantically identical requests normalize to one
    /// string.
    pub fn canonical(&self) -> String {
        match &self.kind {
            JobKind::Simulate(s) => format!(
                "v{}|simulate|workflow={}|platform={}|nodes={}|placement={}|scheduler={}\
                 |faults={}|failover={}|retries={}",
                self.api_version,
                s.workflow,
                s.platform,
                s.nodes,
                s.placement,
                s.scheduler,
                s.faults,
                s.failover,
                s.retries
            ),
            JobKind::Campaign(c) => {
                let workload = match &c.workload {
                    WorkloadSource::Synthetic { seed, config } => format!(
                        "synthetic:seed={},jobs={},mean_interarrival={},bb_request_scale={},max_nodes={}",
                        seed,
                        config.jobs,
                        config.mean_interarrival,
                        config.bb_request_scale,
                        config.max_nodes
                    ),
                    WorkloadSource::Inline(text) => format!("inline:{text}"),
                };
                format!(
                    "v{}|campaign|platform={}|nodes={}|policy={}|plan_horizon={}|solver={}\
                     |solver_threads={}|workload={}",
                    self.api_version,
                    c.platform,
                    c.nodes,
                    c.policy.label(),
                    c.plan_horizon,
                    c.solver,
                    c.solver_threads,
                    workload
                )
            }
        }
    }

    /// FNV-1a over the canonical bytes — the result-cache key.
    pub fn cache_key(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for byte in self.canonical().as_bytes() {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// The cache key as fixed-width hex, used as the job's `input_hash`
    /// in API responses.
    pub fn key_hex(&self) -> String {
        format!("{:016x}", self.cache_key())
    }

    /// Short human-readable label for job listings.
    pub fn label(&self) -> String {
        match &self.kind {
            JobKind::Simulate(s) => format!("simulate {} on {}", s.workflow, s.platform),
            JobKind::Campaign(c) => {
                format!("campaign {} on {}", c.policy.label(), c.platform)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<JobRequest, RequestError> {
        JobRequest::parse(s.as_bytes())
    }

    #[test]
    fn minimal_campaign_request_parses_with_defaults() {
        let r = parse(r#"{"type":"campaign","platform":"cori:striped"}"#).unwrap();
        let JobKind::Campaign(c) = &r.kind else {
            panic!("expected campaign")
        };
        assert_eq!(c.nodes, 4);
        assert_eq!(c.policy, BatchPolicy::Fcfs);
        assert_eq!(c.solver, "incremental");
        let WorkloadSource::Synthetic { seed, config } = &c.workload else {
            panic!("expected synthetic")
        };
        assert_eq!(*seed, 1);
        assert_eq!(config.jobs, 20);
        assert_eq!(config.max_nodes, 4);
    }

    #[test]
    fn defaults_and_explicit_defaults_share_a_key() {
        let implicit = parse(r#"{"type":"campaign","platform":"cori:striped"}"#).unwrap();
        let explicit = parse(
            r#"{"type":"campaign","platform":"cori:striped","nodes":4,"policy":"fcfs",
                "solver":"incremental","solver_threads":0,
                "workload":{"type":"synthetic","jobs":20,"seed":1}}"#,
        )
        .unwrap();
        assert_eq!(implicit.cache_key(), explicit.cache_key());
        assert_eq!(implicit.canonical(), explicit.canonical());
    }

    #[test]
    fn every_field_perturbation_changes_the_key() {
        let base = r#"{"type":"campaign","platform":"cori:striped","nodes":8,"policy":"bb-aware",
            "workload":{"type":"synthetic","jobs":8,"seed":7,"bb_request_scale":1.0}}"#;
        let key = parse(base).unwrap().cache_key();
        for perturbed in [
            base.replace("\"seed\":7", "\"seed\":8"),
            base.replace("bb-aware", "easy"),
            base.replace("\"bb_request_scale\":1.0", "\"bb_request_scale\":2.0"),
            base.replace("\"nodes\":8", "\"nodes\":6"),
            base.replace("\"jobs\":8", "\"jobs\":9"),
            base.replace("cori:striped", "cori:private"),
        ] {
            assert_ne!(parse(&perturbed).unwrap().cache_key(), key, "{perturbed}");
        }
    }

    #[test]
    fn unknown_fields_and_types_are_rejected() {
        assert!(parse(r#"{"type":"campaign","platform":"cori","sede":7}"#).is_err());
        assert!(parse(r#"{"type":"teleport"}"#).is_err());
        assert!(parse(r#"{"platform":"cori"}"#).is_err());
        assert!(parse("{nope").is_err());
        assert!(parse(r#"{"type":"campaign","platform":"cori","api_version":99}"#).is_err());
    }

    #[test]
    fn file_backed_specs_are_rejected() {
        // A path is not a preset...
        assert!(parse(r#"{"type":"campaign","platform":"/tmp/platform.json"}"#).is_err());
        // ...and not a generator spec.
        assert!(
            parse(r#"{"type":"simulate","workflow":"/tmp/wf.json","platform":"summit"}"#).is_err()
        );
    }

    #[test]
    fn simulate_request_validates_sub_specs() {
        let ok = parse(
            r#"{"type":"simulate","workflow":"swarp:2:8","platform":"cori:striped",
                "placement":"fraction:0.5","faults":"bb:0@2","failover":"bb","retries":5}"#,
        )
        .unwrap();
        assert!(ok.canonical().contains("faults=bb:0@2"));
        assert!(parse(
            r#"{"type":"simulate","workflow":"swarp:2","platform":"summit","placement":"magic"}"#
        )
        .is_err());
        assert!(parse(
            r#"{"type":"simulate","workflow":"swarp:2","platform":"summit","faults":"bb:x@y"}"#
        )
        .is_err());
    }

    #[test]
    fn inline_workloads_are_validated_and_content_keyed() {
        let a = parse(
            r#"{"type":"campaign","platform":"cori:striped","workload":{"type":"inline",
                "text":"workflow=swarp:1:8 nodes=2 bb=2e9 walltime=600"}}"#,
        )
        .unwrap();
        let b = parse(
            r#"{"type":"campaign","platform":"cori:striped","workload":{"type":"inline",
                "text":"workflow=swarp:1:8 nodes=2 bb=3e9 walltime=600"}}"#,
        )
        .unwrap();
        assert_ne!(a.cache_key(), b.cache_key());
        assert!(parse(
            r#"{"type":"campaign","platform":"cori","workload":{"type":"inline","text":"garbage"}}"#
        )
        .is_err());
    }
}
