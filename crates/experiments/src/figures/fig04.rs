//! Figure 4: SWarp stage-in time vs. fraction of input files staged into
//! the burst buffer (1 pipeline, 32 cores per task).
//!
//! Paper findings to reproduce: stage-in grows linearly with the staged
//! fraction; the on-node implementation beats the shared one by up to ~5×;
//! the striped mode shows a reproducible anomaly at 75 % (worse than at
//! 100 %); both shared modes show run-to-run variation.

use wfbb_calibration::measured::FRACTIONS;
use wfbb_workloads::SwarpConfig;

use crate::harness::{emulate_mean, fraction_policy, paper_scenarios, par_map, simulate, Scenario};
use crate::table::{f2, pct, Table};

/// Emulator repetitions per point (the paper uses 15; 5 keeps the sweep
/// quick while averaging the noise).
const REPS: u64 = 5;

/// One sweep point.
fn point(scenario: &Scenario, fraction: f64, reps: u64) -> (f64, f64) {
    let wf = SwarpConfig::new(1).build();
    let policy = fraction_policy(fraction);
    let measured = emulate_mean(&scenario.platform, &wf, &policy, reps).stage_in;
    let simulated = simulate(&scenario.platform, &wf, &policy).stage_in;
    (measured, simulated)
}

/// Builds the Figure 4 table.
pub fn run() -> Vec<Table> {
    let scenarios = paper_scenarios(1);
    let grid: Vec<(usize, f64)> = scenarios
        .iter()
        .enumerate()
        .flat_map(|(i, _)| FRACTIONS.iter().map(move |&f| (i, f)))
        .collect();
    let results = par_map(grid.clone(), |&(i, f)| point(&scenarios[i], f, REPS));

    let mut t = Table::new(
        "Figure 4: stage-in time vs. fraction of input files staged into BBs",
        &["config", "staged", "measured (s)", "simulated (s)"],
    );
    let mut at_full = std::collections::HashMap::new();
    let mut striped = std::collections::HashMap::new();
    for ((i, f), (measured, simulated)) in grid.iter().zip(&results) {
        let label = scenarios[*i].label;
        t.push_row(vec![label.into(), pct(*f), f2(*measured), f2(*simulated)]);
        if (*f - 1.0).abs() < 1e-9 {
            at_full.insert(label, *measured);
        }
        if label == "striped" {
            striped.insert((f * 100.0) as u32, *measured);
        }
    }
    let ratio = at_full["private"] / at_full["on-node"];
    t.note(format!(
        "on-node vs shared(private) stage-in at 100%: {:.1}x faster (paper: up to ~5x)",
        ratio
    ));
    t.note(format!(
        "striped anomaly: measured t(75%) = {:.2}s vs t(100%) = {:.2}s (paper: 75% point is anomalously slow)",
        striped[&75], striped[&100]
    ));
    t.note("stage-in grows linearly with the staged fraction in all configurations");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_in_grows_with_fraction_and_summit_wins() {
        let scenarios = paper_scenarios(1);
        // Reduced sweep: endpoints only, 1 rep.
        let private_0 = point(&scenarios[0], 0.0, 1);
        let private_1 = point(&scenarios[0], 1.0, 1);
        let onnode_1 = point(&scenarios[2], 1.0, 1);
        assert!(private_1.1 > private_0.1, "simulated stage-in grows");
        assert!(private_1.0 > private_0.0, "measured stage-in grows");
        assert!(
            private_1.1 / onnode_1.1 > 3.0,
            "on-node stages much faster: {} vs {}",
            private_1.1,
            onnode_1.1
        );
    }
}
