//! # wfbb-experiments — regenerating the paper's tables and figures
//!
//! One module (and one binary) per table/figure of the paper's evaluation.
//! Each experiment produces [`Table`]s: printable as aligned text and
//! writable as CSV into `results/`. The binaries (`fig04` … `fig14`,
//! `table1`) are thin wrappers over [`figures::by_name`].
//!
//! "Measured" columns come from the measurement emulator
//! (`wfbb_calibration::emulator`) standing in for the real Cori/Summit
//! runs; "simulated" columns come from the clean model, exactly as the
//! paper compares real executions against its WRENCH simulator. See
//! DESIGN.md §2 for the substitution argument and EXPERIMENTS.md for the
//! recorded outcomes.

pub mod figures;
pub mod harness;
pub mod table;

pub use harness::Scenario;
pub use table::Table;

/// Runs the named experiment, prints its tables, and writes CSVs under
/// `results/`. Entry point shared by all experiment binaries.
pub fn run_and_save(name: &str) {
    let run = figures::by_name(name).unwrap_or_else(|| {
        eprintln!("unknown experiment {name:?}; known: {:?}", figures::NAMES);
        std::process::exit(2);
    });
    let tables = run();
    let dir = results_dir();
    for t in &tables {
        println!("{t}");
        let path = dir.join(format!("{}.csv", t.slug()));
        t.write_csv(&path).unwrap_or_else(|e| {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        });
        println!("  -> {}\n", path.display());
    }
}

/// The `results/` directory at the workspace root (created on demand).
pub fn results_dir() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR = crates/experiments; results/ sits two levels up.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results")
        .to_path_buf();
    std::fs::create_dir_all(&dir).expect("results directory is creatable");
    dir
}

#[cfg(test)]
mod tests {
    #[test]
    fn results_dir_is_creatable() {
        let dir = super::results_dir();
        assert!(dir.is_dir());
    }

    #[test]
    fn all_experiment_names_resolve() {
        for name in super::figures::NAMES {
            assert!(
                super::figures::by_name(name).is_some(),
                "experiment {name} must resolve"
            );
        }
        assert!(super::figures::by_name("nope").is_none());
    }
}
