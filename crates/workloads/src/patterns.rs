//! Generic workflow patterns.
//!
//! Simple parameterized DAG shapes for tests, examples, and exploration
//! beyond the paper's two applications: linear chains, fork–joins, and
//! seeded random layered DAGs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wfbb_workflow::{Workflow, WorkflowBuilder};

/// A linear chain of `length` tasks, each passing one file of
/// `file_size` bytes to the next; each task carries `flops` of work.
pub fn chain(length: usize, file_size: f64, flops: f64) -> Workflow {
    assert!(length >= 1, "a chain needs at least one task");
    let mut b = WorkflowBuilder::new(format!("chain-{length}"));
    let mut prev = b.add_file("chain_in", file_size);
    for i in 0..length {
        let out = b.add_file(format!("chain_{i}"), file_size);
        b.task(format!("stage_{i}"))
            .category("chain")
            .flops(flops)
            .input(prev)
            .output(out)
            .add();
        prev = out;
    }
    b.build().expect("chains are valid workflows")
}

/// A fork–join: one `split` task fans out to `width` workers whose
/// outputs a `join` task merges.
pub fn fork_join(width: usize, file_size: f64, flops: f64) -> Workflow {
    assert!(width >= 1, "a fork-join needs at least one branch");
    let mut b = WorkflowBuilder::new(format!("forkjoin-{width}"));
    let input = b.add_file("fj_in", file_size);
    let mut branch_inputs = Vec::with_capacity(width);
    for i in 0..width {
        branch_inputs.push(b.add_file(format!("fj_split_{i}"), file_size / width as f64));
    }
    b.task("split")
        .category("split")
        .flops(flops)
        .input(input)
        .outputs(branch_inputs.iter().copied())
        .add();
    let mut branch_outputs = Vec::with_capacity(width);
    for (i, f) in branch_inputs.into_iter().enumerate() {
        let out = b.add_file(format!("fj_work_{i}"), file_size / width as f64);
        b.task(format!("work_{i}"))
            .category("work")
            .flops(flops)
            .input(f)
            .output(out)
            .add();
        branch_outputs.push(out);
    }
    let result = b.add_file("fj_out", file_size);
    b.task("join")
        .category("join")
        .flops(flops)
        .inputs(branch_outputs)
        .output(result)
        .add();
    b.build().expect("fork-joins are valid workflows")
}

/// A seeded random layered DAG: `layers` layers of 1..=`max_width` tasks;
/// each task consumes 1–3 outputs of the previous layer (when one exists)
/// and produces one file. Deterministic in `seed`.
pub fn random_layered(layers: usize, max_width: usize, seed: u64) -> Workflow {
    assert!(layers >= 1 && max_width >= 1, "need at least one task");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = WorkflowBuilder::new(format!("random-{layers}x{max_width}-{seed}"));
    let mut prev_outputs: Vec<wfbb_workflow::FileId> = Vec::new();
    for l in 0..layers {
        let width = rng.gen_range(1..=max_width);
        let mut outs = Vec::with_capacity(width);
        for t in 0..width {
            let size = rng.gen_range(1e6..64e6);
            let out = b.add_file(format!("r{l}_{t}.dat"), size);
            let mut task = b
                .task(format!("task_{l}_{t}"))
                .category(format!("layer{l}"))
                .flops(rng.gen_range(1e9..1e12))
                .cores(rng.gen_range(1..=8))
                .output(out);
            if !prev_outputs.is_empty() {
                let fan_in = rng.gen_range(1..=3.min(prev_outputs.len()));
                for _ in 0..fan_in {
                    let pick = prev_outputs[rng.gen_range(0..prev_outputs.len())];
                    task = task.input(pick);
                }
            }
            task.add();
            outs.push(out);
        }
        prev_outputs = outs;
    }
    b.build().expect("layered DAGs are valid workflows")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_is_linear() {
        let wf = chain(5, 1e6, 1e9);
        assert_eq!(wf.task_count(), 5);
        assert_eq!(wf.depth(), 5);
        assert_eq!(wf.width(), 1);
    }

    #[test]
    fn fork_join_shape() {
        let wf = fork_join(6, 12e6, 1e9);
        assert_eq!(wf.task_count(), 8);
        assert_eq!(wf.depth(), 3);
        assert_eq!(wf.width(), 6);
        let join = wf.task_by_name("join").unwrap();
        assert_eq!(wf.dependencies(join.id).len(), 6);
    }

    #[test]
    fn random_layered_is_deterministic_in_seed() {
        let a = random_layered(4, 5, 42);
        let b = random_layered(4, 5, 42);
        assert_eq!(a.to_json(), b.to_json());
        let c = random_layered(4, 5, 43);
        assert_ne!(a.to_json(), c.to_json());
    }

    #[test]
    fn random_layered_respects_bounds() {
        let wf = random_layered(6, 4, 7);
        assert!(wf.depth() <= 6);
        assert!(wf.width() <= 4);
        assert!(wf.task_count() >= 6);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn zero_length_chain_rejected() {
        let _ = chain(0, 1.0, 1.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn random_dags_are_always_valid(
                layers in 1usize..6,
                width in 1usize..6,
                seed in 0u64..1000,
            ) {
                let wf = random_layered(layers, width, seed);
                // build() already validates; exercise the analyses too.
                prop_assert_eq!(wf.topological_order().len(), wf.task_count());
                let (cp, _) = wf.critical_path(|t| wf.task(t).flops);
                prop_assert!(cp > 0.0);
            }
        }
    }
}
