//! Snapshot/fork determinism contract tests.
//!
//! The pinned guarantee (`docs/snapshot.md`): running an engine after
//! `snapshot()`/`restore()` is **bitwise identical** — activity ids, tags,
//! and the exact `f64` bit patterns of completion times — to the
//! uninterrupted run, in both solve modes, with and without capacity
//! faults, from any snapshot point. The same holds one layer up for
//! `CampaignSim::fork`, which is what the `plan` scheduling policy (and
//! future mid-campaign checkpointing) builds on.

use proptest::prelude::*;

use wfbb::platform::{presets, BbMode};
use wfbb::sched::{
    run_campaign, synthetic_jobs, BatchPolicy, CampaignConfig, CampaignSim, JobSpec,
    SyntheticConfig,
};
use wfbb::simcore::{ActivityId, Engine, EngineConfig, FaultPlan, FlowSpec, SolveMode};

// ---- randomized engine scenarios ----------------------------------------

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Builds a seeded mixed workload: a handful of resources, a blend of
/// flows (with latencies, rate caps, shared routes) and pure delays, and
/// optionally a capacity-fault schedule (degradations and full outages).
fn build_engine(seed: u64, mode: SolveMode, with_faults: bool) -> Engine<u64> {
    let mut engine: Engine<u64> = Engine::with_config(EngineConfig {
        solve_mode: mode,
        ..Default::default()
    });
    let mut s = seed.wrapping_mul(2).wrapping_add(1);
    let nres = 2 + (splitmix(&mut s) % 4) as usize;
    let res: Vec<_> = (0..nres)
        .map(|i| engine.add_resource(format!("r{i}"), 50.0 + (splitmix(&mut s) % 950) as f64))
        .collect();
    let nact = 5 + (splitmix(&mut s) % 20) as usize;
    for i in 0..nact {
        if splitmix(&mut s).is_multiple_of(4) {
            engine.spawn_delay(((splitmix(&mut s) % 1000) as f64) / 10.0, i as u64);
        } else {
            let a = (splitmix(&mut s) % nres as u64) as usize;
            let b = (splitmix(&mut s) % nres as u64) as usize;
            let route = if a == b {
                vec![res[a]]
            } else {
                vec![res[a], res[b]]
            };
            let mut spec = FlowSpec::new(100.0 + (splitmix(&mut s) % 100_000) as f64, route);
            if splitmix(&mut s).is_multiple_of(3) {
                spec = spec.with_latency(((splitmix(&mut s) % 100) as f64) / 10.0);
            }
            if splitmix(&mut s).is_multiple_of(3) {
                spec = spec.with_rate_cap(10.0 + (splitmix(&mut s) % 200) as f64);
            }
            engine.spawn_flow(spec, i as u64);
        }
    }
    if with_faults {
        // Three capacity events: a degradation to half, a restore to
        // nominal, and (sometimes) a full outage late enough that most
        // scenarios still drain. Stalls are part of the contract too —
        // the replay must stall at the identical point.
        let mut plan = FaultPlan::new();
        for k in 0..3u64 {
            let r = res[(splitmix(&mut s) % nres as u64) as usize];
            let t = ((splitmix(&mut s) % 600) as f64) / 10.0;
            let cap = match (splitmix(&mut s).wrapping_add(k)) % 3 {
                0 => engine.resource(r).capacity * 0.5,
                1 => engine.resource(r).capacity,
                _ => 0.0,
            };
            plan.push_capacity(t, r, cap);
        }
        engine.set_fault_plan(&plan);
    }
    engine
}

/// One completion, fingerprinted exactly: id, tag, and the raw bit
/// pattern of the completion time.
type Event = (ActivityId, u64, u64);

/// Drains the engine, returning the exact event sequence plus the error
/// (as text) if it stalled instead of draining.
fn drain(engine: &mut Engine<u64>) -> (Vec<Event>, Option<String>) {
    let mut events = Vec::new();
    loop {
        match engine.try_step() {
            Ok(Some(c)) => events.push((c.id, c.tag, c.time.seconds().to_bits())),
            Ok(None) => return (events, None),
            Err(e) => return (events, Some(e.to_string())),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// snapshot → run-to-completion is bitwise equal to the uninterrupted
    /// run, from any event index, in both solve modes, with and without
    /// capacity faults — even when restoring over a *different* engine's
    /// state.
    #[test]
    fn snapshot_restore_replays_bitwise(
        seed in 0u64..10_000,
        snap_at in 0usize..12,
        faulty in 0u64..2,
    ) {
        let with_faults = faulty == 1;
        for mode in [SolveMode::Naive, SolveMode::Incremental] {
            let mut original = build_engine(seed, mode, with_faults);
            for _ in 0..snap_at {
                match original.try_step() {
                    Ok(Some(_)) => {}
                    _ => break,
                }
            }
            let snap = original.snapshot();
            let fork = original.fork();

            // The uninterrupted run: the original simply continues.
            let uninterrupted = drain(&mut original);

            // Restore over a dirty, unrelated engine: the old state must
            // not leak through.
            let mut restored = build_engine(seed ^ 0x5eed, mode, !with_faults);
            let _ = restored.try_step();
            restored.restore(&snap);
            prop_assert_eq!(&drain(&mut restored), &uninterrupted, "restore ({mode:?})");

            // A fork taken at the same instant replays identically too.
            let mut fork = fork;
            prop_assert_eq!(&drain(&mut fork), &uninterrupted, "fork ({mode:?})");

            // Snapshots are reusable values: a second restore replays
            // the identical sequence again.
            restored.restore(&snap);
            prop_assert_eq!(&drain(&mut restored), &uninterrupted, "re-restore ({mode:?})");
        }
    }
}

// ---- campaign-level forking ---------------------------------------------

fn campaign_jobs(seed: u64, kills: bool) -> Vec<JobSpec> {
    let jobs = synthetic_jobs(
        seed,
        &SyntheticConfig {
            jobs: 5,
            mean_interarrival: 25.0,
            bb_request_scale: 1.5,
            max_nodes: 2,
        },
    )
    .unwrap();
    if !kills {
        return jobs;
    }
    jobs.into_iter()
        .map(|j| {
            if j.workflow_spec.starts_with("swarp") {
                // Kills landing outside the task's window are no-ops, so
                // cases cover clean runs, retries, and job failures.
                j.with_kill("resample_0", 40.0).with_max_attempts(2)
            } else {
                j
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A campaign forked mid-flight finishes with a byte-identical
    /// report, in both solve modes, including campaigns with kill faults
    /// in flight at the fork point.
    #[test]
    fn mid_campaign_fork_replays_bitwise(
        seed in 0u64..1_000,
        fork_at in 0usize..40,
        kills in 0u64..2,
    ) {
        let jobs = campaign_jobs(seed, kills == 1);
        for mode in [SolveMode::Naive, SolveMode::Incremental] {
            let cfg = CampaignConfig::new(presets::cori(4, BbMode::Striped))
                .with_policy(BatchPolicy::BbAware)
                .with_solve_mode(mode)
                .with_platform_label("cori:striped");
            let mut sim = CampaignSim::new(&cfg, &jobs).unwrap();
            for _ in 0..fork_at {
                if !sim.step().unwrap() {
                    break;
                }
            }
            let mut forked = sim.fork();
            while sim.step().unwrap() {}
            while forked.step().unwrap() {}
            let a = sim.finish().unwrap();
            let b = forked.finish().unwrap();
            prop_assert_eq!(a.to_json(), b.to_json(), "fork diverged ({:?})", mode);
        }
    }
}

// ---- plan-policy acceptance ---------------------------------------------

/// On an oversubscribed 20-job campaign (2× BB pressure, 15 s mean
/// interarrival on 8 nodes) plan-based scheduling must *strictly* beat
/// greedy BB-aware backfilling on mean bounded slowdown — the regime
/// Kopanski & Rzadca identify — and never lose a job doing it.
#[test]
fn plan_strictly_beats_bb_aware_when_oversubscribed() {
    let jobs = synthetic_jobs(
        1,
        &SyntheticConfig {
            jobs: 20,
            mean_interarrival: 15.0,
            bb_request_scale: 2.0,
            max_nodes: 8,
        },
    )
    .unwrap();
    let run = |policy| {
        let cfg = CampaignConfig::new(presets::cori(8, BbMode::Striped))
            .with_policy(policy)
            .with_platform_label("cori:striped");
        run_campaign(&cfg, &jobs).unwrap()
    };
    let greedy = run(BatchPolicy::BbAware);
    let plan = run(BatchPolicy::Plan);
    assert_eq!(plan.jobs_ran, greedy.jobs_ran, "plan must not lose jobs");
    assert!(
        plan.mean_bounded_slowdown < greedy.mean_bounded_slowdown - 1e-9,
        "plan {} must strictly beat bb-aware {}",
        plan.mean_bounded_slowdown,
        greedy.mean_bounded_slowdown
    );
}
