//! Kernel microbenchmarks: fair-share solver and engine throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wfbb_simcore::fairshare::{solve, FlowReq};
use wfbb_simcore::{Engine, FlowSpec, ResourceId, SolveMode};

/// Max–min solve over `n` flows crossing a shared link plus a private
/// resource each — the allocation pattern of concurrent pipelines.
fn bench_fairshare(c: &mut Criterion) {
    let mut group = c.benchmark_group("fairshare_solve");
    for n in [8usize, 64, 256] {
        // Resource 0 is shared; resources 1..=n are per-flow.
        let capacities: Vec<f64> = std::iter::once(1000.0)
            .chain((0..n).map(|_| 50.0))
            .collect();
        let routes: Vec<[ResourceId; 2]> = (0..n)
            .map(|i| [ResourceId::from_index(0), ResourceId::from_index(i + 1)])
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let flows: Vec<FlowReq> = routes
                    .iter()
                    .map(|r| FlowReq {
                        route: r,
                        rate_cap: None,
                    })
                    .collect();
                black_box(solve(&capacities, &flows))
            })
        });
    }
    group.finish();
}

/// End-to-end engine throughput: `n` equal flows on one link, run to
/// completion (one solve per completion event).
fn bench_engine_events(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_run");
    for n in [16usize, 128, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut engine: Engine<usize> = Engine::new();
                let link = engine.add_resource("link", 1000.0);
                for i in 0..n {
                    // Staggered sizes force n distinct completion events.
                    engine.spawn_flow(FlowSpec::new(100.0 + i as f64, vec![link]), i);
                }
                black_box(engine.run_to_completion().len())
            })
        });
    }
    group.finish();
}

/// The workload the incremental engine targets: `n` transfers contending
/// on one link interleaved with ~4n pure-delay events (compute phases,
/// metadata timers — the bulk of a workflow execution's event stream).
/// The naive engine re-solves the whole allocation at every delay end;
/// the incremental engine skips those solves and pops the heap.
fn stress_scenario(mode: SolveMode, n: usize) -> usize {
    let mut engine: Engine<usize> = Engine::new();
    engine.set_solve_mode(mode);
    let link = engine.add_resource("link", 1000.0);
    for i in 0..n {
        engine.spawn_flow(FlowSpec::new(100.0 + i as f64, vec![link]), i);
    }
    // Delay endpoints spread across the flows' completion span so each one
    // interrupts steady-state streaming.
    let span = 0.1 * (100.0 + n as f64) * n as f64 / 1000.0;
    for k in 0..4 * n {
        engine.spawn_delay(span * (k as f64 + 0.5) / (4 * n) as f64, n + k);
    }
    engine.run_to_completion().len()
}

/// A/B comparison on the delay-heavy stress mix: the ISSUE's ≥5× target
/// is measured between these two series at n = 1000.
fn bench_engine_stress(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_stress");
    group.sample_size(10);
    for n in [250usize, 1000] {
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, &n| {
            b.iter(|| black_box(stress_scenario(SolveMode::Naive, n)))
        });
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, &n| {
            b.iter(|| black_box(stress_scenario(SolveMode::Incremental, n)))
        });
    }
    group.finish();
}

/// Scale check: 10 000 concurrent flows (two route groups plus delays)
/// must complete in seconds, not minutes.
fn bench_engine_10k(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_10k");
    group.sample_size(10);
    group.bench_function("incremental", |b| {
        b.iter(|| {
            let n = 10_000usize;
            let mut engine: Engine<usize> = Engine::new();
            let link = engine.add_resource("link", 10_000.0);
            let nic = engine.add_resource("nic", 4_000.0);
            for i in 0..n {
                let route = if i % 2 == 0 {
                    vec![link]
                } else {
                    vec![nic, link]
                };
                engine.spawn_flow(FlowSpec::new(50.0 + (i % 100) as f64, route), i);
            }
            for k in 0..n {
                engine.spawn_delay(0.01 * k as f64, n + k);
            }
            black_box(engine.run_to_completion().len())
        })
    });
    group.finish();
}

/// Snapshot/fork cost vs live engine size: `n` flows contending on one
/// link plus `n` delay timers, stepped partway so the lazy heap and the
/// solver workspace are warm. `snapshot` measures the deep clone,
/// `restore` measures overwriting a live engine from a held snapshot;
/// together they bound the per-candidate cost of the plan scheduler's
/// speculative rollouts (docs/snapshot.md).
fn bench_snapshot_fork(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_fork");
    for n in [16usize, 128, 512] {
        let mut engine: Engine<usize> = Engine::new();
        let link = engine.add_resource("link", 1000.0);
        for i in 0..n {
            engine.spawn_flow(FlowSpec::new(100.0 + i as f64, vec![link]), i);
        }
        for k in 0..n {
            engine.spawn_delay(0.01 * k as f64, n + k);
        }
        for _ in 0..n / 2 {
            engine.try_step().expect("warm-up steps succeed");
        }
        group.bench_with_input(BenchmarkId::new("snapshot", n), &n, |b, _| {
            b.iter(|| black_box(engine.snapshot()))
        });
        let snap = engine.snapshot();
        group.bench_with_input(BenchmarkId::new("restore", n), &n, |b, _| {
            let mut target = engine.fork();
            b.iter(|| {
                target.restore(black_box(&snap));
                black_box(&target);
            })
        });
    }
    group.finish();
}

/// Explainability overhead: building the full `explain` report (hotspot
/// ranking, critical-path walk, composition, renderers) from a finished
/// SWarp run. Attribution accounting itself is always on, so this bounds
/// the *extra* cost of `--explain` over a plain run.
fn bench_explain_report(c: &mut Criterion) {
    use wfbb_platform::{presets, BbMode};
    use wfbb_storage::PlacementPolicy;
    use wfbb_wms::SimulationBuilder;
    use wfbb_workloads::SwarpConfig;

    let report = SimulationBuilder::new(
        presets::cori(1, BbMode::Striped),
        SwarpConfig::new(8).with_cores_per_task(4).build(),
    )
    .placement(PlacementPolicy::AllBb)
    .run()
    .expect("swarp run succeeds");

    let mut group = c.benchmark_group("explain");
    group.bench_function("report", |b| b.iter(|| black_box(report.explain(5))));
    group.bench_function("render_text", |b| {
        let explanation = report.explain(5);
        b.iter(|| black_box(explanation.render_text()))
    });
    group.finish();
}

/// Checkpoint overhead: the same SWarp run with no policy, a sparse
/// policy, and a dense policy. The no-policy series doubles as the
/// regression guard for the bitwise-zero path — checkpointing disabled
/// must cost nothing over the pre-checkpoint executor.
fn bench_checkpoint_overhead(c: &mut Criterion) {
    use wfbb_platform::{presets, BbMode};
    use wfbb_storage::PlacementPolicy;
    use wfbb_wms::{CheckpointPolicy, CheckpointTier, SimulationBuilder};
    use wfbb_workloads::SwarpConfig;

    let run = |interval: Option<f64>| {
        let mut builder = SimulationBuilder::new(
            presets::cori(1, BbMode::Striped),
            SwarpConfig::new(4).with_cores_per_task(8).build(),
        )
        .placement(PlacementPolicy::AllBb);
        if let Some(i) = interval {
            builder = builder.checkpoint(CheckpointPolicy::new(i, CheckpointTier::Bb));
        }
        builder.run().expect("swarp run succeeds").makespan
    };

    let mut group = c.benchmark_group("checkpoint_overhead");
    group.sample_size(10);
    group.bench_function("disabled", |b| b.iter(|| black_box(run(None))));
    group.bench_function("sparse_16s", |b| b.iter(|| black_box(run(Some(16.0)))));
    group.bench_function("dense_2s", |b| b.iter(|| black_box(run(Some(2.0)))));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fairshare, bench_engine_events, bench_engine_stress, bench_engine_10k,
              bench_snapshot_fork, bench_explain_report, bench_checkpoint_overhead
}
criterion_main!(benches);
