//! Workflow JSON serialization.
//!
//! A compact, human-editable JSON schema in the spirit of the WfCommons
//! WfFormat the paper's tooling consumes (the 1000Genomes instance comes
//! from WorkflowHub traces). Files are declared once with their sizes; tasks
//! reference them by name.
//!
//! ```json
//! {
//!   "name": "demo",
//!   "files": [ {"name": "in.dat", "size": 1000000.0} ],
//!   "tasks": [
//!     {"name": "t1", "category": "proc", "flops": 1e9, "alpha": 0.0,
//!      "cores": 4, "inputs": ["in.dat"], "outputs": [], "pipeline": null}
//!   ]
//! }
//! ```

use serde::{Deserialize, Serialize};

use crate::graph::{Workflow, WorkflowBuilder, WorkflowError};

#[derive(Debug, Serialize, Deserialize)]
struct FileDoc {
    name: String,
    size: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct TaskDoc {
    name: String,
    #[serde(default)]
    category: String,
    #[serde(default)]
    flops: f64,
    #[serde(default)]
    alpha: f64,
    #[serde(default = "one")]
    cores: usize,
    #[serde(default)]
    inputs: Vec<String>,
    #[serde(default)]
    outputs: Vec<String>,
    #[serde(default)]
    pipeline: Option<usize>,
}

fn one() -> usize {
    1
}

#[derive(Debug, Serialize, Deserialize)]
struct WorkflowDoc {
    name: String,
    files: Vec<FileDoc>,
    tasks: Vec<TaskDoc>,
}

/// Errors raised when parsing a workflow document.
#[derive(Debug)]
pub enum IoError {
    /// The document is not valid JSON for the schema.
    Json(serde_json::Error),
    /// A task references a file name that is not declared.
    UnknownFile(String),
    /// The parsed workflow fails structural validation.
    Workflow(WorkflowError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Json(e) => write!(f, "invalid workflow JSON: {e}"),
            IoError::UnknownFile(n) => write!(f, "task references undeclared file {n:?}"),
            IoError::Workflow(e) => write!(f, "invalid workflow: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl Workflow {
    /// Serializes the workflow to pretty JSON.
    pub fn to_json(&self) -> String {
        let doc = WorkflowDoc {
            name: self.name.clone(),
            files: self
                .files()
                .iter()
                .map(|f| FileDoc {
                    name: f.name.clone(),
                    size: f.size,
                })
                .collect(),
            tasks: self
                .tasks()
                .iter()
                .map(|t| TaskDoc {
                    name: t.name.clone(),
                    category: t.category.clone(),
                    flops: t.flops,
                    alpha: t.alpha,
                    cores: t.cores,
                    inputs: t
                        .inputs
                        .iter()
                        .map(|&f| self.file(f).name.clone())
                        .collect(),
                    outputs: t
                        .outputs
                        .iter()
                        .map(|&f| self.file(f).name.clone())
                        .collect(),
                    pipeline: t.pipeline,
                })
                .collect(),
        };
        serde_json::to_string_pretty(&doc).expect("workflow doc serializes")
    }

    /// Parses and validates a workflow from JSON.
    pub fn from_json(json: &str) -> Result<Workflow, IoError> {
        let doc: WorkflowDoc = serde_json::from_str(json).map_err(IoError::Json)?;
        let mut b = WorkflowBuilder::new(doc.name);
        let mut by_name = std::collections::HashMap::new();
        for f in doc.files {
            let id = b.add_file(f.name.clone(), f.size);
            by_name.insert(f.name, id);
        }
        for t in doc.tasks {
            let mut tb = b
                .task(t.name)
                .category(t.category)
                .flops(t.flops)
                .alpha(t.alpha)
                .cores(t.cores);
            if let Some(p) = t.pipeline {
                tb = tb.pipeline(p);
            }
            for name in t.inputs {
                let id = *by_name
                    .get(&name)
                    .ok_or_else(|| IoError::UnknownFile(name.clone()))?;
                tb = tb.input(id);
            }
            for name in t.outputs {
                let id = *by_name
                    .get(&name)
                    .ok_or_else(|| IoError::UnknownFile(name.clone()))?;
                tb = tb.output(id);
            }
            tb.add();
        }
        b.build().map_err(IoError::Workflow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Workflow {
        let mut b = WorkflowBuilder::new("sample");
        let fi = b.add_file("in", 1e6);
        let fm = b.add_file("mid", 5e5);
        let fo = b.add_file("out", 1e5);
        b.task("first")
            .category("proc")
            .flops(2e9)
            .alpha(0.1)
            .cores(4)
            .pipeline(0)
            .input(fi)
            .output(fm)
            .add();
        b.task("second")
            .category("merge")
            .input(fm)
            .output(fo)
            .add();
        b.build().unwrap()
    }

    #[test]
    fn round_trip_preserves_structure() {
        let wf = sample();
        let json = wf.to_json();
        let back = Workflow::from_json(&json).unwrap();
        assert_eq!(back.name, "sample");
        assert_eq!(back.task_count(), 2);
        assert_eq!(back.file_count(), 3);
        let t = back.task_by_name("first").unwrap();
        assert_eq!(t.category, "proc");
        assert_eq!(t.flops, 2e9);
        assert_eq!(t.alpha, 0.1);
        assert_eq!(t.cores, 4);
        assert_eq!(t.pipeline, Some(0));
        assert_eq!(
            back.dependencies(back.task_by_name("second").unwrap().id)
                .len(),
            1
        );
    }

    #[test]
    fn unknown_file_reference_fails() {
        let json = r#"{
            "name": "bad", "files": [],
            "tasks": [{"name": "t", "inputs": ["ghost"]}]
        }"#;
        match Workflow::from_json(json) {
            Err(IoError::UnknownFile(n)) => assert_eq!(n, "ghost"),
            other => panic!("expected UnknownFile, got {other:?}"),
        }
    }

    #[test]
    fn defaults_fill_optional_fields() {
        let json = r#"{
            "name": "min",
            "files": [{"name": "f", "size": 1.0}],
            "tasks": [{"name": "t", "outputs": ["f"]}]
        }"#;
        let wf = Workflow::from_json(json).unwrap();
        let t = wf.task_by_name("t").unwrap();
        assert_eq!(t.cores, 1);
        assert_eq!(t.alpha, 0.0);
        assert_eq!(t.flops, 0.0);
        assert_eq!(t.pipeline, None);
    }

    #[test]
    fn malformed_json_fails() {
        assert!(matches!(Workflow::from_json("{"), Err(IoError::Json(_))));
    }

    #[test]
    fn structurally_invalid_doc_fails() {
        let json = r#"{
            "name": "bad",
            "files": [{"name": "f", "size": 1.0}],
            "tasks": [
                {"name": "a", "outputs": ["f"]},
                {"name": "b", "outputs": ["f"]}
            ]
        }"#;
        assert!(matches!(
            Workflow::from_json(json),
            Err(IoError::Workflow(_))
        ));
    }
}
