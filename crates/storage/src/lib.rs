//! # wfbb-storage — storage tiers, placement, and I/O flow construction
//!
//! Models the storage side of the paper's platforms:
//!
//! * the **parallel file system** (PFS), always present;
//! * **shared burst buffers** on dedicated BB nodes (Cori/DataWarp) in
//!   *private* (whole file on one BB node, cheap metadata) or *striped*
//!   (file split over all BB nodes, per-stripe open cost) mode;
//! * **on-node burst buffers** (Summit), one NVMe device per compute node,
//!   with remote access to another node's BB crossing the interconnect.
//!
//! The crate answers two questions for the executor in `wfbb-wms`:
//!
//! 1. *Where does each file live?* — [`PlacementPolicy`] turns the paper's
//!    experimental knobs (fraction of input files staged into the BB, tier
//!    of intermediate files) into a per-file [`Tier`]; the
//!    [`StorageSystem`] refines a tier into a concrete [`Location`]
//!    (which BB node, which stripes); the [`FileRegistry`] tracks locations
//!    at runtime.
//! 2. *What does an access cost?* — [`StorageSystem::read_flows`],
//!    [`write_flows`](StorageSystem::write_flows), and
//!    [`stage_in_flows`](StorageSystem::stage_in_flows) produce the
//!    `wfbb_simcore::FlowSpec`s (routes + per-file/per-stripe latencies)
//!    that the engine prices under contention.

#![deny(missing_docs)]

pub mod heuristics;
pub mod placement;
pub mod registry;
pub mod reservation;
pub mod system;
pub mod tier;

pub use heuristics::{plan_with_budget, BbBudgetHeuristic};
pub use placement::{PlacementPlan, PlacementPolicy};
pub use registry::FileRegistry;
pub use reservation::BbPool;
pub use system::{FailoverPolicy, StorageSystem};
pub use tier::{Location, StorageKind, Tier};
