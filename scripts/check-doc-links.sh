#!/usr/bin/env bash
# Verifies that every relative markdown link in the repo's documentation
# points at a file that exists. External (http/https/mailto) links and
# pure #anchors are skipped; a `path#anchor` link is checked for `path`.
# Run from anywhere inside the repository.
set -euo pipefail

cd "$(dirname "$0")/.."

# Tracked markdown only: the link contract covers what ships in the repo.
broken=$(
    git ls-files '*.md' | while IFS= read -r doc; do
        dir=$(dirname "$doc")
        # Extract the (target) of every [text](target) occurrence.
        grep -oE '\]\([^)]+\)' "$doc" 2>/dev/null |
            sed -E 's/^\]\(//; s/\)$//' |
            while IFS= read -r target; do
                case "$target" in
                    http://* | https://* | mailto:* | '#'*) continue ;;
                esac
                path="${target%%#*}"
                [ -n "$path" ] || continue
                if [ ! -e "$dir/$path" ]; then
                    echo "BROKEN: $doc -> $target"
                fi
            done
    done
)

if [ -n "$broken" ]; then
    echo "$broken"
    echo "doc link check failed" >&2
    exit 1
fi
echo "doc links OK"

# ---- service contract drift (docs/service.md vs crates/serve) -----------
# The wire contract documented in docs/service.md must match the serve
# crate: every documented route exists in the router, every routed path
# is documented, and the documented api_version is the crate constant.
doc=docs/service.md
router=crates/serve/src/server.rs
drift=""

# Documented routes -> normalized "METHOD /v1/seg/*/seg" (placeholders
# like <id> become *).
doc_routes=$(
    grep -oE '(GET|POST) /v1[a-z0-9./<>_-]*' "$doc" |
        sed -E 's/<[a-z_]+>/*/g; s|/[0-9]+|/*|g; s|/[a-z_-]+\.[a-z]+|/*|g' | sort -u
)

# Routed paths -> the same normalization, from match arms shaped
# ("GET", ["v1", "jobs", id, "events"]).
src_routes=$(
    grep -oE '\("(GET|POST)", \[[^]]+\]\)' "$router" |
        sed -E 's/^\("([A-Z]+)", \[(.*)\]\)$/\1 \2/' |
        while IFS= read -r line; do
            method=${line%% *}
            segs=$(echo "${line#* }" | tr ',' '\n' | sed -E 's/^ *//; s/ *$//' |
                sed -E '/^"/{s/^"(.*)"$/\1/;b;}; s/^[a-z_]+$/*/')
            echo "$method /$(echo "$segs" | paste -sd/ -)"
        done | sort -u
)

while IFS= read -r route; do
    [ -n "$route" ] || continue
    if ! printf '%s\n' "$src_routes" | grep -qxF "$route"; then
        drift="$drift
DRIFT: $doc documents \"$route\" but $router does not route it"
    fi
done <<EOF
$doc_routes
EOF

while IFS= read -r route; do
    [ -n "$route" ] || continue
    if ! printf '%s\n' "$doc_routes" | grep -qxF "$route"; then
        drift="$drift
DRIFT: $router routes \"$route\" but $doc does not document it"
    fi
done <<EOF
$src_routes
EOF

# The documented API version must be the crate constant.
crate_version=$(grep -oE 'pub const API_VERSION: u32 = [0-9]+' crates/serve/src/lib.rs |
    grep -oE '[0-9]+$')
if ! grep -qE "\"api_version\": $crate_version\b" "$doc"; then
    drift="$drift
DRIFT: $doc does not show \"api_version\": $crate_version (the wfbb_serve::API_VERSION constant)"
fi

if [ -n "$drift" ]; then
    echo "$drift"
    echo "service contract drift check failed" >&2
    exit 1
fi
echo "service contract OK (api_version $crate_version, $(printf '%s\n' "$doc_routes" | wc -l | tr -d ' ') routes)"
