//! Capacity-aware data-placement heuristics.
//!
//! The paper's conclusion proposes exactly this: *"A natural future
//! direction is to leverage our simulator to explore the heuristic-space
//! of data placement strategies to optimize workflow executions."* This
//! module implements that exploration surface: given a byte budget for
//! the burst buffer (the allocation a job requests), a heuristic decides
//! which files deserve BB residency; everything else stays on the PFS.
//!
//! All heuristics are greedy over a per-file score; they differ only in
//! the score:
//!
//! | heuristic | intuition |
//! |---|---|
//! | [`LargestFirst`] | big files amortize per-file costs best |
//! | [`SmallestFirst`] | many small files maximize the count served by the BB's cheap metadata |
//! | [`MostAccessed`] | files read by many tasks multiply the benefit |
//! | [`BandwidthSavings`] | estimated seconds saved: `size × accesses × (1/pfs_bw − 1/bb_bw)` |
//! | [`CriticalPathFirst`] | files touched by critical-path tasks gate the makespan |
//!
//! [`LargestFirst`]: BbBudgetHeuristic::LargestFirst
//! [`SmallestFirst`]: BbBudgetHeuristic::SmallestFirst
//! [`MostAccessed`]: BbBudgetHeuristic::MostAccessed
//! [`BandwidthSavings`]: BbBudgetHeuristic::BandwidthSavings
//! [`CriticalPathFirst`]: BbBudgetHeuristic::CriticalPathFirst

use serde::{Deserialize, Serialize};

use wfbb_workflow::{FileId, Workflow};

use crate::placement::PlacementPlan;
use crate::tier::Tier;

/// Greedy score used to rank files for burst buffer residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BbBudgetHeuristic {
    /// Biggest files first.
    LargestFirst,
    /// Smallest files first (maximizes the number of BB-resident files).
    SmallestFirst,
    /// Files with the most reading tasks first.
    MostAccessed,
    /// Files with the highest estimated transfer-time savings first.
    BandwidthSavings,
    /// Files touched by critical-path tasks first, then by savings.
    CriticalPathFirst,
}

impl BbBudgetHeuristic {
    /// All heuristics, for sweeps.
    pub const ALL: [BbBudgetHeuristic; 5] = [
        BbBudgetHeuristic::LargestFirst,
        BbBudgetHeuristic::SmallestFirst,
        BbBudgetHeuristic::MostAccessed,
        BbBudgetHeuristic::BandwidthSavings,
        BbBudgetHeuristic::CriticalPathFirst,
    ];

    /// Short label for experiment output.
    pub fn label(self) -> &'static str {
        match self {
            BbBudgetHeuristic::LargestFirst => "largest-first",
            BbBudgetHeuristic::SmallestFirst => "smallest-first",
            BbBudgetHeuristic::MostAccessed => "most-accessed",
            BbBudgetHeuristic::BandwidthSavings => "bandwidth-savings",
            BbBudgetHeuristic::CriticalPathFirst => "critical-path",
        }
    }
}

/// Number of accesses a file sees during execution: one write (if
/// produced or staged) plus one read per consumer.
fn access_count(workflow: &Workflow, file: FileId) -> f64 {
    1.0 + workflow.consumers(file).len() as f64
}

/// Plans BB placement under a byte budget.
///
/// Files are ranked by the heuristic's score (descending) and admitted to
/// the burst buffer while they fit in `budget_bytes`; all remaining files
/// go to the PFS. Ties break on file id, so plans are deterministic.
///
/// `pfs_bw` and `bb_bw` are the effective tier bandwidths used by the
/// savings estimate (only their ratio matters for ranking).
pub fn plan_with_budget(
    workflow: &Workflow,
    heuristic: BbBudgetHeuristic,
    budget_bytes: f64,
    pfs_bw: f64,
    bb_bw: f64,
) -> PlacementPlan {
    assert!(
        budget_bytes >= 0.0 && budget_bytes.is_finite(),
        "budget must be finite and non-negative, got {budget_bytes}"
    );
    assert!(
        pfs_bw > 0.0 && bb_bw > 0.0,
        "tier bandwidths must be positive"
    );

    // Critical-path membership, computed once if needed.
    let on_critical_path: std::collections::HashSet<usize> = match heuristic {
        BbBudgetHeuristic::CriticalPathFirst => {
            let (_, path) = workflow.critical_path(|t| workflow.task(t).flops);
            let tasks: std::collections::HashSet<_> = path.into_iter().collect();
            workflow
                .files()
                .iter()
                .filter(|f| {
                    workflow.producer(f.id).is_some_and(|p| tasks.contains(&p))
                        || workflow.consumers(f.id).iter().any(|c| tasks.contains(c))
                })
                .map(|f| f.id.index())
                .collect()
        }
        _ => std::collections::HashSet::new(),
    };

    let savings = |file: FileId| {
        let f = workflow.file(file);
        f.size * access_count(workflow, file) * (1.0 / pfs_bw - 1.0 / bb_bw).max(0.0)
    };

    let mut ranked: Vec<FileId> = workflow.files().iter().map(|f| f.id).collect();
    ranked.sort_by(|&a, &b| {
        let score = |file: FileId| -> f64 {
            match heuristic {
                BbBudgetHeuristic::LargestFirst => workflow.file(file).size,
                BbBudgetHeuristic::SmallestFirst => -workflow.file(file).size,
                BbBudgetHeuristic::MostAccessed => access_count(workflow, file),
                BbBudgetHeuristic::BandwidthSavings => savings(file),
                BbBudgetHeuristic::CriticalPathFirst => {
                    let bonus = if on_critical_path.contains(&file.index()) {
                        1e18
                    } else {
                        0.0
                    };
                    bonus + savings(file)
                }
            }
        };
        score(b)
            .partial_cmp(&score(a))
            .expect("scores are finite")
            .then(a.cmp(&b))
    });

    let mut tiers = vec![Tier::Pfs; workflow.file_count()];
    let mut remaining = budget_bytes;
    for file in ranked {
        let size = workflow.file(file).size;
        if size <= remaining {
            tiers[file.index()] = Tier::BurstBuffer;
            remaining -= size;
        }
    }
    PlacementPlan::from_tiers(tiers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfbb_workflow::WorkflowBuilder;

    /// in_big (100) -> t1 -> hot (10, read by 3 tasks) -> t2,t3,t4 -> outs.
    fn workflow() -> Workflow {
        let mut b = WorkflowBuilder::new("wf");
        let in_big = b.add_file("in_big", 100.0);
        let hot = b.add_file("hot", 10.0);
        let outs: Vec<_> = (0..3).map(|i| b.add_file(format!("out{i}"), 1.0)).collect();
        b.task("t1").flops(100.0).input(in_big).output(hot).add();
        for (i, &o) in outs.iter().enumerate() {
            b.task(format!("t{}", i + 2))
                .flops(1.0)
                .input(hot)
                .output(o)
                .add();
        }
        b.build().unwrap()
    }

    fn plan(h: BbBudgetHeuristic, budget: f64) -> PlacementPlan {
        plan_with_budget(&workflow(), h, budget, 100e6, 800e6)
    }

    #[test]
    fn zero_budget_places_everything_on_pfs() {
        for h in BbBudgetHeuristic::ALL {
            assert!(plan(h, 0.0).bb_files().is_empty(), "{}", h.label());
        }
    }

    #[test]
    fn unlimited_budget_places_everything_in_bb() {
        let wf = workflow();
        for h in BbBudgetHeuristic::ALL {
            assert_eq!(
                plan(h, 1e9).bb_files().len(),
                wf.file_count(),
                "{}",
                h.label()
            );
        }
    }

    #[test]
    fn largest_first_prefers_the_big_input() {
        let wf = workflow();
        let p = plan(BbBudgetHeuristic::LargestFirst, 100.0);
        let big = wf.file_by_name("in_big").unwrap().id;
        assert_eq!(p.tier(big), Tier::BurstBuffer);
        assert_eq!(p.bb_files().len(), 1, "budget exhausted by the big file");
    }

    #[test]
    fn smallest_first_packs_many_files() {
        let p = plan(BbBudgetHeuristic::SmallestFirst, 13.0);
        // The three 1-byte outputs plus the 10-byte hot file fit.
        assert_eq!(p.bb_files().len(), 4);
    }

    #[test]
    fn most_accessed_prefers_the_hot_file() {
        let wf = workflow();
        let p = plan(BbBudgetHeuristic::MostAccessed, 10.0);
        let hot = wf.file_by_name("hot").unwrap().id;
        assert_eq!(p.tier(hot), Tier::BurstBuffer);
    }

    #[test]
    fn bandwidth_savings_weighs_size_times_accesses() {
        let wf = workflow();
        // savings(in_big) = 100 * 2 = 200 units; savings(hot) = 10 * 4 = 40.
        let p = plan(BbBudgetHeuristic::BandwidthSavings, 100.0);
        assert_eq!(
            p.tier(wf.file_by_name("in_big").unwrap().id),
            Tier::BurstBuffer
        );
    }

    #[test]
    fn critical_path_files_win_ties() {
        let wf = workflow();
        // Critical path is t1 (flops 100) -> one of t2..t4; in_big and hot
        // are both on it.
        let p = plan(BbBudgetHeuristic::CriticalPathFirst, 110.0);
        assert_eq!(
            p.tier(wf.file_by_name("in_big").unwrap().id),
            Tier::BurstBuffer
        );
        assert_eq!(
            p.tier(wf.file_by_name("hot").unwrap().id),
            Tier::BurstBuffer
        );
    }

    #[test]
    fn budget_is_respected_exactly() {
        let wf = workflow();
        for h in BbBudgetHeuristic::ALL {
            for budget in [0.0, 5.0, 50.0, 111.0, 112.0, 113.0] {
                let p = plan(h, budget);
                let used: f64 = p.bb_files().iter().map(|&f| wf.file(f).size).sum();
                assert!(used <= budget + 1e-9, "{}: {used} > {budget}", h.label());
            }
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            BbBudgetHeuristic::ALL.iter().map(|h| h.label()).collect();
        assert_eq!(labels.len(), BbBudgetHeuristic::ALL.len());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Plans always respect the budget and are deterministic.
            #[test]
            fn budget_respected_and_deterministic(budget in 0.0f64..250.0) {
                let wf = workflow();
                for h in BbBudgetHeuristic::ALL {
                    let p1 = plan(h, budget);
                    let p2 = plan(h, budget);
                    prop_assert_eq!(&p1, &p2, "{} must be deterministic", h.label());
                    let used: f64 = p1.bb_files().iter().map(|&f| wf.file(f).size).sum();
                    prop_assert!(used <= budget + 1e-9);
                }
            }
        }
    }
}
