//! High-level simulation entry point.
//!
//! [`SimulationBuilder`] wires a platform, a workflow, and a placement
//! policy into an [`Executor`](crate::executor) and runs it:
//!
//! ```
//! use wfbb_platform::{presets, BbMode};
//! use wfbb_storage::PlacementPolicy;
//! use wfbb_wms::SimulationBuilder;
//! use wfbb_workflow::WorkflowBuilder;
//!
//! let mut b = WorkflowBuilder::new("tiny");
//! let input = b.add_file("in", 32e6);
//! let out = b.add_file("out", 8e6);
//! b.task("t").category("proc").flops(3.68e10).cores(4)
//!     .input(input).output(out).add();
//! let wf = b.build().unwrap();
//!
//! let report = SimulationBuilder::new(presets::cori(1, BbMode::Private), wf)
//!     .placement(PlacementPolicy::AllBb)
//!     .run()
//!     .unwrap();
//! assert!(report.makespan.seconds() > 0.0);
//! ```

use wfbb_platform::{PlatformError, PlatformSpec};
use wfbb_resilience::CheckpointPolicy;
use wfbb_simcore::{Engine, SolveMode, TelemetryConfig};
use wfbb_storage::{FailoverPolicy, PlacementPlan, PlacementPolicy, StorageSystem};
use wfbb_workflow::Workflow;

use crate::executor::{Executor, ExecutorError, SchedulerPolicy};
use crate::fault::{FaultEvent, FaultSpec, RetryPolicy};
use crate::report::SimulationReport;

/// Errors surfaced by [`SimulationBuilder::run`].
#[derive(Debug)]
pub enum SimulationError {
    /// The platform specification failed validation.
    Platform(PlatformError),
    /// Execution failed (scheduling deadlock or exhausted retries).
    Execution(ExecutorError),
    /// The fault specification does not fit this platform or workflow
    /// (unknown BB device, unknown task name, ...).
    InvalidFaults(String),
}

impl std::fmt::Display for SimulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimulationError::Platform(e) => write!(f, "{e}"),
            SimulationError::Execution(e) => write!(f, "{e}"),
            SimulationError::InvalidFaults(msg) => write!(f, "invalid fault spec: {msg}"),
        }
    }
}

impl std::error::Error for SimulationError {}

/// Configures and runs one simulated workflow execution.
pub struct SimulationBuilder {
    platform: PlatformSpec,
    workflow: Workflow,
    placement: PlacementPolicy,
    plan_override: Option<PlacementPlan>,
    io_concurrency: Option<usize>,
    scheduler: SchedulerPolicy,
    dynamic_placer: Option<Box<dyn crate::dynamic::DynamicPlacer>>,
    solve_mode: SolveMode,
    telemetry: TelemetryConfig,
    faults: FaultSpec,
    retry: RetryPolicy,
    failover: FailoverPolicy,
    checkpoint: Option<CheckpointPolicy>,
}

impl SimulationBuilder {
    /// Starts configuring a simulation of `workflow` on `platform`.
    ///
    /// Defaults: all files in the burst buffer
    /// ([`PlacementPolicy::AllBb`]), per-task I/O concurrency equal to the
    /// task's core count.
    pub fn new(platform: PlatformSpec, workflow: Workflow) -> Self {
        SimulationBuilder {
            platform,
            workflow,
            placement: PlacementPolicy::AllBb,
            plan_override: None,
            io_concurrency: None,
            scheduler: SchedulerPolicy::default(),
            dynamic_placer: None,
            solve_mode: SolveMode::default(),
            telemetry: TelemetryConfig::default(),
            faults: FaultSpec::new(),
            retry: RetryPolicy::default(),
            failover: FailoverPolicy::default(),
            checkpoint: None,
        }
    }

    /// Injects a fault schedule into the run (default: none). The spec
    /// is resolved against the platform when [`SimulationBuilder::run`]
    /// is called; see `docs/failure-model.md` for semantics. An empty
    /// spec leaves the simulation bitwise-identical to an uninjected
    /// one.
    pub fn faults(mut self, spec: FaultSpec) -> Self {
        self.faults = spec;
        self
    }

    /// Sets the retry policy for kill faults (default: 3 attempts, no
    /// backoff).
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the tier-failover policy applied after a BB device loss
    /// (default: [`FailoverPolicy::RerouteToPfs`]).
    pub fn failover(mut self, policy: FailoverPolicy) -> Self {
        self.failover = policy;
        self
    }

    /// Enables periodic checkpointing (default: off): each task's
    /// compute is cut into `policy.interval`-second segments with an
    /// image write to the target tier between them, and a killed task
    /// restores from its last image instead of re-running from the read
    /// phase. Checkpoint writes are ordinary scheduled I/O — they pay
    /// real contention and show up as the `checkpoint_io` decomposition
    /// term. See `docs/failure-model.md`.
    pub fn checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = Some(policy);
        self
    }

    /// Sets the file placement policy.
    pub fn placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Uses a pre-resolved placement plan (e.g. from a capacity-aware
    /// heuristic in `wfbb_storage::heuristics`) instead of a declarative
    /// policy. The plan must be index-aligned with this workflow's files.
    pub fn placement_plan(mut self, plan: PlacementPlan) -> Self {
        self.plan_override = Some(plan);
        self
    }

    /// Overrides the per-task I/O concurrency limit (default: the task's
    /// core count, the paper's "I/O parallelism scales with cores"
    /// assumption).
    pub fn io_concurrency(mut self, limit: usize) -> Self {
        self.io_concurrency = Some(limit);
        self
    }

    /// Sets the node-assignment policy (default:
    /// [`SchedulerPolicy::PipelineAffinity`]).
    pub fn scheduler(mut self, scheduler: SchedulerPolicy) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Installs an online placer that decides every write's tier at
    /// runtime (overriding the static plan for non-input files; staging
    /// still follows the plan). See [`crate::dynamic`].
    pub fn dynamic_placer(mut self, placer: Box<dyn crate::dynamic::DynamicPlacer>) -> Self {
        self.dynamic_placer = Some(placer);
        self
    }

    /// Selects the engine's solve strategy (default:
    /// [`SolveMode::Incremental`]). The naive mode exists for A/B
    /// verification of the incremental engine.
    pub fn solve_mode(mut self, mode: SolveMode) -> Self {
        self.solve_mode = mode;
        self
    }

    /// Enables engine telemetry sampling for this run. The resulting
    /// [`SimulationReport::telemetry`](crate::report::SimulationReport::telemetry)
    /// carries per-resource time series, utilization histograms, and engine
    /// counters; the trace exporters in [`crate::traceexport`] include them
    /// in their output. Telemetry is off by default (zero sampling cost).
    pub fn telemetry(mut self, config: TelemetryConfig) -> Self {
        self.telemetry = config;
        self
    }

    /// Runs the simulation and returns the report.
    pub fn run(self) -> Result<SimulationReport, SimulationError> {
        self.platform
            .validate()
            .map_err(SimulationError::Platform)?;
        let mut engine = Engine::new();
        engine.set_solve_mode(self.solve_mode);
        engine.set_telemetry_config(self.telemetry);
        let instance = self.platform.instantiate(&mut engine);
        let mut storage = StorageSystem::new(instance);
        storage.set_failover(self.failover);
        let fault_events = self
            .faults
            .resolve(storage.platform.bb_devices())
            .map_err(|e| SimulationError::InvalidFaults(e.message))?;
        for ev in &fault_events {
            if let FaultEvent::TaskKill { task, .. } = ev {
                if !self.workflow.tasks().iter().any(|t| t.name == *task) {
                    return Err(SimulationError::InvalidFaults(format!(
                        "kill targets unknown task {task:?}"
                    )));
                }
            }
        }
        let plan = match self.plan_override {
            Some(plan) => {
                assert_eq!(
                    plan.len(),
                    self.workflow.file_count(),
                    "placement plan must cover every workflow file"
                );
                plan
            }
            None => self.placement.plan(&self.workflow),
        };
        let mut executor = Executor::new(
            engine,
            storage,
            self.workflow,
            plan,
            self.io_concurrency,
            self.scheduler,
        );
        if let Some(placer) = self.dynamic_placer {
            executor.set_dynamic_placer(placer);
        }
        if let Some(policy) = self.checkpoint {
            executor.set_checkpoint_policy(policy);
        }
        if !fault_events.is_empty() {
            executor.set_fault_injection(fault_events, self.retry);
        }
        executor.run().map_err(SimulationError::Execution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfbb_platform::{presets, BbMode};
    use wfbb_storage::Tier;
    use wfbb_workflow::WorkflowBuilder;

    /// One SWarp-like pipeline: 2 inputs -> resample -> 2 mids -> combine
    /// -> 1 output.
    fn pipeline_workflow(cores: usize) -> Workflow {
        let mut b = WorkflowBuilder::new("pipeline");
        let in0 = b.add_file("in0", 32e6);
        let in1 = b.add_file("in1", 16e6);
        let mid0 = b.add_file("mid0", 32e6);
        let mid1 = b.add_file("mid1", 16e6);
        let out = b.add_file("out", 50e6);
        b.task("resample")
            .category("resample")
            .flops(3.68e11)
            .cores(cores)
            .pipeline(0)
            .inputs([in0, in1])
            .outputs([mid0, mid1])
            .add();
        b.task("combine")
            .category("combine")
            .flops(3.68e11)
            .cores(cores)
            .pipeline(0)
            .inputs([mid0, mid1])
            .output(out)
            .add();
        b.build().unwrap()
    }

    #[test]
    fn simple_pipeline_runs_on_all_three_architectures() {
        for platform in presets::paper_configs(1) {
            let report = SimulationBuilder::new(platform.clone(), pipeline_workflow(4))
                .placement(PlacementPolicy::AllBb)
                .run()
                .unwrap();
            assert!(
                report.makespan.seconds() > 0.0,
                "{}: zero makespan",
                platform.name
            );
            assert_eq!(report.tasks.len(), 2);
            let r = report.task_by_name("resample").unwrap();
            let c = report.task_by_name("combine").unwrap();
            assert!(c.start >= r.end, "combine starts after resample ends");
            assert!(report.stage_in_time > 0.0, "inputs were staged");
            assert!(report.bb_bytes > 0.0);
        }
    }

    #[test]
    fn all_pfs_never_touches_the_bb() {
        let report =
            SimulationBuilder::new(presets::cori(1, BbMode::Private), pipeline_workflow(4))
                .placement(PlacementPolicy::AllPfs)
                .run()
                .unwrap();
        assert_eq!(report.bb_bytes, 0.0);
        assert!(report.pfs_bytes > 0.0);
        assert_eq!(report.stage_in_time, 0.0, "nothing to stage");
    }

    #[test]
    fn bb_beats_pfs_on_cori() {
        let wf = pipeline_workflow(4);
        let bb = SimulationBuilder::new(presets::cori(1, BbMode::Private), wf.clone())
            .placement(PlacementPolicy::AllBb)
            .run()
            .unwrap();
        let pfs = SimulationBuilder::new(presets::cori(1, BbMode::Private), wf)
            .placement(PlacementPolicy::AllPfs)
            .run()
            .unwrap();
        // Even charging the stage-in, the BB's bandwidth advantage over the
        // 100 MB/s PFS should win for MB-scale files.
        assert!(
            bb.makespan < pfs.makespan,
            "BB {} !< PFS {}",
            bb.makespan,
            pfs.makespan
        );
    }

    #[test]
    fn summit_outperforms_cori_for_the_same_workflow() {
        let wf = pipeline_workflow(4);
        let cori = SimulationBuilder::new(presets::cori(1, BbMode::Private), wf.clone())
            .placement(PlacementPolicy::AllBb)
            .run()
            .unwrap();
        let summit = SimulationBuilder::new(presets::summit(1), wf)
            .placement(PlacementPolicy::AllBb)
            .run()
            .unwrap();
        assert!(summit.makespan < cori.makespan);
        assert!(summit.stage_in_time < cori.stage_in_time);
    }

    #[test]
    fn striped_mode_is_slower_than_private_for_small_files() {
        let wf = pipeline_workflow(4);
        let private = SimulationBuilder::new(presets::cori(1, BbMode::Private), wf.clone())
            .placement(PlacementPolicy::AllBb)
            .run()
            .unwrap();
        let striped = SimulationBuilder::new(presets::cori(1, BbMode::Striped), wf)
            .placement(PlacementPolicy::AllBb)
            .run()
            .unwrap();
        assert!(striped.makespan > private.makespan);
    }

    #[test]
    fn more_cores_never_hurt() {
        let p1 = SimulationBuilder::new(presets::summit(1), pipeline_workflow(1))
            .run()
            .unwrap();
        let p16 = SimulationBuilder::new(presets::summit(1), pipeline_workflow(16))
            .run()
            .unwrap();
        assert!(p16.makespan <= p1.makespan);
    }

    #[test]
    fn task_phases_are_ordered() {
        let report = SimulationBuilder::new(presets::summit(1), pipeline_workflow(2))
            .run()
            .unwrap();
        for t in &report.tasks {
            assert!(t.start <= t.read_end);
            assert!(t.read_end <= t.compute_end);
            assert!(t.compute_end <= t.end);
        }
    }

    #[test]
    fn fraction_zero_equals_all_pfs_inputs() {
        let wf = pipeline_workflow(2);
        let frac0 = SimulationBuilder::new(presets::cori(1, BbMode::Private), wf.clone())
            .placement(PlacementPolicy::InputFraction {
                fraction: 0.0,
                intermediates: Tier::Pfs,
                outputs: Tier::Pfs,
            })
            .run()
            .unwrap();
        let all_pfs = SimulationBuilder::new(presets::cori(1, BbMode::Private), wf)
            .placement(PlacementPolicy::AllPfs)
            .run()
            .unwrap();
        assert!(
            (frac0.makespan.seconds() - all_pfs.makespan.seconds()).abs() < 1e-6,
            "{} vs {}",
            frac0.makespan,
            all_pfs.makespan
        );
    }

    #[test]
    fn engine_stall_surfaces_as_typed_error() {
        use wfbb_simcore::{EngineError, FlowSpec};
        use wfbb_storage::StorageSystem;
        use wfbb_workflow::TaskId;

        let platform = presets::summit(1);
        platform.validate().unwrap();
        let mut engine = Engine::new();
        let instance = platform.instantiate(&mut engine);
        // Poison the engine: a flow whose rate cap is below the solver
        // tolerance can never progress, so once everything else finishes
        // the engine stalls instead of completing.
        let route = vec![instance.pfs_disk];
        engine.spawn_flow(
            FlowSpec::new(1.0, route).with_rate_cap(1e-12),
            crate::executor::JobTag {
                job: 0,
                tag: crate::executor::Tag::Compute(TaskId::from_index(0)),
            },
        );
        let storage = StorageSystem::new(instance);
        let wf = pipeline_workflow(2);
        let plan = PlacementPolicy::AllBb.plan(&wf);
        let executor = Executor::new(engine, storage, wf, plan, None, SchedulerPolicy::default());
        let err = executor.run().unwrap_err();
        assert!(
            matches!(err, ExecutorError::Engine(EngineError::Stalled { .. })),
            "expected stall, got {err:?}"
        );
        assert!(err.to_string().contains("simulation stalled"));
    }

    #[test]
    fn solve_modes_agree_end_to_end() {
        use wfbb_simcore::SolveMode;
        let wf = pipeline_workflow(4);
        let run = |mode| {
            SimulationBuilder::new(presets::cori(1, BbMode::Private), wf.clone())
                .placement(PlacementPolicy::AllBb)
                .solve_mode(mode)
                .run()
                .unwrap()
        };
        let naive = run(SolveMode::Naive);
        let incr = run(SolveMode::Incremental);
        assert!(
            (naive.makespan.seconds() - incr.makespan.seconds()).abs() < 1e-9,
            "{} vs {}",
            naive.makespan,
            incr.makespan
        );
    }

    #[test]
    fn invalid_platform_is_reported() {
        let mut p = presets::summit(1);
        p.pfs_disk_bw = -5.0;
        let err = SimulationBuilder::new(p, pipeline_workflow(1)).run();
        assert!(matches!(err, Err(SimulationError::Platform(_))));
    }

    #[test]
    fn empty_workflow_completes_instantly() {
        let wf = WorkflowBuilder::new("empty").build().unwrap();
        let report = SimulationBuilder::new(presets::summit(1), wf)
            .run()
            .unwrap();
        assert_eq!(report.makespan.seconds(), 0.0);
        assert!(report.tasks.is_empty());
    }

    #[test]
    fn scheduler_policies_place_tasks_differently() {
        // Eight independent 1-core tasks, two nodes.
        let mut b = WorkflowBuilder::new("spread");
        for i in 0..8 {
            let f = b.add_file(format!("o{i}"), 1e6);
            b.task(format!("t{i}"))
                .category("w")
                .flops(1e11)
                .cores(1)
                .output(f)
                .add();
        }
        let wf = b.build().unwrap();
        let run = |policy| {
            SimulationBuilder::new(presets::summit(2), wf.clone())
                .scheduler(policy)
                .run()
                .unwrap()
        };
        let rr = run(SchedulerPolicy::RoundRobin);
        let nodes_rr: std::collections::HashSet<_> = rr.tasks.iter().map(|t| t.node).collect();
        assert_eq!(nodes_rr.len(), 2, "round robin uses both nodes");
        // Round robin alternates exactly.
        for t in &rr.tasks {
            assert_eq!(t.node, t.task.index() % 2);
        }
        let ll = run(SchedulerPolicy::LeastLoaded);
        let nodes_ll: std::collections::HashSet<_> = ll.tasks.iter().map(|t| t.node).collect();
        assert_eq!(nodes_ll.len(), 2, "least loaded balances across nodes");
    }

    #[test]
    fn least_loaded_ignores_pipeline_pinning() {
        // Two pipelines whose tags both map to node 0 under affinity.
        let mut b = WorkflowBuilder::new("pin");
        for p in [0usize, 2] {
            let f = b.add_file(format!("o{p}"), 1e6);
            b.task(format!("t{p}"))
                .category("w")
                .flops(1e12)
                .cores(32)
                .pipeline(p)
                .output(f)
                .add();
        }
        let wf = b.build().unwrap();
        let affinity = SimulationBuilder::new(presets::summit(2), wf.clone())
            .run()
            .unwrap();
        // pipeline 0 and 2 both mod 2 == 0: serialized on node 0.
        assert!(affinity.tasks.iter().all(|t| t.node == 0));
        let balanced = SimulationBuilder::new(presets::summit(2), wf)
            .scheduler(SchedulerPolicy::LeastLoaded)
            .run()
            .unwrap();
        let nodes: std::collections::HashSet<_> = balanced.tasks.iter().map(|t| t.node).collect();
        assert_eq!(nodes.len(), 2);
        assert!(
            balanced.makespan < affinity.makespan,
            "balancing helps here"
        );
    }

    #[test]
    fn explicit_placement_plan_overrides_policy() {
        use wfbb_storage::Tier;
        let wf = pipeline_workflow(4);
        // Plan: everything on PFS despite an AllBb policy.
        let plan = wfbb_storage::PlacementPlan::from_tiers(vec![Tier::Pfs; wf.file_count()]);
        let report = SimulationBuilder::new(presets::summit(1), wf)
            .placement(PlacementPolicy::AllBb)
            .placement_plan(plan)
            .run()
            .unwrap();
        assert_eq!(report.bb_bytes, 0.0);
    }

    #[test]
    #[should_panic(expected = "cover every workflow file")]
    fn misaligned_plan_is_rejected() {
        let wf = pipeline_workflow(4);
        let plan = wfbb_storage::PlacementPlan::from_tiers(vec![]);
        let _ = SimulationBuilder::new(presets::summit(1), wf)
            .placement_plan(plan)
            .run();
    }

    #[test]
    fn full_bb_spills_writes_to_the_pfs() {
        let mut platform = presets::summit(1);
        // Room for the staged inputs but nothing else.
        platform.bb_capacity = 50e6;
        let report = SimulationBuilder::new(platform, pipeline_workflow(4))
            .placement(PlacementPolicy::AllBb)
            .run()
            .unwrap();
        assert!(report.spilled_files > 0, "something must spill");
        assert!(report.pfs_bytes > 0.0, "spilled files travel via the PFS");
        assert!(
            report.bb_peak_bytes <= 50e6 + 1.0,
            "capacity respected: peak {}",
            report.bb_peak_bytes
        );
    }

    #[test]
    fn tiny_bb_capacity_still_completes_with_pfs_performance() {
        let mut tiny = presets::summit(1);
        tiny.bb_capacity = 1.0; // effectively no BB
        let wf = pipeline_workflow(4);
        let constrained = SimulationBuilder::new(tiny, wf.clone())
            .placement(PlacementPolicy::AllBb)
            .run()
            .unwrap();
        let all_pfs = SimulationBuilder::new(presets::summit(1), wf)
            .placement(PlacementPolicy::AllPfs)
            .run()
            .unwrap();
        // Everything spilled: performance degrades to the PFS baseline.
        assert!(
            (constrained.makespan.seconds() - all_pfs.makespan.seconds()).abs()
                < 0.05 * all_pfs.makespan.seconds(),
            "{} vs {}",
            constrained.makespan,
            all_pfs.makespan
        );
        assert_eq!(constrained.bb_bytes, 0.0);
    }

    #[test]
    fn ample_capacity_never_spills() {
        let report = SimulationBuilder::new(presets::summit(1), pipeline_workflow(4))
            .placement(PlacementPolicy::AllBb)
            .run()
            .unwrap();
        assert_eq!(report.spilled_files, 0);
        assert!(report.bb_peak_bytes > 0.0);
    }

    #[test]
    fn independent_tasks_share_a_node_concurrently() {
        // Two 1-core tasks with no dependencies on one node: they overlap.
        let mut b = WorkflowBuilder::new("par");
        let o0 = b.add_file("o0", 1e6);
        let o1 = b.add_file("o1", 1e6);
        b.task("a")
            .category("work")
            .flops(4.912e10)
            .cores(1)
            .output(o0)
            .add();
        b.task("b")
            .category("work")
            .flops(4.912e10)
            .cores(1)
            .output(o1)
            .add();
        let wf = b.build().unwrap();
        let report = SimulationBuilder::new(presets::summit(1), wf)
            .run()
            .unwrap();
        let a = report.task_by_name("a").unwrap();
        let b_ = report.task_by_name("b").unwrap();
        assert!(
            a.start < b_.end && b_.start < a.end,
            "tasks overlap in time"
        );
    }
}
