//! Per-figure regeneration benchmarks — one benchmark per reproduced
//! table/figure, running exactly the sweep the corresponding experiment
//! binary runs (Table I, Figures 4–11, 13, 14).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_regeneration");
    group.sample_size(10);
    for name in wfbb_bench::FIGURE_IDS {
        let run = wfbb_experiments::figures::by_name(name).expect("known figure");
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| black_box(run()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_figures
}
criterion_main!(benches);
