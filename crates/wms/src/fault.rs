//! Fault injection re-exports.
//!
//! The fault schedule grammar, resolved event types, and retry policy
//! moved to the dedicated [`wfbb_resilience`] crate (which also owns
//! checkpoint policies); this module re-exports them so existing
//! `wfbb_wms::FaultSpec`-style paths keep working. See
//! `docs/failure-model.md` for semantics.

pub use wfbb_resilience::{FaultEvent, FaultSpec, FaultSpecError, RetryPolicy};
