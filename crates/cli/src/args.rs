//! Argument parsing for the `wfbb` CLI.
//!
//! Deliberately dependency-free: flags are `--key value` pairs; specs use
//! small colon-separated mini-grammars (`swarp:4`, `cori:private`,
//! `fraction:0.5`) so invocations stay one-liners.

use std::collections::HashMap;

use wfbb_platform::{presets, BbMode, PlatformSpec};
use wfbb_storage::PlacementPolicy;
use wfbb_wms::SchedulerPolicy;
use wfbb_workflow::Workflow;
use wfbb_workloads::{GenomesConfig, SwarpConfig};

/// A parsed command line: subcommand plus `--key value` options.
#[derive(Debug, Clone)]
pub struct Args {
    /// The subcommand (`simulate`, `generate`, `inspect`).
    pub command: String,
    options: HashMap<String, String>,
}

/// CLI errors, printed to stderr with usage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl Args {
    /// Parses raw arguments (without the program name), treating any
    /// flag named in `switches` as a valueless boolean (present ⇒
    /// `"true"`, query with [`Args::flag`]). All other flags require a
    /// value.
    pub fn parse_with_switches(raw: &[String], switches: &[&str]) -> Result<Args, CliError> {
        let Some(command) = raw.first() else {
            return Err(CliError("missing subcommand".into()));
        };
        let mut options = HashMap::new();
        let mut i = 1;
        while i < raw.len() {
            let key = raw[i]
                .strip_prefix("--")
                .ok_or_else(|| CliError(format!("expected --flag, got {:?}", raw[i])))?;
            if switches.contains(&key) {
                options.insert(key.to_string(), "true".to_string());
                i += 1;
                continue;
            }
            let value = raw
                .get(i + 1)
                .ok_or_else(|| CliError(format!("flag --{key} needs a value")))?;
            options.insert(key.to_string(), value.clone());
            i += 2;
        }
        Ok(Args {
            command: command.clone(),
            options,
        })
    }

    /// Whether a boolean switch was given (see
    /// [`Args::parse_with_switches`]).
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// An option's value, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// An option's value or a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// A required option.
    pub fn require(&self, key: &str) -> Result<&str, CliError> {
        self.get(key)
            .ok_or_else(|| CliError(format!("missing required flag --{key}")))
    }

    /// Errors on any flag outside `allowed` — unknown (or removed) flags
    /// fail loudly instead of being silently ignored.
    pub fn check_flags(&self, allowed: &[&str]) -> Result<(), CliError> {
        let mut unknown: Vec<&str> = self
            .options
            .keys()
            .map(String::as_str)
            .filter(|k| !allowed.contains(k))
            .collect();
        unknown.sort_unstable();
        if let Some(k) = unknown.first() {
            return Err(CliError(format!(
                "unknown flag --{k} for subcommand {:?}",
                self.command
            )));
        }
        Ok(())
    }
}

/// Parses a platform spec: `cori:private`, `cori:striped`, `summit`,
/// `generic`, or a path to a platform JSON file. `nodes` scales presets.
pub fn parse_platform(spec: &str, nodes: usize) -> Result<PlatformSpec, CliError> {
    let platform = match spec {
        "cori:private" | "cori" => presets::cori(nodes, BbMode::Private),
        "cori:striped" => presets::cori(nodes, BbMode::Striped),
        "summit" | "summit:onnode" => presets::summit(nodes),
        "generic" => presets::generic(nodes),
        path => {
            let json = std::fs::read_to_string(path)
                .map_err(|e| CliError(format!("cannot read platform {path:?}: {e}")))?;
            PlatformSpec::from_json(&json)
                .map_err(|e| CliError(format!("invalid platform {path:?}: {e}")))?
        }
    };
    Ok(platform)
}

/// Parses a workflow spec: `swarp:<pipelines>[:<cores>]`,
/// `genomes:<chromosomes>`, `wfcommons:<path>[:<gflops_per_core>]`, or a
/// path to a workflow JSON file in the native format.
pub fn parse_workflow(spec: &str) -> Result<Workflow, CliError> {
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        ["wfcommons", path] => load_wfcommons(path, 36.80),
        ["wfcommons", path, gflops] => {
            let speed: f64 = gflops
                .parse()
                .map_err(|_| CliError(format!("bad per-core speed {gflops:?}")))?;
            load_wfcommons(path, speed)
        }
        ["swarp", pipelines] => {
            let p = parse_usize(pipelines, "swarp pipeline count")?;
            Ok(SwarpConfig::new(p).build())
        }
        ["swarp", pipelines, cores] => {
            let p = parse_usize(pipelines, "swarp pipeline count")?;
            let c = parse_usize(cores, "swarp cores per task")?;
            Ok(SwarpConfig::new(p).with_cores_per_task(c).build())
        }
        ["genomes", chromosomes] => {
            let c = parse_usize(chromosomes, "genomes chromosome count")?;
            Ok(GenomesConfig::new(c).build())
        }
        [path] => {
            let json = std::fs::read_to_string(path)
                .map_err(|e| CliError(format!("cannot read workflow {path:?}: {e}")))?;
            Workflow::from_json(&json)
                .map_err(|e| CliError(format!("invalid workflow {path:?}: {e}")))
        }
        _ => Err(CliError(format!("unrecognized workflow spec {spec:?}"))),
    }
}

/// Parses a placement spec: `allbb`, `allpfs`, `fraction:<f>`,
/// `threshold:<bytes>`.
pub fn parse_placement(spec: &str) -> Result<PlacementPolicy, CliError> {
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        ["allbb"] => Ok(PlacementPolicy::AllBb),
        ["allpfs"] => Ok(PlacementPolicy::AllPfs),
        ["fraction", f] => {
            let fraction: f64 = f
                .parse()
                .map_err(|_| CliError(format!("bad fraction {f:?}")))?;
            if !(0.0..=1.0).contains(&fraction) {
                return Err(CliError(format!("fraction {fraction} outside [0, 1]")));
            }
            Ok(PlacementPolicy::FractionToBb { fraction })
        }
        ["threshold", bytes] => {
            let min_bytes: f64 = bytes
                .parse()
                .map_err(|_| CliError(format!("bad byte threshold {bytes:?}")))?;
            Ok(PlacementPolicy::BySizeThreshold { min_bytes })
        }
        _ => Err(CliError(format!("unrecognized placement spec {spec:?}"))),
    }
}

/// Parses a scheduler spec: `affinity`, `least-loaded`, `round-robin`.
pub fn parse_scheduler(spec: &str) -> Result<SchedulerPolicy, CliError> {
    match spec {
        "affinity" => Ok(SchedulerPolicy::PipelineAffinity),
        "least-loaded" => Ok(SchedulerPolicy::LeastLoaded),
        "round-robin" => Ok(SchedulerPolicy::RoundRobin),
        other => Err(CliError(format!("unrecognized scheduler {other:?}"))),
    }
}

fn load_wfcommons(path: &str, gflops: f64) -> Result<Workflow, CliError> {
    let json = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read workflow {path:?}: {e}")))?;
    wfbb_workflow::wfcommons::from_wfcommons_json(&json, gflops)
        .map_err(|e| CliError(format!("invalid WfCommons trace {path:?}: {e}")))
}

fn parse_usize(s: &str, what: &str) -> Result<usize, CliError> {
    let v: usize = s
        .parse()
        .map_err(|_| CliError(format!("bad {what}: {s:?}")))?;
    if v == 0 {
        return Err(CliError(format!("{what} must be positive")));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Result<Args, CliError> {
        let raw: Vec<String> = list.iter().map(|s| s.to_string()).collect();
        Args::parse_with_switches(&raw, &[])
    }

    #[test]
    fn parses_subcommand_and_flags() {
        let a = args(&["simulate", "--workflow", "swarp:4", "--platform", "cori"]).unwrap();
        assert_eq!(a.command, "simulate");
        assert_eq!(a.get("workflow"), Some("swarp:4"));
        assert_eq!(a.get_or("nodes", "1"), "1");
        assert!(a.require("platform").is_ok());
        assert!(a.require("missing").is_err());
    }

    #[test]
    fn rejects_malformed_flags() {
        assert!(args(&[]).is_err());
        assert!(args(&["simulate", "notaflag"]).is_err());
        assert!(args(&["simulate", "--dangling"]).is_err());
    }

    #[test]
    fn switches_take_no_value() {
        let raw: Vec<String> = ["campaign", "--progress", "--jobs", "5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let a = Args::parse_with_switches(&raw, &["progress"]).unwrap();
        assert!(a.flag("progress"));
        assert!(!a.flag("verbose"));
        assert_eq!(a.get("jobs"), Some("5"));
        // Without the switch registered, a trailing valueless flag is
        // malformed.
        let raw: Vec<String> = ["campaign", "--progress"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(Args::parse_with_switches(&raw, &[]).is_err());
        assert!(Args::parse_with_switches(&raw, &["progress"]).is_ok());
    }

    #[test]
    fn platform_presets_parse() {
        assert_eq!(parse_platform("cori", 2).unwrap().compute_nodes, 2);
        assert_eq!(
            parse_platform("cori:striped", 1).unwrap().bb.label(),
            "striped"
        );
        assert_eq!(parse_platform("summit", 1).unwrap().bb.label(), "on-node");
        assert!(parse_platform("generic", 1).is_ok());
        assert!(parse_platform("/nonexistent.json", 1).is_err());
    }

    #[test]
    fn workflow_specs_parse() {
        let wf = parse_workflow("swarp:3").unwrap();
        assert_eq!(wf.task_count(), 6);
        let wf = parse_workflow("swarp:2:8").unwrap();
        assert_eq!(wf.tasks()[0].cores, 8);
        let wf = parse_workflow("genomes:2").unwrap();
        assert_eq!(wf.task_count(), 2 * 41 + 1);
        assert!(parse_workflow("swarp:0").is_err());
        assert!(parse_workflow("mystery:1").is_err());
    }

    #[test]
    fn wfcommons_spec_parses_a_trace_file() {
        let dir = std::env::temp_dir().join("wfbb-args-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        std::fs::write(
            &path,
            r#"{"workflow": {"tasks": [
                {"name": "t_ID1", "runtime": 2.0,
                 "files": [{"link": "output", "name": "o", "sizeInBytes": 5}]}
            ]}}"#,
        )
        .unwrap();
        let spec = format!("wfcommons:{}", path.display());
        let wf = parse_workflow(&spec).unwrap();
        assert_eq!(wf.task_count(), 1);
        // Custom per-core speed.
        let spec = format!("wfcommons:{}:10.0", path.display());
        let wf = parse_workflow(&spec).unwrap();
        assert!((wf.tasks()[0].flops - 2.0 * 10.0e9).abs() < 1.0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn placement_specs_parse() {
        assert_eq!(parse_placement("allbb").unwrap(), PlacementPolicy::AllBb);
        assert_eq!(parse_placement("allpfs").unwrap(), PlacementPolicy::AllPfs);
        assert_eq!(
            parse_placement("fraction:0.5").unwrap(),
            PlacementPolicy::FractionToBb { fraction: 0.5 }
        );
        assert!(parse_placement("fraction:2.0").is_err());
        assert!(parse_placement("fraction:x").is_err());
        assert!(matches!(
            parse_placement("threshold:1000000").unwrap(),
            PlacementPolicy::BySizeThreshold { .. }
        ));
        assert!(parse_placement("magic").is_err());
    }

    #[test]
    fn scheduler_specs_parse() {
        assert_eq!(
            parse_scheduler("affinity").unwrap(),
            SchedulerPolicy::PipelineAffinity
        );
        assert_eq!(
            parse_scheduler("round-robin").unwrap(),
            SchedulerPolicy::RoundRobin
        );
        assert!(parse_scheduler("chaotic").is_err());
    }
}
