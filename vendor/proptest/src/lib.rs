//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a self-contained property-testing harness with proptest's spelling: the
//! `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, a [`Strategy`] trait
//! with `prop_map`/`prop_flat_map`, range and tuple strategies,
//! `collection::{vec, btree_set}`, `option::of`, and `bits::u8::ANY`.
//!
//! Differences from upstream, deliberate for an offline stub:
//! - **No shrinking.** A failure reports the test name and case index; cases
//!   are deterministic in `(test name, case index)`, so failures reproduce
//!   exactly on re-run.
//! - **Regression files are not consulted.** Seeds recorded by upstream
//!   proptest (`*.proptest-regressions`) use its private RNG format; pinned
//!   failures should be (and in this repo are) written out as explicit
//!   `#[test]` cases alongside the properties.
//! - **Edge-biased first cases.** Case 0 draws every range at its minimum and
//!   case 1 at its maximum, so boundary values are always exercised; later
//!   cases sample uniformly.
//!
//! The default case count is 64, overridable with the `PROPTEST_CASES`
//! environment variable or `#![proptest_config(ProptestConfig::with_cases(n))]`.

use std::ops::{Range, RangeInclusive};

/// Runner configuration (only the case count is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property is false for this input.
    Fail(String),
    /// The input should be discarded (kept for API compatibility).
    Reject(String),
}

/// How the current case draws from ranges; cases 0 and 1 probe the extremes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Low,
    High,
    Uniform,
}

/// Deterministic per-case random source (xoshiro256++ seeded from the test
/// name and case index).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
    mode: Mode,
}

impl TestRng {
    fn for_case(name: &str, case: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut state = h ^ ((case as u64) << 32) ^ 0x9E37_79B9_7F4A_7C15;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
            mode: match case {
                0 => Mode::Low,
                1 => Mode::High,
                _ => Mode::Uniform,
            },
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[lo, hi]` (inclusive), honoring the edge mode.
    fn int_in(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        match self.mode {
            Mode::Low => lo,
            Mode::High => hi,
            Mode::Uniform => {
                let span = hi - lo;
                if span == u64::MAX {
                    self.next_u64()
                } else {
                    lo + self.next_u64() % (span + 1)
                }
            }
        }
    }

    /// Uniform float in `[lo, hi)` (or exactly `hi` when inclusive), honoring
    /// the edge mode.
    fn float_in(&mut self, lo: f64, hi: f64, inclusive: bool) -> f64 {
        debug_assert!(lo <= hi);
        match self.mode {
            Mode::Low => lo,
            Mode::High => {
                if inclusive || hi == lo {
                    hi
                } else {
                    // Largest representable value strictly below `hi`.
                    f64::from_bits(hi.to_bits() - 1).max(lo)
                }
            }
            Mode::Uniform => {
                let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = lo + (hi - lo) * unit;
                if !inclusive && v >= hi {
                    f64::from_bits(hi.to_bits() - 1).max(lo)
                } else {
                    v.min(hi)
                }
            }
        }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy `f`
    /// builds out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.int_in(self.start as u64, self.end as u64 - 1) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.int_in(*self.start() as u64, *self.end() as u64) as $t
            }
        }
    )*};
}

// Signed ranges would need offset mapping; the workspace only samples
// unsigned ranges.
int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        rng.float_in(self.start, self.end, false)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start() <= self.end(), "empty range strategy");
        rng.float_in(*self.start(), *self.end(), true)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.float_in(self.start as f64, self.end as f64, false) as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+),)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Anything accepted as a collection size: an exact `usize`, `a..b`, or
    /// `a..=b` (stand-in for proptest's `SizeRange` conversions).
    pub trait IntoSizeRange {
        /// Inclusive `(min, max)` bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty size range");
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// A `Vec` of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.int_in(self.min as u64, self.max as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with sizes drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// A `BTreeSet` of values from `element`, sized within `size` (best
    /// effort: if the element domain is too small to reach the minimum size,
    /// the set is as large as distinct draws allow).
    pub fn btree_set<S>(element: S, size: impl IntoSizeRange) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        let (min, max) = size.bounds();
        BTreeSetStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.int_in(self.min as u64, self.max as u64) as usize;
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < 16 * (target + 1) {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::{Mode, Strategy, TestRng};

    /// Strategy for `Option<T>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` or a value from `inner` (edge cases: case 0 is always `None`,
    /// case 1 always `Some`; otherwise `Some` with probability 3/4).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            let some = match rng.mode {
                Mode::Low => false,
                Mode::High => true,
                Mode::Uniform => !rng.next_u64().is_multiple_of(4),
            };
            some.then(|| self.inner.generate(rng))
        }
    }
}

/// Bit-level strategies (`bits::u8::ANY`).
pub mod bits {
    /// Strategies over all `u8` values.
    #[allow(non_snake_case)]
    pub mod u8 {
        use crate::{Strategy, TestRng};

        /// Strategy type of [`ANY`].
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Any `u8` (uniform; edge cases draw 0 and 255).
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = u8;

            fn generate(&self, rng: &mut TestRng) -> u8 {
                rng.int_in(0, 255) as u8
            }
        }
    }
}

/// Drives one property: runs `config.cases` deterministic cases (honoring the
/// `PROPTEST_CASES` environment override) and panics with the case index on
/// the first failure. Called by the `proptest!` macro expansion.
pub fn run_cases(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases);
    for index in 0..cases {
        let mut rng = TestRng::for_case(name, index);
        match case(&mut rng) {
            Ok(()) | Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(message)) => panic!(
                "property `{name}` failed at case {index}/{cases}: {message} \
                 (cases are deterministic; re-run to reproduce)"
            ),
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_internal! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_internal! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_internal {
    (config = $config:expr;) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(&$config, stringify!($name), |__rng| {
                let ($($arg,)+) = ($($crate::Strategy::generate(&$strategy, __rng),)+);
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                __outcome
            });
        }
        $crate::__proptest_internal! { config = $config; $($rest)* }
    };
}

/// Fails the current case if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// The glob-importable surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        let mut second = Vec::new();
        for out in [&mut first, &mut second] {
            super::run_cases(&ProptestConfig::with_cases(5), "det", |rng| {
                out.push(Strategy::generate(&(0u64..1000), rng));
                Ok(())
            });
        }
        assert_eq!(first, second);
        assert_eq!(first.len(), 5);
    }

    #[test]
    fn edge_cases_probe_bounds() {
        let mut draws = Vec::new();
        super::run_cases(&ProptestConfig::with_cases(2), "edges", |rng| {
            draws.push(Strategy::generate(&(3usize..10), rng));
            Ok(())
        });
        assert_eq!(draws, vec![3, 9]);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_index() {
        super::run_cases(&ProptestConfig::with_cases(10), "boom", |rng| {
            let v = Strategy::generate(&(0u64..100), rng);
            Err(TestCaseError::Fail(format!("v = {v}")))
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// The macro wires patterns, strategies, and assertions together.
        #[test]
        fn macro_end_to_end(
            a in 1usize..10,
            mut b in 0.5f64..2.0,
            (lo, hi) in (0u32..50, 50u32..100),
            items in crate::collection::vec(0u64..5, 1..=4),
            set in crate::collection::btree_set(0usize..8, 1..=3),
            maybe in crate::option::of(1u8..=9),
            raw in crate::bits::u8::ANY,
        ) {
            b += 1.0;
            prop_assert!((1..10).contains(&a));
            // Note `<=`: the largest draw below 2.0 plus 1.0 rounds up to
            // exactly 3.0 at f64 precision.
            prop_assert!((1.5..=3.0).contains(&b));
            prop_assert!(lo < hi, "lo {} hi {}", lo, hi);
            prop_assert!(!items.is_empty() && items.len() <= 4);
            prop_assert!(!set.is_empty() && set.len() <= 3);
            if let Some(m) = maybe {
                prop_assert!((1..=9).contains(&m));
            }
            let _ = raw;
            prop_assert_eq!(a + 1, 1 + a);
        }
    }

    proptest! {
        /// Flat-mapped strategies see dependent inputs.
        #[test]
        fn flat_map_dependent((n, xs) in (1usize..5).prop_flat_map(|n| {
            (0usize..=n).prop_map(move |_| n).prop_flat_map(move |n| {
                ((n..n + 1), crate::collection::vec(0usize..n.max(1), n))
            })
        })) {
            prop_assert_eq!(xs.len(), n);
        }
    }
}
