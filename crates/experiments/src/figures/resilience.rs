//! Extension experiment: resilience to burst-buffer node failures.
//!
//! The paper models fault-free executions; `docs/failure-model.md`
//! extends the simulator with deterministic fault injection. This
//! experiment quantifies the cost of losing one BB node of Cori's
//! striped allocation while SWarp runs, sweeping *when* the node dies
//! (from mid-stage-in to late in the run) against *where* the affected
//! accesses fail over to ([`FailoverPolicy::RerouteToPfs`] vs
//! [`FailoverPolicy::SurvivingBb`]).
//!
//! Finding: the cost of a failure is workload-dependent, and for SWarp
//! the sign is counterintuitive. The paper shows striped-BB SWarp is
//! *metadata-bound* (Figs. 10–12): each stripe's slow metadata service
//! serializes the many-small-files pattern. Killing a stripe and
//! re-routing to the PFS therefore moves the affected I/O *off* the
//! bottleneck — early failures with PFS failover can finish *faster*
//! than the fault-free baseline, while surviving-BB failover keeps
//! paying the striped-metadata tax. The resilience machinery measures
//! exactly this: every faulted run completes, lost in-flight work is
//! attributed, and the failover policy decides which tier's
//! pathologies the recovered I/O inherits.

use wfbb_platform::{presets, BbMode, PlatformSpec};
use wfbb_storage::{FailoverPolicy, PlacementPolicy};
use wfbb_wms::{FaultEvent, FaultSpec, SimulationBuilder, SimulationReport};
use wfbb_workloads::SwarpConfig;

use crate::harness::par_map;
use crate::table::{f2, Table};

/// Compute nodes; one full SWarp pipeline set per the Figure 10 setup.
const NODES: usize = 1;

/// Failure times as fractions of the fault-free makespan.
const WHEN: [f64; 4] = [0.10, 0.25, 0.50, 0.75];

fn swarp() -> wfbb_workflow::Workflow {
    SwarpConfig::new(2).with_cores_per_task(8).build()
}

fn platform() -> PlatformSpec {
    presets::cori(NODES, BbMode::Striped)
}

fn run_one(fault_time: Option<f64>, failover: FailoverPolicy) -> SimulationReport {
    let mut builder = SimulationBuilder::new(platform(), swarp())
        .placement(PlacementPolicy::AllBb)
        .failover(failover);
    if let Some(t) = fault_time {
        let mut spec = FaultSpec::new();
        spec.push(FaultEvent::BbNodeDown { time: t, device: 0 });
        builder = builder.faults(spec);
    }
    builder.run().expect("resilience run succeeds")
}

/// Builds the failure-time x failover-policy table.
pub fn run() -> Vec<Table> {
    let baseline = run_one(None, FailoverPolicy::RerouteToPfs);
    let m0 = baseline.makespan.seconds();

    let grid: Vec<(f64, FailoverPolicy)> = WHEN
        .iter()
        .flat_map(|&w| {
            [FailoverPolicy::RerouteToPfs, FailoverPolicy::SurvivingBb]
                .into_iter()
                .map(move |p| (w, p))
        })
        .collect();
    let reports = par_map(grid.clone(), |&(w, p)| run_one(Some(w * m0), p));

    let mut t = Table::new(
        "Resilience: one BB node lost at time t, SWarp on Cori striped",
        &[
            "failure at",
            "failover",
            "makespan (s)",
            "overhead",
            "lost in flight (MB)",
            "files re-sourced",
        ],
    );
    t.push_row(vec![
        "none (baseline)".into(),
        "-".into(),
        f2(m0),
        "1.00x".into(),
        "0.00".into(),
        "0".into(),
    ]);
    for ((w, p), r) in grid.iter().zip(&reports) {
        let resourced: usize = r.faults.iter().map(|f| f.cancelled_flows).sum();
        t.push_row(vec![
            format!("{:.0}% of run", w * 100.0),
            match p {
                FailoverPolicy::RerouteToPfs => "pfs",
                FailoverPolicy::SurvivingBb => "surviving-bb",
            }
            .into(),
            f2(r.makespan.seconds()),
            format!("{:.2}x", r.makespan.seconds() / m0),
            format!("{:.2}", r.fault_lost_bytes / 1e6),
            resourced.to_string(),
        ]);
    }
    let worst = reports
        .iter()
        .map(|r| r.makespan.seconds())
        .fold(0.0_f64, f64::max);
    let best = reports
        .iter()
        .map(|r| r.makespan.seconds())
        .fold(f64::INFINITY, f64::min);
    t.note(format!(
        "losing 1 of {} stripes spans {:.2}x-{:.2}x of the fault-free makespan; every faulted run completes (the acceptance property of docs/failure-model.md)",
        match platform().bb {
            wfbb_platform::BbArchitecture::Shared { bb_nodes, .. } => bb_nodes,
            _ => 1,
        },
        best / m0,
        worst / m0,
    ));
    t.note(
        "PFS failover can beat the fault-free baseline: striped-BB SWarp is metadata-bound \
         (the paper's Figs. 10-12 pathology), so re-routing off the dead stripe also re-routes \
         off the bottleneck"
            .to_string(),
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bb_failure_mid_stage_in_completes_and_attributes_loss() {
        let baseline = run_one(None, FailoverPolicy::RerouteToPfs);
        // Mid-transfer of the first staged file: its stripe set starts
        // at device 0, so killing device 0 then cancels in-flight work.
        // The data phase sits at the tail of the span (striped metadata
        // latency fills the rest), hence the late kill point.
        let span = &baseline.stage_spans[0];
        let mid = span.start.seconds() + 0.99 * (span.end.seconds() - span.start.seconds());
        let hit = run_one(Some(mid), FailoverPolicy::RerouteToPfs);
        assert_eq!(hit.faults.len(), 1, "one fault record");
        assert!(
            hit.faults[0].cancelled_flows >= 1,
            "a staging flow was in flight"
        );
        assert!(
            hit.faults[0].lost_bytes > 0.0,
            "partial transfer progress is attributed as lost"
        );
        assert!(hit.makespan.seconds() > 0.0, "the run completes");
    }

    #[test]
    fn pfs_failover_escapes_the_striped_metadata_bottleneck() {
        // The paper's Figs. 10-12 pathology, seen through recovery: for
        // metadata-bound SWarp, re-routing off the striped BB also
        // re-routes off the bottleneck, so PFS failover is no slower
        // than re-placing on the surviving (still-slow) stripes.
        let m0 = run_one(None, FailoverPolicy::RerouteToPfs)
            .makespan
            .seconds();
        let pfs = run_one(Some(0.10 * m0), FailoverPolicy::RerouteToPfs);
        let bb = run_one(Some(0.10 * m0), FailoverPolicy::SurvivingBb);
        assert!(
            pfs.makespan.seconds() <= bb.makespan.seconds() + 1e-9,
            "PFS failover must not lose to surviving-BB for metadata-bound SWarp: {} > {}",
            pfs.makespan.seconds(),
            bb.makespan.seconds()
        );
    }
}
