//! Calibration constants.
//!
//! * [`CORI`] and [`SUMMIT`] restate the paper's Table I (the same numbers
//!   the platform presets encode) in a flat form convenient for printing
//!   the table (the `table1` experiment binary).
//! * [`LAMBDA_RESAMPLE`] / [`LAMBDA_COMBINE`] are the observed I/O
//!   fractions of the SWarp tasks from Daley et al. \[24\], measured on
//!   Cori's PFS and — following the paper — reused for Summit.
//! * [`swarp_resample`] / [`swarp_combine`] bundle the observed task times
//!   used to seed Equation (4). The paper reports these only graphically;
//!   the values here are digitized estimates from Figure 5/6 (32-core,
//!   all-BB private-mode runs), and are the single source the SWarp
//!   generator calibrates from.

use crate::model::CalibratedTask;

/// One row of Table I: platform calibration parameters. Bandwidths in B/s,
/// speed in GFlop/s per core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformParams {
    /// Platform name.
    pub name: &'static str,
    /// Per-core speed, GFlop/s.
    pub gflops_per_core: f64,
    /// Burst buffer network bandwidth, B/s.
    pub bb_network_bw: f64,
    /// Burst buffer disk bandwidth, B/s.
    pub bb_disk_bw: f64,
    /// PFS network bandwidth, B/s.
    pub pfs_network_bw: f64,
    /// PFS disk bandwidth, B/s.
    pub pfs_disk_bw: f64,
}

/// Table I, Cori row.
pub const CORI: PlatformParams = PlatformParams {
    name: "Cori",
    gflops_per_core: 36.80,
    bb_network_bw: 800e6,
    bb_disk_bw: 950e6,
    pfs_network_bw: 1.0e9,
    pfs_disk_bw: 100e6,
};

/// Table I, Summit row.
pub const SUMMIT: PlatformParams = PlatformParams {
    name: "Summit",
    gflops_per_core: 49.12,
    bb_network_bw: 6.5e9,
    bb_disk_bw: 3.3e9,
    pfs_network_bw: 2.1e9,
    pfs_disk_bw: 100e6,
};

/// Observed I/O fraction of the SWarp Resample task (Daley et al. \[24\]).
pub const LAMBDA_RESAMPLE: f64 = 0.203;

/// Observed I/O fraction of the SWarp Combine task (Daley et al. \[24\]).
pub const LAMBDA_COMBINE: f64 = 0.260;

/// Cores used in the reference observations (one full Cori Haswell node).
pub const OBSERVED_CORES: usize = 32;

/// Digitized observed Resample time on 32 cores (Cori, all files in a
/// private-mode BB) — seconds.
pub const OBSERVED_RESAMPLE_32: f64 = 8.0;

/// Digitized observed Combine time on 32 cores (Cori, all files in a
/// private-mode BB) — seconds.
pub const OBSERVED_COMBINE_32: f64 = 4.5;

/// Amdahl serial fraction the *measurement emulator* uses for Resample.
/// Small: SWarp threads resample independent image regions, so the task
/// scales nearly perfectly — which is also why the paper's perfect-speedup
/// model stays within ~12 % on the 1-core-per-pipeline experiments.
pub const REAL_ALPHA_RESAMPLE: f64 = 0.003;

/// Amdahl serial fraction the emulator uses for Combine. Larger than
/// Resample's: the single-output merge serializes on synchronization and
/// locks, so added cores help it much less (Figure 6).
pub const REAL_ALPHA_COMBINE: f64 = 0.015;

/// Calibration record for SWarp Resample.
pub fn swarp_resample() -> CalibratedTask {
    CalibratedTask {
        category: "resample",
        observed_time: OBSERVED_RESAMPLE_32,
        observed_cores: OBSERVED_CORES,
        lambda_io: LAMBDA_RESAMPLE,
        real_alpha: REAL_ALPHA_RESAMPLE,
    }
}

/// Calibration record for SWarp Combine.
pub fn swarp_combine() -> CalibratedTask {
    CalibratedTask {
        category: "combine",
        observed_time: OBSERVED_COMBINE_32,
        observed_cores: OBSERVED_CORES,
        lambda_io: LAMBDA_COMBINE,
        real_alpha: REAL_ALPHA_COMBINE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_rows_match_the_paper() {
        assert_eq!(CORI.gflops_per_core, 36.80);
        assert_eq!(CORI.bb_network_bw, 800e6);
        assert_eq!(CORI.bb_disk_bw, 950e6);
        assert_eq!(SUMMIT.gflops_per_core, 49.12);
        assert_eq!(SUMMIT.bb_network_bw, 6.5e9);
        assert_eq!(SUMMIT.pfs_disk_bw, 100e6);
    }

    #[test]
    fn lambda_values_match_daley_et_al() {
        assert_eq!(LAMBDA_RESAMPLE, 0.203);
        assert_eq!(LAMBDA_COMBINE, 0.260);
    }

    #[test]
    fn calibrations_derive_positive_work() {
        for c in [swarp_resample(), swarp_combine()] {
            assert!(c.sequential_time() > 0.0);
            assert!(c.flops(CORI.gflops_per_core) > 0.0);
            // The emulator's Amdahl derivation implies less work than the
            // perfect-speedup derivation.
            assert!(c.sequential_time_amdahl() <= c.sequential_time());
        }
    }

    #[test]
    fn presets_agree_with_table_one() {
        use wfbb_platform::{presets, BbMode};
        let cori = presets::cori(1, BbMode::Private);
        assert_eq!(cori.gflops_per_core, CORI.gflops_per_core);
        assert_eq!(cori.bb_network_bw, CORI.bb_network_bw);
        assert_eq!(cori.bb_disk_bw, CORI.bb_disk_bw);
        assert_eq!(cori.pfs_network_bw, CORI.pfs_network_bw);
        assert_eq!(cori.pfs_disk_bw, CORI.pfs_disk_bw);
        let summit = presets::summit(1);
        assert_eq!(summit.gflops_per_core, SUMMIT.gflops_per_core);
        assert_eq!(summit.bb_network_bw, SUMMIT.bb_network_bw);
        assert_eq!(summit.bb_disk_bw, SUMMIT.bb_disk_bw);
    }
}
