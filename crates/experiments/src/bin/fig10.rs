//! Regenerates the paper's fig10 data; see `wfbb_experiments::figures`.
fn main() {
    wfbb_experiments::run_and_save("fig10");
}
