//! Extension experiment: model-mechanism ablation.
//!
//! DESIGN.md motivates three modeling choices beyond raw Table I
//! bandwidths. This experiment disables each in turn and reports the
//! paper-relevant probes, showing which observed behavior each mechanism
//! is responsible for:
//!
//! * **metadata services** (`*_meta_ops`) — responsible for the striped
//!   mode's collapse on many-small-file workloads (Figures 5/7);
//! * **per-core I/O throughput** (`io_core_bw`) — responsible for the
//!   core-count I/O plateau (Figure 6) and pipeline contention pressure;
//! * **per-file/stripe latencies** — responsible for small-file stage-in
//!   costs (Figure 4).

use wfbb_platform::{presets, BbMode, PlatformSpec};
use wfbb_storage::PlacementPolicy;
use wfbb_workloads::SwarpConfig;

use crate::harness::{par_map, simulate};
use crate::table::{f2, Table};

/// A model variant with one mechanism disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Variant {
    Full,
    NoMetadata,
    NoIoCoreCap,
    NoLatencies,
}

impl Variant {
    const ALL: [Variant; 4] = [
        Variant::Full,
        Variant::NoMetadata,
        Variant::NoIoCoreCap,
        Variant::NoLatencies,
    ];

    fn label(self) -> &'static str {
        match self {
            Variant::Full => "full model",
            Variant::NoMetadata => "no metadata service",
            Variant::NoIoCoreCap => "no per-core I/O cap",
            Variant::NoLatencies => "no per-file latency",
        }
    }

    /// Applies the ablation to a platform.
    fn apply(self, mut p: PlatformSpec) -> PlatformSpec {
        match self {
            Variant::Full => {}
            Variant::NoMetadata => {
                p.bb_meta_ops = 1e12;
                p.pfs_meta_ops = 1e12;
            }
            Variant::NoIoCoreCap => {
                p.io_core_bw = 1e15;
            }
            Variant::NoLatencies => {
                p.latency = wfbb_platform::LatencyProfile::zero();
            }
        }
        p
    }
}

/// The three probes reported per variant.
struct Probes {
    /// Striped/private Resample-time ratio, 1 pipeline, 32 cores, all BB.
    striped_ratio: f64,
    /// Resample time ratio 1 core vs 32 cores on Cori/private (I/O
    /// portion only).
    core_scaling_io: f64,
    /// Stage-in time at 100 % staged, Cori/striped, seconds.
    striped_stage_in: f64,
}

fn probes(variant: Variant) -> Probes {
    let policy = PlacementPolicy::AllBb;
    let private = variant.apply(presets::cori(1, BbMode::Private));
    let striped = variant.apply(presets::cori(1, BbMode::Striped));

    let wf32 = SwarpConfig::new(1).with_cores_per_task(32).build();
    let private_32 = simulate(&private, &wf32, &policy);
    let striped_32 = simulate(&striped, &wf32, &policy);

    let wf1 = SwarpConfig::new(1).with_cores_per_task(1).build();
    let private_1 = simulate(&private, &wf1, &policy);

    // Both probes isolate the I/O part of Resample via the report's
    // per-phase split; compute time is identical across variants and
    // would only dilute the signal.
    Probes {
        striped_ratio: striped_32.category_io("resample") / private_32.category_io("resample"),
        core_scaling_io: private_1.category_io("resample") / private_32.category_io("resample"),
        striped_stage_in: striped_32.stage_in,
    }
}

/// Builds the ablation table.
pub fn run() -> Vec<Table> {
    let results = par_map(Variant::ALL.to_vec(), |&v| probes(v));

    let mut t = Table::new(
        "Ablation (extension): which mechanism produces which paper behavior",
        &[
            "variant",
            "striped/private resample I/O ratio",
            "resample I/O 1-core/32-core ratio",
            "striped stage-in @100% (s)",
        ],
    );
    for (v, p) in Variant::ALL.iter().zip(&results) {
        t.push_row(vec![
            v.label().into(),
            f2(p.striped_ratio),
            f2(p.core_scaling_io),
            f2(p.striped_stage_in),
        ]);
    }
    let full = &results[0];
    let no_meta = &results[1];
    t.note(format!(
        "removing the metadata service collapses the striped penalty from {:.2}x to {:.2}x — it is the mechanism behind Figures 5/7's striped results",
        full.striped_ratio, no_meta.striped_ratio
    ));
    let no_cap = &results[2];
    t.note(format!(
        "removing the per-core I/O cap shrinks the 1-core/32-core resample ratio from {:.1}x to {:.1}x — it drives the Figure 6 core-scaling of I/O",
        full.core_scaling_io, no_cap.core_scaling_io
    ));
    let no_lat = &results[3];
    t.note(format!(
        "removing per-file/stripe latencies cuts striped stage-in from {:.1}s to {:.1}s — they price the small-file pattern of Figure 4",
        full.striped_stage_in, no_lat.striped_stage_in
    ));
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_service_causes_the_striped_penalty() {
        let full = probes(Variant::Full);
        let no_meta = probes(Variant::NoMetadata);
        assert!(full.striped_ratio > 1.5, "full model penalizes striped");
        assert!(
            no_meta.striped_ratio < full.striped_ratio,
            "removing metadata must shrink the penalty: {} vs {}",
            no_meta.striped_ratio,
            full.striped_ratio
        );
    }

    #[test]
    fn io_core_cap_causes_core_scaling_of_io() {
        let full = probes(Variant::Full);
        let no_cap = probes(Variant::NoIoCoreCap);
        assert!(
            no_cap.core_scaling_io < full.core_scaling_io,
            "without the cap, 1-core tasks lose less to I/O: {} vs {}",
            no_cap.core_scaling_io,
            full.core_scaling_io
        );
    }

    #[test]
    fn latencies_price_small_file_staging() {
        let full = probes(Variant::Full);
        let no_lat = probes(Variant::NoLatencies);
        assert!(
            no_lat.striped_stage_in < full.striped_stage_in,
            "latency-free staging must be faster: {} vs {}",
            no_lat.striped_stage_in,
            full.striped_stage_in
        );
    }
}
