//! Campaign-scheduler benchmarks: a full multi-tenant batch campaign
//! (synthetic job stream -> admission -> shared-engine execution) per
//! policy, so scheduler-loop and shared-engine regressions show up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wfbb_platform::{presets, BbMode};
use wfbb_sched::{run_campaign, synthetic_jobs, BatchPolicy, CampaignConfig, SyntheticConfig};

/// A seeded 12-job campaign on 8-node striped Cori under each policy.
fn bench_campaign_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_throughput");
    group.sample_size(10);
    let jobs = synthetic_jobs(
        20260806,
        &SyntheticConfig {
            jobs: 12,
            mean_interarrival: 15.0,
            bb_request_scale: 1.0,
            max_nodes: 2,
        },
    )
    .expect("synthetic workload");
    for policy in BatchPolicy::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.label()),
            &policy,
            |b, &p| {
                let config = CampaignConfig::new(presets::cori(8, BbMode::Striped))
                    .with_policy(p)
                    .with_platform_label("cori:striped");
                b.iter(|| {
                    let report = run_campaign(&config, &jobs).unwrap();
                    black_box(report.makespan)
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_campaign_throughput
}
criterion_main!(benches);
