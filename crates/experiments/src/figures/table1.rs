//! Table I: input parameters used in simulation.
//!
//! Prints the calibration constants exactly as the paper's Table I lays
//! them out, cross-checked against the platform presets (a unit test in
//! `wfbb-calibration` asserts the two sources agree).

use wfbb_calibration::params::{CORI, LAMBDA_COMBINE, LAMBDA_RESAMPLE, SUMMIT};

use crate::table::Table;

/// Builds Table I.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "Table I: input parameters used in simulation",
        &[
            "platform",
            "proc speed (GFlop/s/core)",
            "BB net (MB/s)",
            "BB disk (MB/s)",
            "PFS net (MB/s)",
            "PFS disk (MB/s)",
        ],
    );
    for p in [CORI, SUMMIT] {
        t.push_row(vec![
            p.name.to_string(),
            format!("{:.2}", p.gflops_per_core),
            format!("{:.0}", p.bb_network_bw / 1e6),
            format!("{:.0}", p.bb_disk_bw / 1e6),
            format!("{:.0}", p.pfs_network_bw / 1e6),
            format!("{:.0}", p.pfs_disk_bw / 1e6),
        ]);
    }
    t.note(format!(
        "lambda_io: resample = {LAMBDA_RESAMPLE}, combine = {LAMBDA_COMBINE} (from Daley et al. [24])"
    ));
    t.note("values match the paper's Table I verbatim; presets cross-checked by unit test");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_one_has_two_rows() {
        let tables = super::run();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 2);
        assert_eq!(tables[0].rows[0][0], "Cori");
        assert_eq!(tables[0].rows[1][0], "Summit");
        // The Cori BB network column is 800 MB/s.
        assert_eq!(tables[0].rows[0][2], "800");
    }
}
