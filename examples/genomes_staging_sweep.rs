//! 1000Genomes staging sweep — the paper's Figures 13/14 case study.
//!
//! Simulates the 903-task, ~67 GB bioinformatics workflow on Cori and
//! Summit while sweeping the fraction of input data staged into the burst
//! buffer, and reports makespans, speedups, and the plateau points.
//!
//! ```sh
//! cargo run --release --example genomes_staging_sweep
//! ```

use wfbb::prelude::*;

fn main() {
    let workflow = GenomesConfig::paper_instance().build();
    println!(
        "1000Genomes instance: {} tasks, {} files, footprint {:.1} GB, input {:.1} GB ({:.0}%)\n",
        workflow.task_count(),
        workflow.file_count(),
        workflow.data_footprint() / 1e9,
        workflow.input_data_size() / 1e9,
        100.0 * workflow.input_data_size() / workflow.data_footprint()
    );

    let platforms = [
        (
            "Cori (shared BB, private)",
            presets::cori(4, BbMode::Private),
        ),
        ("Summit (on-node BB)", presets::summit(4)),
    ];

    for (name, platform) in &platforms {
        println!("{name}:");
        println!("  {:>7} {:>13} {:>9}", "staged", "makespan (s)", "speedup");
        let mut base = None;
        for step in 0..=10 {
            let fraction = step as f64 / 10.0;
            let report = SimulationBuilder::new(platform.clone(), workflow.clone())
                .placement(PlacementPolicy::FractionToBb { fraction })
                .run()
                .expect("simulation runs");
            let makespan = report.makespan.seconds();
            let base = *base.get_or_insert(makespan);
            println!(
                "  {:>6.0}% {:>13.1} {:>8.2}x",
                fraction * 100.0,
                makespan,
                base / makespan
            );
        }
        println!();
    }
    println!("Expected shape (paper Fig 13): staging helps both platforms; Summit");
    println!("wins throughout; Cori plateaus earlier (its shared BB allocation saturates).");
}
