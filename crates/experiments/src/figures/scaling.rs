//! Extension experiment: multi-node scaling of the two BB architectures.
//!
//! Section III-D: *"This result indicates that the on-node implementation
//! would likely scale well for large-scale workflow applications."* The
//! paper demonstrates it indirectly through the 1000Genomes case study;
//! this experiment isolates the claim: SWarp with a fixed per-node load
//! (8 pipelines per node, 4 cores each) on 1–8 nodes. Perfect weak
//! scaling keeps the makespan flat; a shared BB cannot, because its
//! allocation's aggregate bandwidth is fixed while on-node capacity grows
//! with every node.

use wfbb_platform::{presets, BbMode};
use wfbb_storage::PlacementPolicy;
use wfbb_workloads::SwarpConfig;

use crate::harness::{par_map, simulate};
use crate::table::{f2, Table};

/// Pipelines per compute node (fixed per-node load for weak scaling).
const PIPELINES_PER_NODE: usize = 8;

/// Node counts swept.
const NODE_COUNTS: [usize; 4] = [1, 2, 4, 8];

pub(crate) fn weak_scaling_makespan(shared: bool, nodes: usize) -> f64 {
    let platform = if shared {
        presets::cori(nodes, BbMode::Private)
    } else {
        presets::summit(nodes)
    };
    let wf = SwarpConfig::new(PIPELINES_PER_NODE * nodes)
        .with_cores_per_task(4)
        .build();
    simulate(&platform, &wf, &PlacementPolicy::AllBb).makespan
}

/// Builds the weak-scaling table.
pub fn run() -> Vec<Table> {
    let grid: Vec<(bool, usize)> = [true, false]
        .into_iter()
        .flat_map(|shared| NODE_COUNTS.iter().map(move |&n| (shared, n)))
        .collect();
    let results = par_map(grid.clone(), |&(shared, n)| {
        weak_scaling_makespan(shared, n)
    });

    let mut t = Table::new(
        "Scaling (extension): weak scaling, 8 pipelines per node, 4 cores per task",
        &[
            "architecture",
            "nodes",
            "pipelines",
            "makespan (s)",
            "vs 1 node",
        ],
    );
    let mut base: std::collections::HashMap<bool, f64> = Default::default();
    for ((shared, n), makespan) in grid.iter().zip(&results) {
        let b = *base.entry(*shared).or_insert(*makespan);
        t.push_row(vec![
            if *shared {
                "shared (Cori/private)"
            } else {
                "on-node (Summit)"
            }
            .into(),
            n.to_string(),
            (PIPELINES_PER_NODE * n).to_string(),
            f2(*makespan),
            format!("{:.2}x", makespan / b),
        ]);
    }
    let shared_blowup = results[NODE_COUNTS.len() - 1] / results[0];
    let onnode_blowup = results[2 * NODE_COUNTS.len() - 1] / results[NODE_COUNTS.len()];
    t.note(format!(
        "weak-scaling blowup at 8 nodes: shared {:.2}x vs on-node {:.2}x — the paper's claim that the on-node architecture scales (its BB capacity grows with the allocation) while a shared allocation saturates",
        shared_blowup, onnode_blowup
    ));
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_node_weak_scales_nearly_flat() {
        let one = weak_scaling_makespan(false, 1);
        let four = weak_scaling_makespan(false, 4);
        assert!(
            four < one * 1.15,
            "on-node weak scaling should be near-flat: {one} -> {four}"
        );
    }

    #[test]
    fn shared_bb_degrades_with_scale() {
        let one = weak_scaling_makespan(true, 1);
        let four = weak_scaling_makespan(true, 4);
        assert!(
            four > one * 1.2,
            "a fixed shared allocation must saturate: {one} -> {four}"
        );
    }

    #[test]
    fn on_node_scales_better_than_shared() {
        let shared = weak_scaling_makespan(true, 4) / weak_scaling_makespan(true, 1);
        let onnode = weak_scaling_makespan(false, 4) / weak_scaling_makespan(false, 1);
        assert!(
            shared > onnode,
            "shared blowup {shared} !> on-node {onnode}"
        );
    }
}
