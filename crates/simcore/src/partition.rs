//! Connected-component decomposition of the fair-share solve.
//!
//! One epoch of progressive filling ([`crate::fairshare::solve_into`])
//! freezes entries level by level: every round scans *all* entries and
//! *all* resources to find the next global fill level. A campaign of
//! concurrent jobs mostly runs on disjoint resource groups (each job's
//! compute nodes, its carved burst-buffer share), so the monolithic solve
//! pays roughly one round per *distinct* saturation level — one per busy
//! node group — and every round rescans the whole platform. That is the
//! quadratic the ROADMAP's "raw speed" item points at.
//!
//! This module splits the entry set into connected components over shared
//! resources (union-find over each entry's route) and solves every
//! component as an independent sub-problem:
//!
//! * **Arena/SoA entry tables.** Entries are ingested once into flat
//!   parallel arrays (`route_start`/`route_len` into one route arena, plus
//!   caps and weights), so component discovery and bucketing walk dense
//!   memory instead of re-running the engine's flow-map iterators.
//! * **Local compaction.** Each component is renumbered into a dense local
//!   resource space (`global → local` map plus a local capacity vector),
//!   so a 4-entry component solves over its 5 resources, not the whole
//!   platform's.
//! * **Component-result reuse.** An engine event usually perturbs one or
//!   two components (a flow completed, a job spawned work) and leaves the
//!   other hundred untouched. Each component's sub-problem is hashed into
//!   a content key — member weights, caps, routes by *global* resource id,
//!   and the capacities of those resources — and looked up in the memo of
//!   the previous solve. On an exact key match the previous rates and
//!   bindings are copied back verbatim: [`crate::fairshare::solve_into`]
//!   is a pure function of exactly the hashed inputs, so reuse is
//!   bit-for-bit identical to re-solving (hash collisions are guarded by
//!   a full key comparison). Only missed components are (re-)solved.
//! * **Optional parallelism.** Missed components are grouped into
//!   contiguous chunks balanced by entry count, and with the `parallel`
//!   feature the chunks run on the rayon pool
//!   ([`PartitionWorkspace::solve`]'s `threads` argument; serial fallback
//!   without the feature).
//!
//! # Why canonical merge order guarantees bitwise equality
//!
//! Determinism is non-negotiable: the engine's snapshot/fork replay
//! contract promises bitwise-identical event streams, and the campaign
//! scheduler's speculative rollouts rely on it. The partitioned solve is
//! bitwise *reproducible across thread counts* by construction:
//!
//! 1. **Component identity is data-dependent, not schedule-dependent.**
//!    Components are discovered by a deterministic union-find sweep over
//!    the entry list and indexed in order of first appearance among the
//!    entries — the same input always yields the same components in the
//!    same order.
//! 2. **Each component's sub-problem is self-contained.** Its local
//!    resource numbering is assigned by walking the component's own
//!    entries in entry order, so the `f64` operations performed by
//!    [`crate::fairshare::solve_into`] on that component are *the same
//!    instruction stream* no matter which thread (or how many threads)
//!    executes it. IEEE-754 arithmetic is deterministic; only operation
//!    *order* can change results, and the order within a component is
//!    fixed.
//! 3. **Results are merged serially in canonical order.** Every chunk
//!    writes rates and bindings into its own output buffer; after all
//!    chunks complete, a single-threaded scatter copies them back into
//!    entry order, component by component in discovery order. No shared
//!    mutable state is touched concurrently, so there is nothing a race
//!    could reorder.
//!
//! Hence `threads = 1` and `threads = N` produce identical bits, which is
//! what the A/B proptests in `tests/partition.rs` pin.
//!
//! # Relation to the monolithic solve
//!
//! Partitioning is *opt-in* ([`crate::EngineConfig::partition`], default
//! off) because the per-component result is not bit-for-bit the
//! monolithic result: the monolithic solve freezes entries against a
//! *global* fill level with a relative tie tolerance (~1e-12), so two
//! components whose levels land within that tolerance of each other can
//! couple through it. Exact ties behave identically (the frozen rate is
//! `cap.min(level)` either way), and all differences stay far below the
//! engine's `EPSILON`; the equivalence tests compare the two paths at the
//! same 1e-9 relative tolerance used for `SolveMode::Naive` vs
//! `SolveMode::Incremental`.

use std::collections::HashMap;

use crate::fairshare::{self, Binding, WeightedReq};
use crate::ids::ResourceId;

/// Sentinel for "no local index assigned" in the global → local resource
/// maps, and for "no component" (empty-route entries).
const NONE: u32 = u32::MAX;

/// Below this many bucketed entries a solve always runs on the calling
/// thread: dispatch overhead would dominate. The cutoff affects wall-clock
/// time only — never results — because thread count never affects results.
const MIN_PARALLEL_ENTRIES: usize = 64;

/// One solver entry of one component, with its route re-based into the
/// chunk's local route arena.
#[derive(Debug, Clone, Copy, Default)]
struct LocalEntry {
    route_start: u32,
    route_len: u32,
    rate_cap: Option<f64>,
    weight: f64,
}

/// Per-chunk scratch: everything one worker needs to compact and solve its
/// components without touching shared mutable state.
#[derive(Debug, Clone, Default)]
struct ChunkScratch {
    /// Inner progressive-filling workspace, reused across components.
    ws: fairshare::Workspace,
    /// Capacities of the current component's resources, locally indexed.
    local_caps: Vec<f64>,
    /// Local resource index → global id (for mapping bindings back).
    local_ids: Vec<ResourceId>,
    /// Global resource index → local index; entries are reset to [`NONE`]
    /// after each component via `local_ids`, so the map stays warm.
    global2local: Vec<u32>,
    /// Route arena of the current component, in local resource ids.
    local_routes: Vec<ResourceId>,
    /// Entries of the current component, in bucketed order.
    entries: Vec<LocalEntry>,
    /// Per-flow rates of all components of this chunk, bucketed order.
    out_rates: Vec<f64>,
    /// Binding constraints (global resource ids), parallel to `out_rates`.
    out_bindings: Vec<Binding>,
}

impl ChunkScratch {
    /// Compacts and solves the component whose bucketed entry indices are
    /// `members`, appending per-entry results to the chunk's output
    /// buffers. All reads go through the shared SoA tables; all writes go
    /// to this scratch.
    fn solve_component(&mut self, tables: &Tables<'_>, members: &[u32]) {
        let ChunkScratch {
            ws,
            local_caps,
            local_ids,
            global2local,
            local_routes,
            entries,
            out_rates,
            out_bindings,
        } = self;
        global2local.resize(tables.capacities.len(), NONE);
        local_caps.clear();
        local_ids.clear();
        local_routes.clear();
        entries.clear();
        for &e in members {
            let e = e as usize;
            let start = tables.route_start[e] as usize;
            let len = tables.route_len[e] as usize;
            let local_start = local_routes.len() as u32;
            for &rid in &tables.routes[start..start + len] {
                let gi = rid.index();
                let mut li = global2local[gi];
                if li == NONE {
                    li = local_caps.len() as u32;
                    global2local[gi] = li;
                    local_caps.push(tables.capacities[gi]);
                    local_ids.push(rid);
                }
                local_routes.push(ResourceId::from_index(li as usize));
            }
            entries.push(LocalEntry {
                route_start: local_start,
                route_len: len as u32,
                rate_cap: tables.caps[e],
                weight: tables.weights[e],
            });
        }
        let local_routes = &*local_routes;
        fairshare::solve_into(
            ws,
            local_caps,
            entries.iter().map(|le| WeightedReq {
                route: &local_routes
                    [le.route_start as usize..(le.route_start + le.route_len) as usize],
                rate_cap: le.rate_cap,
                weight: le.weight,
            }),
        );
        out_rates.extend_from_slice(ws.rates());
        out_bindings.extend(ws.bindings().iter().map(|b| match *b {
            Binding::Resource(local) => Binding::Resource(local_ids[local.index()]),
            Binding::Cap => Binding::Cap,
        }));
        // Reset only the touched map entries so the next component starts
        // clean without an O(resources) wipe.
        for rid in local_ids.iter() {
            global2local[rid.index()] = NONE;
        }
    }
}

/// Stored result of one solved component: a slice of the memo's key arena
/// plus parallel slices of its rates/bindings arenas.
#[derive(Debug, Clone, Copy)]
struct MemoSlot {
    key_start: u32,
    key_len: u32,
    /// Start of this component's rates/bindings in the result arenas (the
    /// length is implied by the caller's member list).
    res_start: u32,
    /// Next slot with the same key hash ([`NONE`] terminates the chain).
    next: u32,
}

/// Component results of one solve, content-addressed by key hash. Two
/// arenas are kept and swapped every solve, so lookups always hit the
/// previous epoch's results with zero steady-state allocation.
#[derive(Debug, Clone, Default)]
struct MemoArena {
    /// Key hash → head slot of the collision chain.
    index: HashMap<u64, u32>,
    slots: Vec<MemoSlot>,
    keys: Vec<u64>,
    rates: Vec<f64>,
    bindings: Vec<Binding>,
}

impl MemoArena {
    fn clear(&mut self) {
        self.index.clear();
        self.slots.clear();
        self.keys.clear();
        self.rates.clear();
        self.bindings.clear();
    }

    /// Finds a stored component whose full key equals `key`, or `None`.
    fn lookup(&self, hash: u64, key: &[u64]) -> Option<&MemoSlot> {
        let mut at = *self.index.get(&hash)?;
        while at != NONE {
            let slot = &self.slots[at as usize];
            let stored =
                &self.keys[slot.key_start as usize..(slot.key_start + slot.key_len) as usize];
            if stored == key {
                return Some(slot);
            }
            at = slot.next;
        }
        None
    }

    /// Appends a component's key and results, gathering the per-member
    /// rates/bindings out of the entry-ordered output tables, and chains
    /// the slot under `hash`. New slots are prepended to the chain; chain
    /// order never affects results because lookups compare full keys and
    /// equal keys carry equal data.
    fn insert_gather(
        &mut self,
        hash: u64,
        key: &[u64],
        members: &[u32],
        rates: &[f64],
        bindings: &[Binding],
    ) {
        let id = self.slots.len() as u32;
        let head = self.index.insert(hash, id).unwrap_or(NONE);
        self.slots.push(MemoSlot {
            key_start: self.keys.len() as u32,
            key_len: key.len() as u32,
            res_start: self.rates.len() as u32,
            next: head,
        });
        self.keys.extend_from_slice(key);
        for &e in members {
            self.rates.push(rates[e as usize]);
            self.bindings.push(bindings[e as usize]);
        }
    }
}

/// FNV-1a over 64-bit words; only used to index the memo (exact key
/// comparison decides reuse, so collisions cost time, never correctness).
fn fnv1a(words: &[u64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &w in words {
        h ^= w;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Borrowed views of the ingested SoA entry tables, shared read-only by
/// every chunk.
#[derive(Clone, Copy)]
struct Tables<'a> {
    capacities: &'a [f64],
    route_start: &'a [u32],
    route_len: &'a [u32],
    routes: &'a [ResourceId],
    caps: &'a [Option<f64>],
    weights: &'a [f64],
}

/// Reusable buffers for the partitioned fair-share solve.
///
/// Like [`fairshare::Workspace`], holding one `PartitionWorkspace` across
/// [`PartitionWorkspace::solve`] calls amortizes all allocations: after
/// warm-up, a solve allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct PartitionWorkspace {
    // Ingested entry tables (SoA, canonical entry order).
    route_start: Vec<u32>,
    route_len: Vec<u32>,
    routes: Vec<ResourceId>,
    caps: Vec<Option<f64>>,
    weights: Vec<f64>,
    // Union-find over resource indices.
    parent: Vec<u32>,
    // Component assignment and bucketing.
    comp_of_entry: Vec<u32>,
    root_comp: Vec<u32>,
    comp_sizes: Vec<u32>,
    comp_offsets: Vec<u32>,
    cursor: Vec<u32>,
    by_comp: Vec<u32>,
    chunk_bounds: Vec<(u32, u32)>,
    // Per-worker scratch (index = chunk).
    scratch: Vec<ChunkScratch>,
    // Component-result memo: previous solve's results (looked up) and the
    // current solve's results (built), swapped at the end of each solve.
    memo_prev: MemoArena,
    memo_next: MemoArena,
    // Per-component content keys of the current solve.
    key_arena: Vec<u64>,
    comp_key_start: Vec<u32>,
    comp_hash: Vec<u64>,
    // Components that missed the memo, in discovery order.
    missed: Vec<u32>,
    // Outputs, parallel to the ingested entry order.
    rates: Vec<f64>,
    bindings: Vec<Binding>,
    // Decomposition statistics of the most recent solve.
    components: usize,
    max_component: usize,
    singletons: usize,
    reused: usize,
}

/// Union-find `find` with path halving.
fn find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        parent[x as usize] = parent[parent[x as usize] as usize];
        x = parent[x as usize];
    }
    x
}

impl PartitionWorkspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-entry rates computed by the most recent [`Self::solve`] call,
    /// in the order the entries were given.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Per-entry binding constraints (global resource ids) identified by
    /// the most recent [`Self::solve`] call, parallel to [`Self::rates`].
    pub fn bindings(&self) -> &[Binding] {
        &self.bindings
    }

    /// Number of connected components in the most recent solve
    /// (empty-route entries are unconstrained and not counted).
    pub fn components(&self) -> usize {
        self.components
    }

    /// Entry count of the largest component in the most recent solve.
    pub fn max_component(&self) -> usize {
        self.max_component
    }

    /// Number of single-entry components in the most recent solve.
    pub fn singletons(&self) -> usize {
        self.singletons
    }

    /// Components of the most recent solve whose results were copied from
    /// the previous solve's memo instead of being re-solved (exact
    /// content-key match; bit-for-bit identical to re-solving).
    pub fn reused(&self) -> usize {
        self.reused
    }

    /// Computes the max–min fair allocation by independent component
    /// solves, merged in canonical (discovery) order.
    ///
    /// Semantics match [`fairshare::solve_into`] up to cross-component
    /// tolerance ties (see the module docs); results are identical for
    /// every `threads` value. `threads` is clamped to at least 1 and, in
    /// builds without the `parallel` feature, chunks simply run in order
    /// on the calling thread.
    ///
    /// # Panics
    /// Panics if a route references a resource index out of bounds.
    pub fn solve<'a, I>(&mut self, capacities: &[f64], entries: I, threads: usize)
    where
        I: Iterator<Item = WeightedReq<'a>>,
    {
        // ---- ingest into the SoA tables -------------------------------
        self.route_start.clear();
        self.route_len.clear();
        self.routes.clear();
        self.caps.clear();
        self.weights.clear();
        for e in entries {
            self.route_start.push(self.routes.len() as u32);
            self.route_len.push(e.route.len() as u32);
            for r in e.route {
                assert!(
                    r.index() < capacities.len(),
                    "route references unknown resource {r}"
                );
            }
            self.routes.extend_from_slice(e.route);
            self.caps.push(e.rate_cap);
            self.weights.push(e.weight);
        }
        let n = self.caps.len();
        let n_res = capacities.len();
        self.rates.clear();
        self.rates.resize(n, 0.0);
        self.bindings.clear();
        self.bindings.resize(n, Binding::Cap);

        // ---- union-find over each entry's route -----------------------
        self.parent.clear();
        self.parent.extend(0..n_res as u32);
        for i in 0..n {
            let start = self.route_start[i] as usize;
            let len = self.route_len[i] as usize;
            let route = &self.routes[start..start + len];
            if let Some((&first, rest)) = route.split_first() {
                let mut root = find(&mut self.parent, first.index() as u32);
                for r in rest {
                    let other = find(&mut self.parent, r.index() as u32);
                    if other != root {
                        // Smaller index wins so the root choice is a pure
                        // function of the input, not of union order.
                        let (lo, hi) = if root < other {
                            (root, other)
                        } else {
                            (other, root)
                        };
                        self.parent[hi as usize] = lo;
                        root = lo;
                    }
                }
            }
        }

        // ---- assign components in entry-discovery order ---------------
        self.root_comp.clear();
        self.root_comp.resize(n_res, NONE);
        self.comp_of_entry.clear();
        self.comp_sizes.clear();
        for i in 0..n {
            let start = self.route_start[i] as usize;
            if self.route_len[i] == 0 {
                // Unconstrained: fixed right here, exactly as the
                // monolithic solver does before its first round.
                self.comp_of_entry.push(NONE);
                self.rates[i] = self.caps[i].unwrap_or(f64::INFINITY);
                continue;
            }
            let root = find(&mut self.parent, self.routes[start].index() as u32);
            let mut comp = self.root_comp[root as usize];
            if comp == NONE {
                comp = self.comp_sizes.len() as u32;
                self.root_comp[root as usize] = comp;
                self.comp_sizes.push(0);
            }
            self.comp_of_entry.push(comp);
            self.comp_sizes[comp as usize] += 1;
        }
        let n_comp = self.comp_sizes.len();
        self.components = n_comp;
        self.max_component = self.comp_sizes.iter().copied().max().unwrap_or(0) as usize;
        self.singletons = self.comp_sizes.iter().filter(|&&s| s == 1).count();

        // ---- bucket entries component-major ---------------------------
        self.comp_offsets.clear();
        let mut acc = 0u32;
        for &s in &self.comp_sizes {
            self.comp_offsets.push(acc);
            acc += s;
        }
        let bucketed = acc as usize;
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.comp_offsets);
        self.by_comp.clear();
        self.by_comp.resize(bucketed, 0);
        for i in 0..n {
            let comp = self.comp_of_entry[i];
            if comp != NONE {
                let pos = self.cursor[comp as usize];
                self.by_comp[pos as usize] = i as u32;
                self.cursor[comp as usize] = pos + 1;
            }
        }

        // ---- memo lookup: reuse results of unchanged components -------
        // The key captures everything fairshare::solve_into reads for the
        // component — member weights, caps, routes by global resource id,
        // and those resources' capacities — so an exact match means the
        // stored rates/bindings are bit-for-bit what re-solving would give.
        let mut missed_entries = 0usize;
        {
            let Self {
                key_arena,
                comp_key_start,
                comp_hash,
                missed,
                by_comp,
                comp_offsets,
                comp_sizes,
                route_start,
                route_len,
                routes,
                caps,
                weights,
                memo_prev,
                rates,
                bindings,
                reused,
                ..
            } = self;
            key_arena.clear();
            comp_key_start.clear();
            comp_hash.clear();
            missed.clear();
            *reused = 0;
            for c in 0..n_comp {
                let key_start = key_arena.len();
                comp_key_start.push(key_start as u32);
                let off = comp_offsets[c] as usize;
                let size = comp_sizes[c] as usize;
                let members = &by_comp[off..off + size];
                for &e in members {
                    let e = e as usize;
                    let start = route_start[e] as usize;
                    let len = route_len[e] as usize;
                    key_arena.push(weights[e].to_bits());
                    key_arena.push(caps[e].is_some() as u64);
                    key_arena.push(caps[e].map_or(0, f64::to_bits));
                    key_arena.push(len as u64);
                    for &rid in &routes[start..start + len] {
                        key_arena.push(rid.index() as u64);
                        key_arena.push(capacities[rid.index()].to_bits());
                    }
                }
                let key = &key_arena[key_start..];
                let hash = fnv1a(key);
                comp_hash.push(hash);
                if let Some(slot) = memo_prev.lookup(hash, key) {
                    let res = slot.res_start as usize;
                    for (j, &entry) in members.iter().enumerate() {
                        rates[entry as usize] = memo_prev.rates[res + j];
                        bindings[entry as usize] = memo_prev.bindings[res + j];
                    }
                    *reused += 1;
                } else {
                    missed.push(c as u32);
                    missed_entries += size;
                }
            }
            comp_key_start.push(key_arena.len() as u32);
        }

        // ---- plan contiguous chunks of *missed* components ------------
        let threads = threads.max(1);
        let n_missed = self.missed.len();
        let workers = if missed_entries < MIN_PARALLEL_ENTRIES {
            1
        } else {
            threads.min(n_missed.max(1))
        };
        self.chunk_bounds.clear();
        if n_missed > 0 {
            let target = missed_entries.div_ceil(workers).max(1) as u32;
            let mut start = 0u32;
            let mut in_chunk = 0u32;
            for (mi, &c) in self.missed.iter().enumerate() {
                in_chunk += self.comp_sizes[c as usize];
                if in_chunk >= target || mi + 1 == n_missed {
                    self.chunk_bounds.push((start, mi as u32 + 1));
                    start = mi as u32 + 1;
                    in_chunk = 0;
                }
            }
        }
        let n_chunks = self.chunk_bounds.len();
        if self.scratch.len() < n_chunks {
            self.scratch.resize_with(n_chunks, ChunkScratch::default);
        }

        // ---- solve chunks (parallel when available and asked for) -----
        let tables = Tables {
            capacities,
            route_start: &self.route_start,
            route_len: &self.route_len,
            routes: &self.routes,
            caps: &self.caps,
            weights: &self.weights,
        };
        let comp_offsets = &self.comp_offsets;
        let comp_sizes = &self.comp_sizes;
        let by_comp = &self.by_comp;
        let chunk_bounds = &self.chunk_bounds;
        let missed = &self.missed;
        let run_chunk = |k: usize, scratch: &mut ChunkScratch| {
            scratch.out_rates.clear();
            scratch.out_bindings.clear();
            let (lo, hi) = chunk_bounds[k];
            for &c in &missed[lo as usize..hi as usize] {
                let off = comp_offsets[c as usize] as usize;
                let size = comp_sizes[c as usize] as usize;
                scratch.solve_component(&tables, &by_comp[off..off + size]);
            }
        };
        let scratch = &mut self.scratch[..n_chunks];
        #[cfg(feature = "parallel")]
        if workers > 1 && n_chunks > 1 {
            rayon::scope(|s| {
                for (k, chunk_scratch) in scratch.iter_mut().enumerate() {
                    let run_chunk = &run_chunk;
                    s.spawn(move |_| run_chunk(k, chunk_scratch));
                }
            });
        } else {
            for (k, chunk_scratch) in scratch.iter_mut().enumerate() {
                run_chunk(k, chunk_scratch);
            }
        }
        #[cfg(not(feature = "parallel"))]
        for (k, chunk_scratch) in scratch.iter_mut().enumerate() {
            run_chunk(k, chunk_scratch);
        }

        // ---- canonical merge: serial scatter back to entry order ------
        // Memo hits were scattered during lookup; chunk outputs cover the
        // missed components, in missed order within each chunk.
        for (k, &(lo, hi)) in self.chunk_bounds.iter().enumerate() {
            let chunk = &self.scratch[k];
            let mut j = 0usize;
            for &c in &self.missed[lo as usize..hi as usize] {
                let off = self.comp_offsets[c as usize] as usize;
                let size = self.comp_sizes[c as usize] as usize;
                for pos in off..off + size {
                    let entry = self.by_comp[pos] as usize;
                    self.rates[entry] = chunk.out_rates[j];
                    self.bindings[entry] = chunk.out_bindings[j];
                    j += 1;
                }
            }
        }
        // ---- refresh the memo with this solve's results ---------------
        self.memo_next.clear();
        for c in 0..n_comp {
            let key = &self.key_arena
                [self.comp_key_start[c] as usize..self.comp_key_start[c + 1] as usize];
            let off = self.comp_offsets[c] as usize;
            let size = self.comp_sizes[c] as usize;
            self.memo_next.insert_gather(
                self.comp_hash[c],
                key,
                &self.by_comp[off..off + size],
                &self.rates,
                &self.bindings,
            );
        }
        std::mem::swap(&mut self.memo_prev, &mut self.memo_next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fairshare::{solve, FlowReq, Workspace};

    fn rid(i: usize) -> ResourceId {
        ResourceId::from_index(i)
    }

    fn weighted<'a>(route: &'a [ResourceId], cap: Option<f64>, weight: f64) -> WeightedReq<'a> {
        WeightedReq {
            route,
            rate_cap: cap,
            weight,
        }
    }

    #[test]
    fn disjoint_pairs_solve_like_the_monolith() {
        // Two independent links, two flows each: exact answers, so the
        // partitioned result must equal the monolithic one bitwise.
        let caps = [100.0, 60.0];
        let r0 = [rid(0)];
        let r1 = [rid(1)];
        let flows = vec![req(&r0), req(&r0), req(&r1), req(&r1)];
        let reference = solve(&caps, &flows);

        let mut pw = PartitionWorkspace::new();
        pw.solve(
            &caps,
            flows.iter().map(|f| weighted(f.route, f.rate_cap, 1.0)),
            1,
        );
        assert_eq!(pw.components(), 2);
        assert_eq!(pw.max_component(), 2);
        assert_eq!(pw.singletons(), 0);
        for (a, b) in pw.rates().iter().zip(reference.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    fn req(route: &[ResourceId]) -> FlowReq<'_> {
        FlowReq {
            route,
            rate_cap: None,
        }
    }

    #[test]
    fn shared_resource_merges_components() {
        // Flow 1 bridges resources 0 and 1, so all three flows are one
        // component and the result is exactly the monolithic solve.
        let caps = [10.0, 10.0];
        let r0 = [rid(0)];
        let r01 = [rid(0), rid(1)];
        let r1 = [rid(1)];
        let entries = [
            weighted(&r0, None, 1.0),
            weighted(&r01, None, 1.0),
            weighted(&r1, None, 1.0),
        ];
        let mut pw = PartitionWorkspace::new();
        pw.solve(&caps, entries.iter().copied(), 4);
        assert_eq!(pw.components(), 1);
        assert_eq!(pw.max_component(), 3);
        let mut ws = Workspace::new();
        let reference = fairshare::solve_into(&mut ws, &caps, entries.iter().copied()).to_vec();
        for (a, b) in pw.rates().iter().zip(reference.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(pw.bindings(), ws.bindings());
    }

    #[test]
    fn empty_routes_get_cap_or_infinity() {
        let caps = [50.0];
        let shared = [rid(0)];
        let empty: [ResourceId; 0] = [];
        let entries = [
            weighted(&empty, Some(7.0), 1.0),
            weighted(&shared, None, 1.0),
            weighted(&empty, None, 1.0),
        ];
        let mut pw = PartitionWorkspace::new();
        pw.solve(&caps, entries.iter().copied(), 2);
        assert_eq!(pw.rates()[0], 7.0);
        assert_eq!(pw.rates()[1], 50.0);
        assert_eq!(pw.rates()[2], f64::INFINITY);
        assert_eq!(pw.components(), 1);
        assert_eq!(pw.singletons(), 1);
    }

    #[test]
    fn thread_count_never_changes_bits() {
        // A mixed instance: several disjoint groups of varying size, rate
        // caps, weighted entries, and a weird capacity to make the
        // divisions inexact.
        let mut caps = Vec::new();
        let mut routes: Vec<Vec<ResourceId>> = Vec::new();
        for g in 0..37 {
            let base = caps.len();
            caps.push(93.7 + g as f64);
            caps.push(41.3 + (g % 5) as f64);
            for k in 0..(1 + g % 4) {
                routes.push(if k % 2 == 0 {
                    vec![rid(base)]
                } else {
                    vec![rid(base), rid(base + 1)]
                });
            }
        }
        let entries: Vec<(usize, Option<f64>, f64)> = routes
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let cap = (i % 3 == 0).then_some(7.0 + i as f64);
                (i, cap, 1.0 + (i % 2) as f64)
            })
            .collect();
        let make = |pw: &mut PartitionWorkspace, threads: usize| {
            pw.solve(
                &caps,
                entries
                    .iter()
                    .map(|&(i, cap, w)| weighted(&routes[i], cap, w)),
                threads,
            );
            (pw.rates().to_vec(), pw.bindings().to_vec())
        };
        let mut pw = PartitionWorkspace::new();
        let (serial_rates, serial_bindings) = make(&mut pw, 1);
        for threads in [2, 4, 8] {
            let mut pw = PartitionWorkspace::new();
            let (rates, bindings) = make(&mut pw, threads);
            assert_eq!(bindings, serial_bindings);
            for (a, b) in rates.iter().zip(serial_rates.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn workspace_reuse_is_clean_across_shapes() {
        // Solving a big instance and then a small one must not leak state.
        let caps = [10.0, 20.0, 30.0];
        let r0 = [rid(0)];
        let r1 = [rid(1)];
        let r2 = [rid(2)];
        let mut pw = PartitionWorkspace::new();
        pw.solve(
            &caps,
            [
                weighted(&r0, None, 1.0),
                weighted(&r1, None, 1.0),
                weighted(&r2, Some(5.0), 2.0),
            ]
            .into_iter(),
            4,
        );
        assert_eq!(pw.components(), 3);
        pw.solve(&caps, [weighted(&r1, None, 1.0)].into_iter(), 4);
        assert_eq!(pw.components(), 1);
        assert_eq!(pw.rates(), &[20.0]);
        assert_eq!(pw.singletons(), 1);
    }
}
