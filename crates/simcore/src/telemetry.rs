//! Engine observability: resource time series, utilization histograms,
//! and engine-internal counters.
//!
//! The simulator's headline output (the event trace in [`crate::trace`])
//! says *what* happened; this module records *why*: how hard each resource
//! was driven over time, how deep its queue of concurrent flows was, and
//! how much work the incremental solver actually did. Three instruments:
//!
//! * **Per-resource time series** — at every solver epoch (the only
//!   instants at which rates can change) the engine samples, for each
//!   resource, the total allocated rate and the number of streaming flows
//!   crossing it. Samples land in a fixed-capacity ring buffer
//!   ([`RingSeries`]) so long simulations have bounded memory; the number
//!   of evicted samples is reported so consumers know the series is
//!   truncated.
//! * **Windowed utilization histograms** — every integration span
//!   contributes `dt` seconds to the bin matching the resource's achieved
//!   utilization over that span ([`UtilizationHistogram`]), extending the
//!   two scalars of [`crate::stats::ResourceStats`] into a distribution.
//! * **Engine counters** ([`EngineCounters`]) — solve calls, solver input
//!   sizes before and after route grouping, heap traffic, lazy
//!   invalidations, and deferred-integration fast-path events. These make
//!   the incremental engine's claimed savings observable on any run
//!   instead of only on the criterion benches.
//!
//! Sampling and histograms are **disabled by default** and cost nothing
//! when off (a single branch per solve / integration); enable them with
//! [`TelemetryConfig`] via [`crate::engine::EngineConfig`] or
//! [`crate::Engine::set_telemetry_config`]. Counters are plain integer
//! increments and are always maintained.
//!
//! Telemetry never influences the simulation: rates, event times, and
//! completion order are identical with telemetry on or off (property-tested
//! in `tests/trace_export.rs`).

use crate::ids::{ActivityId, ResourceId};

/// Configuration of the sampling instruments.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// Master switch for time-series sampling and utilization histograms.
    /// Counters are always on. Defaults to `false`.
    pub enabled: bool,
    /// Maximum retained samples per resource series; older samples are
    /// evicted ring-buffer style. Defaults to 4096.
    pub ring_capacity: usize,
    /// Number of equal-width utilization bins over `[0, 1]`. Defaults
    /// to 10.
    pub histogram_bins: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: false,
            ring_capacity: 4096,
            histogram_bins: 10,
        }
    }
}

impl TelemetryConfig {
    /// A configuration with sampling enabled and default sizes.
    pub fn enabled() -> Self {
        TelemetryConfig {
            enabled: true,
            ..Self::default()
        }
    }
}

/// One time-series sample for one resource, taken at a solver epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceSample {
    /// Simulated time of the sample, seconds.
    pub time: f64,
    /// Total rate allocated across the resource at that instant, in the
    /// resource's work units per second.
    pub allocated_rate: f64,
    /// Number of streaming flows crossing the resource (queue depth).
    pub queue_depth: u32,
}

/// A bounded, chronologically ordered sample buffer.
///
/// Pushing beyond capacity evicts the oldest sample and increments
/// [`RingSeries::evicted`], so consumers can tell a truncated series from a
/// complete one.
#[derive(Debug, Clone, Default)]
pub struct RingSeries {
    cap: usize,
    /// Index of the oldest sample once the buffer has wrapped.
    head: usize,
    buf: Vec<ResourceSample>,
    evicted: u64,
}

impl RingSeries {
    /// Creates an empty series retaining at most `cap` samples.
    pub fn new(cap: usize) -> Self {
        RingSeries {
            cap: cap.max(1),
            head: 0,
            buf: Vec::new(),
            evicted: 0,
        }
    }

    /// Appends a sample, evicting the oldest if the buffer is full.
    pub fn push(&mut self, sample: ResourceSample) {
        if self.buf.len() < self.cap {
            self.buf.push(sample);
        } else {
            self.buf[self.head] = sample;
            self.head = (self.head + 1) % self.cap;
            self.evicted += 1;
        }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no samples are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of samples evicted because the buffer was full.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Retained samples in chronological order.
    pub fn iter(&self) -> impl Iterator<Item = &ResourceSample> {
        let (older, newer) = self.buf.split_at(self.head);
        newer.iter().chain(older.iter())
    }

    /// Retained samples as an owned, chronologically ordered vector.
    pub fn to_vec(&self) -> Vec<ResourceSample> {
        self.iter().copied().collect()
    }
}

/// Time-weighted distribution of a resource's achieved utilization.
///
/// Each integration span of length `dt` adds `dt` seconds to the bin for
/// the utilization achieved over that span (`served / dt / capacity`,
/// clamped to `[0, 1]`). Bins are equal-width over `[0, 1]`; the last bin
/// is closed so a fully utilized span lands in it.
#[derive(Debug, Clone, Default)]
pub struct UtilizationHistogram {
    bins: Vec<f64>,
    /// Integral of utilization over recorded time (for the exact
    /// time-weighted mean, independent of binning).
    weighted: f64,
    total: f64,
}

impl UtilizationHistogram {
    /// Creates a histogram with `bins` equal-width utilization bins.
    pub fn new(bins: usize) -> Self {
        UtilizationHistogram {
            bins: vec![0.0; bins.max(1)],
            weighted: 0.0,
            total: 0.0,
        }
    }

    /// Adds `dt` seconds spent at the given utilization (clamped to
    /// `[0, 1]`). Zero or negative spans are ignored.
    pub fn record(&mut self, utilization: f64, dt: f64) {
        if dt <= 0.0 {
            return;
        }
        let u = utilization.clamp(0.0, 1.0);
        let n = self.bins.len();
        let idx = ((u * n as f64) as usize).min(n - 1);
        self.bins[idx] += dt;
        self.weighted += u * dt;
        self.total += dt;
    }

    /// Seconds accumulated per utilization bin, lowest bin first.
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// Total recorded time, seconds.
    pub fn total_time(&self) -> f64 {
        self.total
    }

    /// Exact time-weighted mean utilization over the recorded spans, or 0
    /// if nothing was recorded.
    pub fn mean_utilization(&self) -> f64 {
        if self.total > 0.0 {
            self.weighted / self.total
        } else {
            0.0
        }
    }
}

/// Monotonic counters over engine internals. Always maintained (integer
/// increments); reset only by building a fresh engine.
///
/// Together these expose the incremental engine's work savings: compare
/// `solves` with `events`, or `solver_flows` with `solver_groups`, to see
/// the dirty-set and route-grouping optimizations acting on a given run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Event instants processed (batches of simultaneous completions).
    pub events: u64,
    /// Completions delivered to the caller.
    pub completions: u64,
    /// Fair-share solver invocations.
    pub solves: u64,
    /// Streaming flows summed over all solves (the dirty-set sizes).
    pub solver_flows: u64,
    /// Weighted solver entries summed over all solves (after route
    /// grouping; equals `solver_flows` in naive mode).
    pub solver_groups: u64,
    /// Events pushed onto the pending-event heap.
    pub heap_pushes: u64,
    /// Events popped from the heap (live and stale).
    pub heap_pops: u64,
    /// Stale heap entries discarded by lazy invalidation (superseded
    /// flow-end predictions and already-completed activities).
    pub heap_stale: u64,
    /// Pure-delay events absorbed by the deferred-integration fast path
    /// (no solve, no integration, no completion scan).
    pub fastpath_events: u64,
    /// Integration spans applied with `dt > 0`.
    pub integrations: u64,
    /// Solves that went through the connected-component partitioner
    /// (zero unless [`crate::EngineConfig::partition`] is on).
    pub partitioned_solves: u64,
    /// Connected components summed over all partitioned solves; divide by
    /// `partitioned_solves` for the mean decomposition width.
    pub components: u64,
    /// Entry count of the largest component seen in any partitioned solve
    /// (a running maximum, not a sum).
    pub component_max: u64,
    /// Single-entry components summed over all partitioned solves.
    pub singleton_components: u64,
    /// Components whose results were reused from the previous solve's
    /// memo (exact content-key match; bit-for-bit identical to solving),
    /// summed over all partitioned solves. `components -
    /// components_reused` is the number of sub-problems actually solved.
    pub components_reused: u64,
}

impl EngineCounters {
    /// All counters as `(name, value)` pairs, in a stable order; the names
    /// are the exported identifiers of the trace-format contract (see
    /// `docs/trace-format.md`).
    pub fn as_named(&self) -> [(&'static str, u64); 15] {
        [
            ("events", self.events),
            ("completions", self.completions),
            ("solves", self.solves),
            ("solver_flows", self.solver_flows),
            ("solver_groups", self.solver_groups),
            ("heap_pushes", self.heap_pushes),
            ("heap_pops", self.heap_pops),
            ("heap_stale", self.heap_stale),
            ("fastpath_events", self.fastpath_events),
            ("integrations", self.integrations),
            ("partitioned_solves", self.partitioned_solves),
            ("components", self.components),
            ("component_max", self.component_max),
            ("singleton_components", self.singleton_components),
            ("components_reused", self.components_reused),
        ]
    }
}

/// The engine-owned telemetry state: counters plus, when enabled,
/// per-resource sample rings and utilization histograms.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    config: TelemetryConfig,
    /// Engine-internal counters (always on).
    pub counters: EngineCounters,
    series: Vec<RingSeries>,
    histograms: Vec<UtilizationHistogram>,
}

impl Telemetry {
    /// Creates telemetry state for the given configuration.
    pub fn new(config: TelemetryConfig) -> Self {
        Telemetry {
            config,
            counters: EngineCounters::default(),
            series: Vec::new(),
            histograms: Vec::new(),
        }
    }

    /// Whether sampling instruments are active.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// The active configuration.
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// Replaces the configuration, keeping counters. Existing samples are
    /// retained when still enabled; grows per-resource state lazily.
    pub fn set_config(&mut self, config: TelemetryConfig) {
        if !config.enabled {
            self.series.clear();
            self.histograms.clear();
        } else if config.ring_capacity != self.config.ring_capacity
            || config.histogram_bins != self.config.histogram_bins
        {
            let n = self.series.len().max(self.histograms.len());
            self.series = (0..n)
                .map(|_| RingSeries::new(config.ring_capacity))
                .collect();
            self.histograms = (0..n)
                .map(|_| UtilizationHistogram::new(config.histogram_bins))
                .collect();
        }
        self.config = config;
    }

    /// Grows per-resource state to cover `n` resources.
    pub fn ensure_resources(&mut self, n: usize) {
        if !self.config.enabled {
            return;
        }
        while self.series.len() < n {
            self.series.push(RingSeries::new(self.config.ring_capacity));
        }
        while self.histograms.len() < n {
            self.histograms
                .push(UtilizationHistogram::new(self.config.histogram_bins));
        }
    }

    /// Records one sample per resource at time `t`. `rates[i]` and
    /// `depths[i]` are the allocated rate and queue depth of resource `i`.
    pub fn record_samples(&mut self, t: f64, rates: &[f64], depths: &[u32]) {
        if !self.config.enabled {
            return;
        }
        self.ensure_resources(rates.len());
        for (i, series) in self.series.iter_mut().enumerate().take(rates.len()) {
            series.push(ResourceSample {
                time: t,
                allocated_rate: rates[i],
                queue_depth: depths[i],
            });
        }
    }

    /// Accounts one integration span: resource `i` served `served[i]` work
    /// units over `dt` seconds against capacity `capacities[i]`.
    pub fn record_utilization(&mut self, served: &[f64], dt: f64, capacities: &[f64]) {
        if !self.config.enabled || dt <= 0.0 {
            return;
        }
        self.ensure_resources(served.len());
        for (i, hist) in self.histograms.iter_mut().enumerate().take(served.len()) {
            let cap = capacities[i];
            let util = if cap > 0.0 { served[i] / dt / cap } else { 0.0 };
            hist.record(util, dt);
        }
    }

    /// The sample series of resource `i`, if sampling is enabled and the
    /// resource has been observed.
    pub fn series(&self, i: usize) -> Option<&RingSeries> {
        self.series.get(i)
    }

    /// The utilization histogram of resource `i`, if available.
    pub fn histogram(&self, i: usize) -> Option<&UtilizationHistogram> {
        self.histograms.get(i)
    }
}

/// Contention accounting of one completed flow (always maintained, like
/// [`EngineCounters`]).
///
/// The *uncontended rate* is what the flow would achieve alone: the minimum
/// capacity along its route, clamped by its rate cap. Whenever the achieved
/// fair-share rate falls short of it, the engine integrates the gap and
/// attributes it to the binding resource identified by the fair-share
/// solver's freeze pass ([`crate::fairshare::Binding`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionRecord {
    /// The flow's activity id.
    pub id: ActivityId,
    /// Spawn time, seconds.
    pub start: f64,
    /// Completion time, seconds.
    pub end: f64,
    /// Startup latency the flow was spawned with, seconds.
    pub latency: f64,
    /// Work the flow was spawned with (bytes or core-seconds).
    pub amount: f64,
    /// Rate the flow would have achieved alone (min capacity along the
    /// route, clamped by the rate cap).
    pub uncontended_rate: f64,
    /// Work not transferred due to contention: `∫ (uncontended − achieved)
    /// dt` over the flow's streaming spans.
    pub lost_work: f64,
    /// Seconds lost to contention: `lost_work / uncontended_rate`, i.e. the
    /// flow's duration minus its ideal (uncontended) duration.
    pub wait: f64,
    /// The resource that caused most of the lost work, or `None` when the
    /// flow never lost work to a resource (it ran at its cap throughout).
    pub binding: Option<ResourceId>,
    /// Lost work per blamed resource, in first-blamed order.
    pub blame: Vec<(ResourceId, f64)>,
}

impl ContentionRecord {
    /// Wall-clock duration of the flow, seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Duration the flow would have had alone: latency plus work at the
    /// uncontended rate (zero work at infinite rate).
    pub fn ideal_duration(&self) -> f64 {
        if self.uncontended_rate.is_finite() && self.uncontended_rate > 0.0 {
            self.latency + self.amount / self.uncontended_rate
        } else {
            self.latency
        }
    }
}

/// Aggregate contention blamed on one resource (always maintained).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceBlame {
    /// Total work victims failed to transfer while bound here.
    pub lost_work: f64,
    /// Total victim-seconds lost while bound here (each victim flow's
    /// `gap / uncontended_rate`, integrated).
    pub wait: f64,
    /// Earliest instant blame accrued, seconds (`INFINITY` when none).
    pub first: f64,
    /// Latest instant blame accrued, seconds (`NEG_INFINITY` when none).
    pub last: f64,
}

impl Default for ResourceBlame {
    fn default() -> Self {
        ResourceBlame {
            lost_work: 0.0,
            wait: 0.0,
            first: f64::INFINITY,
            last: f64::NEG_INFINITY,
        }
    }
}

impl ResourceBlame {
    /// The `[first, last]` interval over which blame accrued, or `None`
    /// when the resource was never a binding constraint with a gap.
    pub fn interval(&self) -> Option<(f64, f64)> {
        (self.first <= self.last).then_some((self.first, self.last))
    }
}

/// Owned copy of one resource's telemetry, with identity attached.
#[derive(Debug, Clone)]
pub struct ResourceTelemetry {
    /// Resource name as registered with the engine.
    pub name: String,
    /// Resource capacity, work units per second.
    pub capacity: f64,
    /// Retained `(time, allocated_rate, queue_depth)` samples,
    /// chronological.
    pub samples: Vec<ResourceSample>,
    /// Samples evicted from the ring before this snapshot.
    pub evicted: u64,
    /// Time-weighted utilization distribution.
    pub histogram: UtilizationHistogram,
    /// Contention blamed on this resource.
    pub blame: ResourceBlame,
}

/// A self-contained copy of a run's telemetry, detached from the engine.
///
/// Produced by [`crate::Engine::telemetry_snapshot`]; consumed by the
/// report/exporter layer in `wfbb-wms`.
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// Engine counters at snapshot time.
    pub counters: EngineCounters,
    /// Per-resource series and histograms, in resource-index order.
    pub resources: Vec<ResourceTelemetry>,
    /// Per-flow contention records, in completion order.
    pub contention: Vec<ContentionRecord>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, r: f64, q: u32) -> ResourceSample {
        ResourceSample {
            time: t,
            allocated_rate: r,
            queue_depth: q,
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_evictions() {
        let mut s = RingSeries::new(3);
        for k in 0..5 {
            s.push(sample(k as f64, 1.0, 1));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.evicted(), 2);
        let times: Vec<f64> = s.iter().map(|x| x.time).collect();
        assert_eq!(times, vec![2.0, 3.0, 4.0]);
        assert_eq!(s.to_vec().len(), 3);
    }

    #[test]
    fn ring_below_capacity_is_chronological() {
        let mut s = RingSeries::new(8);
        s.push(sample(0.0, 1.0, 1));
        s.push(sample(1.0, 2.0, 2));
        let v = s.to_vec();
        assert_eq!(v[0].time, 0.0);
        assert_eq!(v[1].queue_depth, 2);
        assert_eq!(s.evicted(), 0);
    }

    #[test]
    fn histogram_bins_time_by_utilization() {
        let mut h = UtilizationHistogram::new(10);
        h.record(0.05, 2.0); // bin 0
        h.record(0.55, 1.0); // bin 5
        h.record(1.0, 3.0); // clamped into last bin
        h.record(2.0, 1.0); // clamped to 1.0, last bin
        assert_eq!(h.bins()[0], 2.0);
        assert_eq!(h.bins()[5], 1.0);
        assert_eq!(h.bins()[9], 4.0);
        assert_eq!(h.total_time(), 7.0);
        let mean = (0.05 * 2.0 + 0.55 + 1.0 * 3.0 + 1.0) / 7.0;
        assert!((h.mean_utilization() - mean).abs() < 1e-12);
    }

    #[test]
    fn histogram_ignores_empty_spans() {
        let mut h = UtilizationHistogram::new(4);
        h.record(0.5, 0.0);
        h.record(0.5, -1.0);
        assert_eq!(h.total_time(), 0.0);
        assert_eq!(h.mean_utilization(), 0.0);
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        let mut t = Telemetry::new(TelemetryConfig::default());
        t.record_samples(1.0, &[5.0], &[1]);
        t.record_utilization(&[5.0], 1.0, &[10.0]);
        assert!(t.series(0).is_none());
        assert!(t.histogram(0).is_none());
    }

    #[test]
    fn enabled_telemetry_tracks_per_resource() {
        let mut t = Telemetry::new(TelemetryConfig::enabled());
        t.record_samples(1.0, &[5.0, 0.0], &[2, 0]);
        t.record_utilization(&[5.0, 0.0], 1.0, &[10.0, 10.0]);
        let s0 = t.series(0).unwrap();
        assert_eq!(s0.len(), 1);
        assert_eq!(s0.to_vec()[0].queue_depth, 2);
        let h0 = t.histogram(0).unwrap();
        assert!((h0.mean_utilization() - 0.5).abs() < 1e-12);
        let h1 = t.histogram(1).unwrap();
        assert_eq!(h1.mean_utilization(), 0.0);
    }

    #[test]
    fn counter_names_are_stable() {
        let c = EngineCounters {
            solves: 3,
            ..Default::default()
        };
        let named = c.as_named();
        assert_eq!(named.len(), 15);
        assert!(named.contains(&("solves", 3)));
        // Names are unique.
        let mut names: Vec<_> = named.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 15);
    }

    #[test]
    fn blame_interval_requires_accrual() {
        let empty = ResourceBlame::default();
        assert_eq!(empty.interval(), None);
        let accrued = ResourceBlame {
            lost_work: 5.0,
            wait: 0.5,
            first: 1.0,
            last: 3.0,
        };
        assert_eq!(accrued.interval(), Some((1.0, 3.0)));
    }

    #[test]
    fn contention_record_ideal_duration() {
        let rec = ContentionRecord {
            id: ActivityId(0),
            start: 0.0,
            end: 12.0,
            latency: 2.0,
            amount: 100.0,
            uncontended_rate: 20.0,
            lost_work: 100.0,
            wait: 5.0,
            binding: Some(ResourceId::from_index(0)),
            blame: vec![(ResourceId::from_index(0), 100.0)],
        };
        assert!((rec.ideal_duration() - 7.0).abs() < 1e-12);
        assert!((rec.duration() - 12.0).abs() < 1e-12);
        // wait = duration - ideal for a flow contended its whole life.
        assert!((rec.duration() - rec.ideal_duration() - rec.wait).abs() < 1e-12);
    }

    #[test]
    fn reconfiguring_disabled_drops_samples() {
        let mut t = Telemetry::new(TelemetryConfig::enabled());
        t.record_samples(1.0, &[5.0], &[1]);
        t.set_config(TelemetryConfig::default());
        assert!(t.series(0).is_none());
        assert!(!t.enabled());
    }
}
