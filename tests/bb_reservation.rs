//! Property tests for the machine-wide burst-buffer reservation pool:
//! across randomized campaigns (any policy, any pressure, with and
//! without kill faults), reserved BB capacity never exceeds the pool,
//! never goes negative, and the pool returns to its initial free
//! capacity once the campaign drains.

use proptest::prelude::*;

use wfbb::prelude::*;
use wfbb::sched::{
    run_campaign, synthetic_jobs, BatchPolicy, CampaignConfig, JobSpec, JobStatus, SyntheticConfig,
};
use wfbb::storage::BbPool;

fn campaign(seed: u64, jobs: usize, scale: f64) -> Vec<JobSpec> {
    synthetic_jobs(
        seed,
        &SyntheticConfig {
            jobs,
            mean_interarrival: 20.0,
            bb_request_scale: scale,
            max_nodes: 2,
        },
    )
    .unwrap()
}

/// Asserts the pool invariants on a finished campaign report.
fn check_pool(report: &wfbb::sched::CampaignReport) -> Result<(), TestCaseError> {
    let pool = report.bb_pool_bytes;
    for s in &report.utilization {
        prop_assert!(
            s.bb_reserved >= 0.0,
            "reserved BB went negative: {} at t={}",
            s.bb_reserved,
            s.time
        );
        prop_assert!(
            s.bb_reserved <= pool + 1e-3,
            "reserved BB {} exceeds the pool {} at t={}",
            s.bb_reserved,
            pool,
            s.time
        );
    }
    prop_assert!(
        (report.bb_pool_free_end - pool).abs() <= pool * 1e-9,
        "pool did not return to its initial capacity: free_end {} vs {}",
        report.bb_pool_free_end,
        pool
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fault-free campaigns: any policy, any BB pressure.
    #[test]
    fn bb_pool_invariants_hold_for_random_campaigns(
        seed in 0u64..10_000,
        jobs in 2usize..7,
        scale in 0.25f64..2.5,
        policy_idx in 0usize..4,
    ) {
        let jobs = campaign(seed, jobs, scale);
        let config = CampaignConfig::new(presets::cori(8, BbMode::Striped))
            .with_policy(BatchPolicy::ALL[policy_idx])
            .with_platform_label("cori:striped");
        let report = run_campaign(&config, &jobs).unwrap();
        check_pool(&report)?;
    }

    /// Campaigns with kill faults: killed tasks retry or fail the job,
    /// and either way the reservation must come back.
    #[test]
    fn bb_pool_returns_after_faulty_campaigns(
        seed in 0u64..10_000,
        kill_time in 1.0f64..400.0,
        attempts in 1u32..3,
    ) {
        let jobs: Vec<JobSpec> = campaign(seed, 5, 1.0)
            .into_iter()
            .map(|j| {
                if j.workflow_spec.starts_with("swarp") {
                    // Every SWarp instance has a resample_0 task; kills
                    // landing outside its compute window are no-ops, so
                    // cases cover clean runs, retries, and job failures.
                    j.with_kill("resample_0", kill_time)
                        .with_max_attempts(attempts)
                } else {
                    j
                }
            })
            .collect();
        let config = CampaignConfig::new(presets::cori(8, BbMode::Striped))
            .with_policy(BatchPolicy::BbAware)
            .with_platform_label("cori:striped");
        let report = run_campaign(&config, &jobs).unwrap();
        // Failed jobs still release; nothing may be left queued.
        for j in &report.jobs {
            prop_assert!(j.status == JobStatus::Completed || j.status == JobStatus::Failed);
        }
        check_pool(&report)?;
    }

    /// The ledger itself, exercised directly with random interleavings
    /// of reserve/release: conservation holds after every operation.
    #[test]
    fn ledger_conserves_capacity_under_random_interleavings(
        capacity in 1.0f64..1e15,
        ops in proptest::collection::vec((0u32..8, 0.0f64..1e15, 0u32..2), 1..40),
    ) {
        let mut pool = BbPool::new(capacity);
        for (job, bytes, release) in ops {
            if release == 1 {
                let _ = pool.release(job);
            } else if pool.granted(job).is_none() {
                let _ = pool.try_reserve(job, bytes);
            }
            prop_assert!(pool.free() >= 0.0, "free went negative");
            prop_assert!(
                pool.is_conserved(capacity * 1e-12),
                "conservation violated: free {} capacity {}",
                pool.free(),
                capacity
            );
        }
        for job in 0..8 {
            let _ = pool.release(job);
        }
        prop_assert!((pool.free() - capacity).abs() <= capacity * 1e-12);
    }

    /// Shrinks (stripe deaths) interleaved with reserve/release:
    /// conservation holds against the *current* capacity after every
    /// operation, capacity never increases, free never goes negative,
    /// and the clawed-back bytes exactly cover whatever free capacity
    /// could not absorb.
    #[test]
    fn ledger_conserves_capacity_under_shrink_interleavings(
        capacity in 1.0f64..1e15,
        ops in proptest::collection::vec((0u32..8, 0.0f64..1e15, 0u32..4), 1..40),
    ) {
        let mut pool = BbPool::new(capacity);
        let tol = capacity * 1e-9;
        for (job, bytes, kind) in ops {
            match kind {
                0 | 1 => {
                    if pool.granted(job).is_none() {
                        let _ = pool.try_reserve(job, bytes);
                    }
                }
                2 => {
                    let _ = pool.release(job);
                }
                _ => {
                    let before_cap = pool.capacity();
                    let before_free = pool.free();
                    let clawed: f64 = pool.shrink(bytes).iter().map(|&(_, b)| b).sum();
                    let lost = bytes.min(before_cap);
                    prop_assert!(
                        (pool.capacity() - (before_cap - lost)).abs() <= tol,
                        "capacity {} after shrinking {} from {}",
                        pool.capacity(),
                        bytes,
                        before_cap
                    );
                    let deficit = (lost - before_free).max(0.0);
                    prop_assert!(
                        (clawed - deficit).abs() <= tol,
                        "clawed {} but free {} left a deficit of {}",
                        clawed,
                        before_free,
                        deficit
                    );
                }
            }
            prop_assert!(pool.free() >= 0.0, "free went negative");
            prop_assert!(
                pool.is_conserved(tol),
                "conservation violated: free {} capacity {}",
                pool.free(),
                pool.capacity()
            );
        }
        // Draining every job returns the pool to its *shrunk* capacity.
        for job in 0..8 {
            let _ = pool.release(job);
        }
        prop_assert!((pool.free() - pool.capacity()).abs() <= tol);
    }
}
