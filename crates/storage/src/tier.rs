//! Storage tiers and concrete file locations.

use serde::{Deserialize, Serialize};

/// The two storage tiers a file can be assigned to — the knob every
//  experiment in the paper sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// The parallel file system.
    Pfs,
    /// The burst buffer (whatever architecture the platform provides).
    BurstBuffer,
}

impl Tier {
    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Pfs => "PFS",
            Tier::BurstBuffer => "BB",
        }
    }
}

/// The four concrete storage services studied in the paper, for labeling
/// configurations in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StorageKind {
    /// Parallel file system.
    Pfs,
    /// Shared burst buffer, private mode (Cori).
    SharedBbPrivate,
    /// Shared burst buffer, striped mode (Cori).
    SharedBbStriped,
    /// On-node burst buffer (Summit).
    OnNodeBb,
}

impl StorageKind {
    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            StorageKind::Pfs => "pfs",
            StorageKind::SharedBbPrivate => "private",
            StorageKind::SharedBbStriped => "striped",
            StorageKind::OnNodeBb => "on-node",
        }
    }
}

/// Where a file concretely resides.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Location {
    /// On the parallel file system.
    Pfs,
    /// Whole file on one shared BB node (private mode).
    SharedBb {
        /// Index of the BB node holding the file.
        bb_node: usize,
    },
    /// Striped across shared BB nodes (striped mode).
    StripedBb {
        /// BB nodes holding one stripe each.
        stripe_nodes: Vec<usize>,
    },
    /// On the local burst buffer of one compute node.
    OnNodeBb {
        /// Compute node owning the device.
        node: usize,
    },
}

impl Location {
    /// The tier this location belongs to.
    pub fn tier(&self) -> Tier {
        match self {
            Location::Pfs => Tier::Pfs,
            _ => Tier::BurstBuffer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Tier::Pfs.label(), "PFS");
        assert_eq!(Tier::BurstBuffer.label(), "BB");
        assert_eq!(StorageKind::SharedBbStriped.label(), "striped");
        assert_eq!(StorageKind::OnNodeBb.label(), "on-node");
    }

    #[test]
    fn locations_map_to_tiers() {
        assert_eq!(Location::Pfs.tier(), Tier::Pfs);
        assert_eq!(Location::SharedBb { bb_node: 0 }.tier(), Tier::BurstBuffer);
        assert_eq!(
            Location::StripedBb {
                stripe_nodes: vec![0, 1]
            }
            .tier(),
            Tier::BurstBuffer
        );
        assert_eq!(Location::OnNodeBb { node: 2 }.tier(), Tier::BurstBuffer);
    }
}
