//! Fault injection: the WMS-level fault schedule and retry policy.
//!
//! A [`FaultSpec`] describes *what goes wrong and when* during a run, in
//! the terms of the failure model documented in `docs/failure-model.md`:
//!
//! * **BB node loss** (`bb:<idx>@<t>`) — device `idx`'s link, disk, and
//!   (on shared BBs) metadata service drop to zero capacity at time `t`;
//!   in-flight transfers touching the device are cancelled, files it held
//!   are re-sourced from the PFS, and subsequent placements avoid it per
//!   the storage layer's `FailoverPolicy`.
//! * **Tier degradation** (`bb:<idx>@<t>*<f>`, `pfs@<t>*<f>`) — the
//!   tier's resources drop to fraction `f ∈ (0, 1]` of nominal capacity.
//!   Nothing is cancelled; in-flight transfers simply slow down (the
//!   engine re-solves the fair share at the fault instant).
//! * **Task kill** (`task:<name>@<t>`) — if the named task is running at
//!   `t`, all its in-flight activities are cancelled and it re-executes
//!   from its read phase (or its last completed checkpoint, when a
//!   [`crate::CheckpointPolicy`] is set) after [`RetryPolicy::backoff`]
//!   seconds, up to [`RetryPolicy::max_attempts`] total attempts.
//! * **Seeded failures** (`seed:<s>:<k>@<horizon>`) — `k` BB node losses
//!   at deterministic pseudo-random times in `(0, horizon)`, expanded via
//!   [`wfbb_simcore::seeded_failures`] when the spec is
//!   [resolved](FaultSpec::resolve) against a concrete platform.
//!
//! The textual grammar (also accepted by the CLI's `--faults` flag)
//! separates events with commas or newlines and ignores `#` comments:
//!
//! ```
//! use wfbb_resilience::FaultSpec;
//! let spec = FaultSpec::parse(
//!     "bb:0@120, pfs@300*0.5\n\
//!      task:resample3@45.5  # kill one resample mid-run",
//! )
//! .unwrap();
//! assert_eq!(spec.resolve(4).unwrap().len(), 3);
//! ```
//!
//! Everything here is deterministic: an identical spec yields an
//! identical resolved schedule, and an **empty** spec leaves the
//! simulation bitwise-identical to one without fault injection.

use std::fmt;

/// Retry policy for killed tasks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts a task may use (first execution included). A task
    /// killed on its `max_attempts`-th attempt fails the run with the
    /// executor's `RetryExhausted` error.
    pub max_attempts: u32,
    /// Seconds between a kill and the re-execution's start.
    pub backoff: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: 0.0,
        }
    }
}

/// One resolved fault event (absolute simulated time, concrete target).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// BB device `device` is lost at `time`: its resources drop to zero
    /// capacity, in-flight transfers through it are cancelled, and its
    /// files are re-sourced from the PFS.
    BbNodeDown {
        /// Simulated seconds of the failure.
        time: f64,
        /// BB device index (shared BB node or on-node device).
        device: usize,
    },
    /// BB device `device` degrades to `factor` × nominal capacity.
    BbDegraded {
        /// Simulated seconds of the degradation.
        time: f64,
        /// BB device index.
        device: usize,
        /// Remaining capacity fraction, in `(0, 1]`.
        factor: f64,
    },
    /// The PFS (SAN link + backing store) degrades to `factor` × nominal.
    PfsDegraded {
        /// Simulated seconds of the degradation.
        time: f64,
        /// Remaining capacity fraction, in `(0, 1]`.
        factor: f64,
    },
    /// Task `task` (by workflow name) is killed at `time` if running.
    TaskKill {
        /// Simulated seconds of the kill.
        time: f64,
        /// Workflow task name.
        task: String,
    },
}

impl FaultEvent {
    /// When the event fires, simulated seconds.
    pub fn time(&self) -> f64 {
        match self {
            FaultEvent::BbNodeDown { time, .. }
            | FaultEvent::BbDegraded { time, .. }
            | FaultEvent::PfsDegraded { time, .. }
            | FaultEvent::TaskKill { time, .. } => *time,
        }
    }

    /// Short kind label (`bb-down`, `bb-degraded`, `pfs-degraded`,
    /// `task-kill`), as used in reports and traces.
    pub fn kind(&self) -> &'static str {
        match self {
            FaultEvent::BbNodeDown { .. } => "bb-down",
            FaultEvent::BbDegraded { .. } => "bb-degraded",
            FaultEvent::PfsDegraded { .. } => "pfs-degraded",
            FaultEvent::TaskKill { .. } => "task-kill",
        }
    }

    /// Target label (`bb:<idx>`, `pfs`, or the task name).
    pub fn target(&self) -> String {
        match self {
            FaultEvent::BbNodeDown { device, .. } | FaultEvent::BbDegraded { device, .. } => {
                format!("bb:{device}")
            }
            FaultEvent::PfsDegraded { .. } => "pfs".to_string(),
            FaultEvent::TaskKill { task, .. } => task.clone(),
        }
    }
}

/// A seeded-random failure clause: `count` BB node losses in
/// `(0, horizon)`, expanded deterministically at resolve time.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SeededClause {
    seed: u64,
    count: usize,
    horizon: f64,
}

/// A parsed (but not yet platform-resolved) fault schedule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSpec {
    events: Vec<FaultEvent>,
    seeded: Vec<SeededClause>,
}

/// A syntax or semantic error in a fault specification.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpecError {
    /// Human-readable description, including the offending token.
    pub message: String,
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault spec: {}", self.message)
    }
}

impl std::error::Error for FaultSpecError {}

fn err(message: impl Into<String>) -> FaultSpecError {
    FaultSpecError {
        message: message.into(),
    }
}

fn parse_time(s: &str, token: &str) -> Result<f64, FaultSpecError> {
    let t: f64 = s
        .parse()
        .map_err(|_| err(format!("bad time {s:?} in {token:?}")))?;
    if !t.is_finite() || t < 0.0 {
        return Err(err(format!(
            "time must be finite and non-negative in {token:?}"
        )));
    }
    Ok(t)
}

fn parse_factor(s: &str, token: &str) -> Result<f64, FaultSpecError> {
    let f: f64 = s
        .parse()
        .map_err(|_| err(format!("bad factor {s:?} in {token:?}")))?;
    if !(f > 0.0 && f <= 1.0) {
        return Err(err(format!("factor must be in (0, 1] in {token:?}")));
    }
    Ok(f)
}

impl FaultSpec {
    /// An empty schedule (injects nothing; bitwise-inert).
    pub fn new() -> Self {
        FaultSpec::default()
    }

    /// Whether the schedule contains no events and no seeded clauses.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.seeded.is_empty()
    }

    /// Appends an explicit event.
    pub fn push(&mut self, event: FaultEvent) -> &mut Self {
        self.events.push(event);
        self
    }

    /// Parses the textual grammar documented at module level. Events are
    /// separated by commas or newlines; `#` starts a comment running to
    /// the end of the line; blank entries are ignored.
    pub fn parse(input: &str) -> Result<FaultSpec, FaultSpecError> {
        let mut spec = FaultSpec::new();
        for line in input.lines() {
            let line = line.split('#').next().unwrap_or("");
            for token in line.split(',') {
                let token = token.trim();
                if token.is_empty() {
                    continue;
                }
                spec.parse_token(token)?;
            }
        }
        Ok(spec)
    }

    fn parse_token(&mut self, token: &str) -> Result<(), FaultSpecError> {
        let (target, when) = token
            .split_once('@')
            .ok_or_else(|| err(format!("missing '@<time>' in {token:?}")))?;
        let (time_str, factor_str) = match when.split_once('*') {
            Some((t, f)) => (t, Some(f)),
            None => (when, None),
        };

        if let Some(idx) = target.strip_prefix("bb:") {
            let device: usize = idx
                .parse()
                .map_err(|_| err(format!("bad BB device index {idx:?} in {token:?}")))?;
            let time = parse_time(time_str, token)?;
            match factor_str {
                Some(f) => self.events.push(FaultEvent::BbDegraded {
                    time,
                    device,
                    factor: parse_factor(f, token)?,
                }),
                None => self.events.push(FaultEvent::BbNodeDown { time, device }),
            }
        } else if target == "pfs" {
            let time = parse_time(time_str, token)?;
            let Some(f) = factor_str else {
                // A dead PFS loses the master copies failover depends on;
                // the model only supports degrading it.
                return Err(err(format!(
                    "the PFS cannot be killed, only degraded: use pfs@<t>*<factor> in {token:?}"
                )));
            };
            self.events.push(FaultEvent::PfsDegraded {
                time,
                factor: parse_factor(f, token)?,
            });
        } else if let Some(name) = target.strip_prefix("task:") {
            if name.is_empty() {
                return Err(err(format!("empty task name in {token:?}")));
            }
            if factor_str.is_some() {
                return Err(err(format!("task kills take no factor in {token:?}")));
            }
            self.events.push(FaultEvent::TaskKill {
                time: parse_time(time_str, token)?,
                task: name.to_string(),
            });
        } else if let Some(rest) = target.strip_prefix("seed:") {
            let (seed_str, count_str) = rest
                .split_once(':')
                .ok_or_else(|| err(format!("seed clause is seed:<s>:<k>@<horizon>: {token:?}")))?;
            let seed: u64 = seed_str
                .parse()
                .map_err(|_| err(format!("bad seed {seed_str:?} in {token:?}")))?;
            let count: usize = count_str
                .parse()
                .map_err(|_| err(format!("bad failure count {count_str:?} in {token:?}")))?;
            if factor_str.is_some() {
                return Err(err(format!("seed clauses take no factor in {token:?}")));
            }
            let horizon = parse_time(time_str, token)?;
            if horizon <= 0.0 {
                return Err(err(format!("seed horizon must be positive in {token:?}")));
            }
            self.seeded.push(SeededClause {
                seed,
                count,
                horizon,
            });
        } else {
            return Err(err(format!(
                "unknown fault target {target:?} in {token:?} \
                 (expected bb:<idx>, pfs, task:<name>, or seed:<s>:<k>)"
            )));
        }
        Ok(())
    }

    /// Resolves the spec against a platform with `bb_devices` BB devices:
    /// expands seeded clauses into concrete [`FaultEvent::BbNodeDown`]
    /// events and validates device indices. The result is sorted by time
    /// (stable: simultaneous events keep spec order).
    pub fn resolve(&self, bb_devices: usize) -> Result<Vec<FaultEvent>, FaultSpecError> {
        let mut events = self.events.clone();
        for ev in &events {
            match ev {
                FaultEvent::BbNodeDown { device, .. } | FaultEvent::BbDegraded { device, .. } => {
                    if *device >= bb_devices {
                        return Err(err(format!(
                            "BB device {device} out of range: platform has {bb_devices} device(s)"
                        )));
                    }
                }
                FaultEvent::PfsDegraded { .. } | FaultEvent::TaskKill { .. } => {}
            }
        }
        for clause in &self.seeded {
            if bb_devices == 0 {
                return Err(err(
                    "seeded BB failures require a platform with a burst buffer",
                ));
            }
            for (time, device) in
                wfbb_simcore::seeded_failures(clause.seed, clause.count, clause.horizon, bb_devices)
            {
                events.push(FaultEvent::BbNodeDown { time, device });
            }
        }
        events.sort_by(|a, b| a.time().total_cmp(&b.time()));
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_event_form() {
        let spec = FaultSpec::parse("bb:2@10, bb:0@5*0.25, pfs@30*0.5, task:combine1@7.5").unwrap();
        let events = spec.resolve(4).unwrap();
        assert_eq!(events.len(), 4);
        // Sorted by time.
        assert_eq!(
            events[0],
            FaultEvent::BbDegraded {
                time: 5.0,
                device: 0,
                factor: 0.25
            }
        );
        assert_eq!(
            events[1],
            FaultEvent::TaskKill {
                time: 7.5,
                task: "combine1".into()
            }
        );
        assert_eq!(
            events[2],
            FaultEvent::BbNodeDown {
                time: 10.0,
                device: 2
            }
        );
        assert_eq!(
            events[3],
            FaultEvent::PfsDegraded {
                time: 30.0,
                factor: 0.5
            }
        );
    }

    #[test]
    fn newlines_comments_and_blanks_are_tolerated() {
        let spec = FaultSpec::parse(
            "# header comment\n\
             bb:0@1.0,, \n\
             \n\
             task:t@2 # trailing comment",
        )
        .unwrap();
        assert_eq!(spec.resolve(1).unwrap().len(), 2);
    }

    #[test]
    fn seeded_clause_expands_deterministically() {
        let spec = FaultSpec::parse("seed:42:2@100").unwrap();
        let a = spec.resolve(4).unwrap();
        let b = spec.resolve(4).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        for ev in &a {
            match ev {
                FaultEvent::BbNodeDown { time, device } => {
                    assert!(*time > 0.0 && *time < 100.0);
                    assert!(*device < 4);
                }
                other => panic!("seeded clause must expand to node losses, got {other:?}"),
            }
        }
        // Distinct devices.
        let (d0, d1) = (
            match a[0] {
                FaultEvent::BbNodeDown { device, .. } => device,
                _ => unreachable!(),
            },
            match a[1] {
                FaultEvent::BbNodeDown { device, .. } => device,
                _ => unreachable!(),
            },
        );
        assert_ne!(d0, d1);
    }

    #[test]
    fn rejects_malformed_tokens() {
        for bad in [
            "bb:0",            // no time
            "bb:x@5",          // bad index
            "bb:0@-1",         // negative time
            "bb:0@nan",        // non-finite time
            "bb:0@5*0",        // zero factor
            "bb:0@5*1.5",      // factor > 1
            "pfs@5",           // PFS kill unsupported
            "task:@5",         // empty task name
            "task:t@5*0.5",    // factor on a kill
            "seed:1@50",       // missing count
            "seed:1:2@0",      // zero horizon
            "seed:1:2@50*0.5", // factor on a seed clause
            "disk:0@5",        // unknown target
        ] {
            let r = FaultSpec::parse(bad);
            assert!(r.is_err(), "{bad:?} must be rejected");
            let msg = r.unwrap_err().to_string();
            assert!(msg.starts_with("invalid fault spec:"), "{msg}");
        }
    }

    #[test]
    fn resolve_validates_device_range() {
        let spec = FaultSpec::parse("bb:3@10").unwrap();
        assert!(spec.resolve(4).is_ok());
        assert!(spec.resolve(3).is_err());
        let seeded = FaultSpec::parse("seed:1:1@10").unwrap();
        assert!(seeded.resolve(0).is_err(), "no BB, no seeded BB failures");
    }

    #[test]
    fn empty_spec_is_empty() {
        assert!(FaultSpec::new().is_empty());
        assert!(FaultSpec::parse("  # nothing\n").unwrap().is_empty());
        assert!(!FaultSpec::parse("bb:0@1").unwrap().is_empty());
        assert!(!FaultSpec::parse("seed:1:1@10").unwrap().is_empty());
        assert!(FaultSpec::new().resolve(0).unwrap().is_empty());
    }

    #[test]
    fn retry_policy_default_allows_three_attempts() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_attempts, 3);
        assert_eq!(p.backoff, 0.0);
    }
}
