//! Result tables: aligned text output and CSV export.

use std::fmt;
use std::path::Path;

/// A titled result table with named columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table title, e.g. `"Figure 4: stage-in time vs. fraction staged"`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells; each row has exactly `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table (paper comparisons,
    /// caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count does not match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width in table {:?}",
            self.title
        );
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// A filesystem-friendly slug derived from the title
    /// (`"Figure 4: ..."` → `"figure_4"`).
    pub fn slug(&self) -> String {
        let head = self.title.split(':').next().unwrap_or(&self.title);
        head.trim()
            .to_lowercase()
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect::<String>()
            .split('_')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("_")
    }

    /// Serializes the table as CSV (headers + rows; notes as trailing
    /// comment lines).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("# {note}\n"));
        }
        out
    }

    /// Writes the CSV form to `path`.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        // Column widths.
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

/// Formats a float with 2 decimal places (the tables' default precision).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimal places.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a fraction as a percent label ("75%").
pub fn pct(fraction: f64) -> String {
    format!("{:.0}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Figure 4: stage-in", &["config", "x", "y"]);
        t.push_row(vec!["private".into(), "0".into(), "1.5".into()]);
        t.note("paper states 5x");
        t
    }

    #[test]
    fn slug_extracts_figure_id() {
        assert_eq!(sample().slug(), "figure_4");
        let t = Table::new("Table I", &["a"]);
        assert_eq!(t.slug(), "table_i");
    }

    #[test]
    fn csv_round_trips_cells() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("config,x,y\n"));
        assert!(csv.contains("private,0,1.5\n"));
        assert!(csv.contains("# paper states 5x"));
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new("t", &["a"]);
        t.push_row(vec!["x,y\"z".into()]);
        assert!(t.to_csv().contains("\"x,y\"\"z\""));
    }

    #[test]
    fn display_renders_all_rows() {
        let text = format!("{}", sample());
        assert!(text.contains("== Figure 4"));
        assert!(text.contains("private"));
        assert!(text.contains("note: paper"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f3(1.2345), "1.234");
        assert_eq!(pct(0.75), "75%");
    }
}
