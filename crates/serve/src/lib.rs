//! Simulation-as-a-service: a long-running, multi-tenant what-if API
//! over the workflow/burst-buffer simulation engine.
//!
//! The service accepts `(workflow | campaign, platform, policy,
//! faults)` jobs as JSON over a dependency-free HTTP/1.1 layer built
//! on [`std::net::TcpListener`], runs them on a fixed worker-thread
//! pool, and serves the full artifact set (report JSON/CSV, explain,
//! decision log, Perfetto trace) per job id. Because the engine is
//! deterministic — same normalized input, same output bits — results
//! are memoized in an in-memory LRU keyed by a canonical input hash:
//! a repeated what-if query costs a hash lookup, not a simulation.
//!
//! The crate splits along the request path:
//!
//! * [`http`] — minimal HTTP/1.1 parsing/writing (no external deps);
//! * [`request`] — JSON job schema, validation, canonicalization, and
//!   the FNV-1a cache key;
//! * [`runner`] — executes a parsed request against the engine crates
//!   and collects the [`Artifacts`];
//! * [`cache`] — the byte-bounded, two-level (global + per-tenant)
//!   LRU result cache;
//! * [`tenant`] — per-tenant quotas and the admission ledger;
//! * [`metrics`] — the [`ServeMetrics`] operational snapshot;
//! * [`server`] — the accept loop, routing, worker pool, and the
//!   wall-clock reaper.
//!
//! The full service contract (routes, schemas, error taxonomy, quota
//! semantics, and the cache-soundness argument) lives in
//! `docs/service.md` and is drift-checked against this crate by
//! `scripts/check-doc-links.sh`.

#![deny(missing_docs)]

pub mod cache;
pub mod http;
pub mod metrics;
pub mod request;
pub mod runner;
pub mod server;
pub mod tenant;

/// Version tag carried in every request and response body. Bumped on
/// any breaking change to the wire schema.
pub const API_VERSION: u32 = 1;

pub use cache::{CacheCounters, ResultCache};
pub use metrics::ServeMetrics;
pub use request::{CampaignRequest, JobKind, JobRequest, SimulateRequest, WorkloadSource};
pub use runner::{run_request, Artifacts, Progress, RunError};
pub use server::{ServeConfig, Server, ServerHandle, Service, DEFAULT_TENANT};
pub use tenant::{QuotaError, QuotaLedger, TenantQuota, TenantUsage};
