//! The campaign job model.
//!
//! A [`JobSpec`] is one entry of a batch-system workload: a workflow to
//! execute, a resource request (compute nodes + burst-buffer bytes),
//! a user walltime *estimate* (used only for scheduling decisions —
//! jobs run to actual completion), and a submit time. Campaigns are
//! just `Vec<JobSpec>`, parsed from a workload file or generated
//! synthetically ([`crate::workload`]).

use wfbb_storage::PlacementPolicy;
use wfbb_wms::CheckpointPolicy;
use wfbb_workflow::Workflow;

/// One job of a campaign workload.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Display name (unique names make reports/traces readable; the
    /// scheduler itself keys jobs by index).
    pub name: String,
    /// Submission time, seconds from campaign start.
    pub submit: f64,
    /// The workflow to execute.
    pub workflow: Workflow,
    /// The spec string the workflow was built from (`swarp:2:8`, ...),
    /// echoed into reports.
    pub workflow_spec: String,
    /// Requested compute nodes (the job's exclusive partition).
    pub nodes: usize,
    /// Requested burst-buffer allocation, bytes. Reserved from the
    /// machine-wide pool at start, released at completion; the job's
    /// executor sees exactly this much BB capacity (usage beyond it
    /// spills to the PFS, modeling an under-request).
    pub bb_bytes: f64,
    /// User walltime estimate, seconds. Drives backfilling decisions
    /// (shadow times, holes); jobs exceeding their estimate are *not*
    /// killed, so EASY's reservation guarantee only holds when
    /// estimates are conservative — exactly as on real machines.
    pub walltime_est: f64,
    /// File-placement policy inside the job's partition.
    pub placement: PlacementPolicy,
    /// Task-kill faults, `(task name, job-relative time)`. Per-job
    /// faults are kills only — capacity faults are engine-global and
    /// hit every tenant, so they live on the campaign instead
    /// ([`crate::CampaignConfig::with_faults`]).
    pub kills: Vec<(String, f64)>,
    /// Attempts each task may use when killed (see
    /// `wfbb_wms::RetryPolicy`).
    pub max_attempts: u32,
    /// Checkpoint policy forwarded to the job's executor: periodic
    /// checkpoint-image writes as scheduled I/O, restarts from the last
    /// completed image (see `wfbb_wms::CheckpointPolicy`). `None` (the
    /// default) leaves the job bitwise-identical to pre-checkpoint
    /// builds.
    pub checkpoint: Option<CheckpointPolicy>,
}

impl JobSpec {
    /// A job with default placement ([`PlacementPolicy::AllBb`]), no
    /// faults, and the default retry budget.
    pub fn new(
        name: impl Into<String>,
        submit: f64,
        workflow_spec: impl Into<String>,
        workflow: Workflow,
        nodes: usize,
        bb_bytes: f64,
        walltime_est: f64,
    ) -> Self {
        JobSpec {
            name: name.into(),
            submit,
            workflow,
            workflow_spec: workflow_spec.into(),
            nodes,
            bb_bytes,
            walltime_est,
            placement: PlacementPolicy::AllBb,
            kills: Vec::new(),
            max_attempts: 3,
            checkpoint: None,
        }
    }

    /// Sets the file-placement policy.
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Adds a task-kill fault at `time` seconds after the job starts.
    pub fn with_kill(mut self, task: impl Into<String>, time: f64) -> Self {
        self.kills.push((task.into(), time));
        self
    }

    /// Sets the per-task attempt budget for kill faults.
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts;
        self
    }

    /// Sets the job's checkpoint policy.
    pub fn with_checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = Some(policy);
        self
    }
}
