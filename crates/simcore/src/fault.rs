//! Deterministic fault schedules.
//!
//! A [`FaultPlan`] lists *capacity faults* — absolute-time changes to a
//! resource's capacity (a degradation when the new capacity is positive, a
//! death when it is zero) — that the engine applies between events exactly
//! like any other rate change: the streaming set is integrated up to the
//! fault instant, the capacity mirror is updated, and the dirty-set
//! re-solve recomputes the allocation. A mid-run degradation is therefore
//! just another solver epoch; determinism is untouched because fault times
//! are part of the plan, never sampled during execution.
//!
//! Plans are either explicit (every event listed) or seeded: the
//! [`seeded_failures`] helper expands a `(seed, count, horizon)` triple
//! into concrete `(time, device)` pairs with a self-contained SplitMix64
//! generator, so the same seed yields the same schedule on every platform
//! and build.
//!
//! Task-kill events live one layer up (the WMS knows what a task is; the
//! engine does not) — see `wfbb-wms`'s fault module. The engine-level plan
//! carries only capacity events.

use crate::ids::ResourceId;

/// One scheduled capacity change: at `time`, `resource`'s capacity becomes
/// `capacity` (zero kills the resource; flows crossing it freeze at rate
/// zero until cancelled or the capacity is restored).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityFault {
    /// Absolute simulated time of the change, seconds.
    pub time: f64,
    /// The resource whose capacity changes.
    pub resource: ResourceId,
    /// The new absolute capacity (same unit as the resource).
    pub capacity: f64,
}

/// A deterministic schedule of capacity faults, applied by
/// [`crate::Engine::set_fault_plan`].
///
/// An empty plan is inert: installing it leaves the engine's behavior
/// bitwise identical to never having called `set_fault_plan` at all (the
/// empty-plan equivalence property pinned in `wfbb-wms`'s tests).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<CapacityFault>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the plan schedules no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled capacity events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Schedules a capacity change. `time` must be finite and
    /// non-negative; `capacity` must be finite and non-negative.
    pub fn push_capacity(&mut self, time: f64, resource: ResourceId, capacity: f64) -> &mut Self {
        assert!(
            time.is_finite() && time >= 0.0,
            "fault time must be finite and non-negative, got {time}"
        );
        assert!(
            capacity.is_finite() && capacity >= 0.0,
            "fault capacity must be finite and non-negative, got {capacity}"
        );
        self.events.push(CapacityFault {
            time,
            resource,
            capacity,
        });
        self
    }

    /// The scheduled events sorted by time (ties by resource index), the
    /// order the engine applies them in.
    pub fn sorted_events(&self) -> Vec<CapacityFault> {
        let mut evs = self.events.clone();
        evs.sort_by(|a, b| {
            a.time
                .total_cmp(&b.time)
                .then_with(|| a.resource.index().cmp(&b.resource.index()))
        });
        evs
    }
}

/// SplitMix64: a tiny, well-mixed deterministic generator (public-domain
/// constants from Steele et al.), used so seeded schedules need no
/// external RNG crate and never drift across platforms.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform draw in `(0, 1)` (never exactly 0 or 1).
fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64 * (1.0 - 2.0 * f64::EPSILON)
        + f64::EPSILON
}

/// Expands a seeded failure spec into concrete `(time, device)` pairs:
/// `count` failures of distinct devices (clamped to `devices`), at times
/// uniform in `(0, horizon)`, sorted by time.
///
/// Fully deterministic: the same `(seed, count, horizon, devices)` always
/// yields the same schedule.
pub fn seeded_failures(seed: u64, count: usize, horizon: f64, devices: usize) -> Vec<(f64, usize)> {
    assert!(
        horizon.is_finite() && horizon > 0.0,
        "fault horizon must be finite and positive, got {horizon}"
    );
    let mut state = seed ^ 0x5dee_ce66_d1ce_4e5b;
    // Fisher–Yates over the device indices, then take the first `k`.
    let mut order: Vec<usize> = (0..devices).collect();
    for i in (1..order.len()).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    let k = count.min(devices);
    let mut out: Vec<(f64, usize)> = order
        .into_iter()
        .take(k)
        .map(|d| (unit(&mut state) * horizon, d))
        .collect();
    out.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert!(plan.sorted_events().is_empty());
    }

    #[test]
    fn events_sort_by_time_then_resource() {
        let mut plan = FaultPlan::new();
        let r0 = ResourceId::from_index(0);
        let r1 = ResourceId::from_index(1);
        plan.push_capacity(5.0, r1, 0.0);
        plan.push_capacity(2.0, r0, 10.0);
        plan.push_capacity(5.0, r0, 1.0);
        let evs = plan.sorted_events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].time, 2.0);
        assert_eq!(evs[1].resource, r0);
        assert_eq!(evs[2].resource, r1);
    }

    #[test]
    #[should_panic(expected = "fault time")]
    fn negative_time_is_rejected() {
        FaultPlan::new().push_capacity(-1.0, ResourceId::from_index(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "fault capacity")]
    fn nan_capacity_is_rejected() {
        FaultPlan::new().push_capacity(1.0, ResourceId::from_index(0), f64::NAN);
    }

    #[test]
    fn seeded_failures_are_deterministic_and_sorted() {
        let a = seeded_failures(42, 3, 100.0, 8);
        let b = seeded_failures(42, 3, 100.0, 8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        for w in a.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        for &(t, d) in &a {
            assert!(t > 0.0 && t < 100.0);
            assert!(d < 8);
        }
        // Distinct devices.
        let set: std::collections::HashSet<usize> = a.iter().map(|&(_, d)| d).collect();
        assert_eq!(set.len(), 3);
        // Different seeds give different schedules.
        assert_ne!(a, seeded_failures(43, 3, 100.0, 8));
    }

    #[test]
    fn seeded_failures_clamp_to_device_count() {
        let evs = seeded_failures(7, 10, 50.0, 2);
        assert_eq!(evs.len(), 2);
    }
}
