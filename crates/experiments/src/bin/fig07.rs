//! Regenerates the paper's fig07 data; see `wfbb_experiments::figures`.
fn main() {
    wfbb_experiments::run_and_save("fig07");
}
