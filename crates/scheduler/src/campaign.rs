//! The campaign driver: a multi-tenant batch simulation.
//!
//! One [`wfbb_simcore::Engine`] hosts the whole machine. Each admitted
//! job gets an exclusive *slice* of the platform (its nodes, its carved
//! share of the BB capacity) via [`wfbb_platform::PlatformInstance::slice`]
//! and is executed by the ordinary single-run
//! [`wfbb_wms::Executor`] on that slice — so stage-in/stage-out and
//! PFS/interconnect traffic of concurrent jobs contend *naturally*
//! inside the shared fluid engine, while compute and BB capacity are
//! partitioned by the scheduler. Burst-buffer capacity is a
//! reservation-pool resource ([`wfbb_storage::BbPool`]): granted at
//! admission, released at completion or failure, conserved across the
//! campaign.
//!
//! Scheduling decisions are delegated to the pure
//! [`crate::policy::plan_admissions`] at every arrival and completion
//! event; everything else here is deterministic bookkeeping (BTree
//! collections, job-order arrival spawns), so identical inputs produce
//! bitwise-identical [`CampaignReport`]s in both solve modes.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use crate::job::JobSpec;
use crate::policy::{plan_admissions, BatchPolicy, QueuedReq, RunningRes};
use crate::report::{job_metrics, CampaignReport, JobOutcome, JobStatus, UtilSample};
use wfbb_platform::{BbArchitecture, PlatformSpec};
use wfbb_simcore::{Engine, SolveMode, TelemetryConfig};
use wfbb_storage::{BbPool, StorageSystem};
use wfbb_wms::{Executor, FaultEvent, JobTag, RetryPolicy, SchedulerPolicy, Tag};

/// Error from a campaign simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// The platform spec is invalid.
    Platform(String),
    /// The job list is empty.
    EmptyCampaign,
    /// The simulation engine failed.
    Engine(String),
    /// The event queue drained with jobs still queued or running — a
    /// scheduler bug (unsatisfiable requests are rejected at submit).
    Stalled(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Platform(m) => write!(f, "invalid platform: {m}"),
            CampaignError::EmptyCampaign => write!(f, "campaign has no jobs"),
            CampaignError::Engine(m) => write!(f, "engine error: {m}"),
            CampaignError::Stalled(m) => write!(f, "campaign stalled: {m}"),
        }
    }
}

impl std::error::Error for CampaignError {}

/// Cluster-level configuration of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The machine every job shares.
    pub platform: PlatformSpec,
    /// Human-readable platform label echoed into reports (`cori:striped`).
    pub platform_label: String,
    /// Admission/backfilling policy.
    pub policy: BatchPolicy,
    /// Fair-share solver mode of the shared engine.
    pub solve_mode: SolveMode,
    /// Engine telemetry sampling (off by default).
    pub telemetry: TelemetryConfig,
    /// Per-node concurrent-I/O cap forwarded to every executor.
    pub io_concurrency: Option<usize>,
    /// Task-to-node mapping policy inside each job's partition.
    pub node_scheduler: SchedulerPolicy,
}

impl CampaignConfig {
    /// Default campaign config on `platform`: FCFS, incremental solver,
    /// no telemetry.
    pub fn new(platform: PlatformSpec) -> Self {
        let platform_label = platform.name.clone();
        CampaignConfig {
            platform,
            platform_label,
            policy: BatchPolicy::Fcfs,
            solve_mode: SolveMode::Incremental,
            telemetry: TelemetryConfig::default(),
            io_concurrency: None,
            node_scheduler: SchedulerPolicy::default(),
        }
    }

    /// Sets the admission policy.
    pub fn with_policy(mut self, policy: BatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the solver mode.
    pub fn with_solve_mode(mut self, mode: SolveMode) -> Self {
        self.solve_mode = mode;
        self
    }

    /// Sets the report's platform label.
    pub fn with_platform_label(mut self, label: impl Into<String>) -> Self {
        self.platform_label = label.into();
        self
    }
}

/// Bookkeeping for one running job.
struct RunningJob {
    start: f64,
    walltime_est: f64,
    nodes: Vec<usize>,
    bb: f64,
}

/// Per-job record accumulated by the driver.
struct JobRecord {
    status: JobStatus,
    start: f64,
    end: f64,
    reserved_start: Option<f64>,
    detail: Option<String>,
    report: Option<wfbb_wms::SimulationReport>,
}

/// Why a request can never be satisfied on this machine, or `None`.
fn rejection_reason(spec: &JobSpec, platform: &PlatformSpec, pool_bytes: f64) -> Option<String> {
    if spec.nodes == 0 {
        return Some("requests 0 nodes".into());
    }
    if spec.nodes > platform.compute_nodes {
        return Some(format!(
            "requests {} nodes, machine has {}",
            spec.nodes, platform.compute_nodes
        ));
    }
    if !spec.bb_bytes.is_finite() || spec.bb_bytes < 0.0 {
        return Some(format!("invalid BB request {}", spec.bb_bytes));
    }
    if spec.bb_bytes > pool_bytes {
        return Some(format!(
            "requests {:.3e} B of BB, pool holds {:.3e} B",
            spec.bb_bytes, pool_bytes
        ));
    }
    if matches!(platform.bb, BbArchitecture::OnNode)
        && spec.bb_bytes > spec.nodes as f64 * platform.bb_capacity
    {
        return Some(format!(
            "on-node BB: {} nodes hold at most {:.3e} B",
            spec.nodes,
            spec.nodes as f64 * platform.bb_capacity
        ));
    }
    if !spec.walltime_est.is_finite() || spec.walltime_est <= 0.0 {
        return Some(format!(
            "walltime estimate must be > 0, got {}",
            spec.walltime_est
        ));
    }
    if !spec.submit.is_finite() || spec.submit < 0.0 {
        return Some(format!("invalid submit time {}", spec.submit));
    }
    for (task, time) in &spec.kills {
        if !spec.workflow.tasks().iter().any(|t| t.name == *task) {
            return Some(format!("kill targets unknown task {task:?}"));
        }
        if !time.is_finite() || *time < 0.0 {
            return Some(format!("invalid kill time {time}"));
        }
    }
    None
}

/// Runs a campaign of `jobs` (in submission order — sort by submit time
/// first, ties broken by position) on one shared engine and returns the
/// campaign report.
pub fn run_campaign(
    config: &CampaignConfig,
    jobs: &[JobSpec],
) -> Result<CampaignReport, CampaignError> {
    if jobs.is_empty() {
        return Err(CampaignError::EmptyCampaign);
    }
    config
        .platform
        .validate()
        .map_err(|e| CampaignError::Platform(e.to_string()))?;

    let mut engine = Engine::new();
    engine.set_solve_mode(config.solve_mode);
    engine.set_telemetry_config(config.telemetry.clone());
    let instance = config.platform.instantiate(&mut engine);
    let total_nodes = instance.nodes();
    let bb_devices = instance.bb_devices();
    let pool_bytes = bb_devices as f64 * config.platform.bb_capacity;
    let engine = Rc::new(RefCell::new(engine));

    let mut records: BTreeMap<u32, JobRecord> = BTreeMap::new();
    let mut pool = BbPool::new(pool_bytes);
    let mut free_nodes: BTreeSet<usize> = (0..total_nodes).collect();
    let mut queue: Vec<u32> = Vec::new();
    let mut running: BTreeMap<u32, RunningJob> = BTreeMap::new();
    let mut executors: BTreeMap<u32, Executor> = BTreeMap::new();
    let mut samples: Vec<UtilSample> = Vec::new();

    // Submit-time screening + arrival sentinels, in job order (ascending
    // activity ids make same-instant arrivals deterministic).
    for (j, spec) in jobs.iter().enumerate() {
        let j = j as u32;
        if let Some(reason) = rejection_reason(spec, &config.platform, pool_bytes) {
            records.insert(
                j,
                JobRecord {
                    status: JobStatus::Rejected,
                    start: 0.0,
                    end: 0.0,
                    reserved_start: None,
                    detail: Some(reason),
                    report: None,
                },
            );
            continue;
        }
        engine.borrow_mut().spawn_delay_labeled(
            spec.submit,
            JobTag {
                job: j,
                tag: Tag::External(j),
            },
            Some(format!("arrival:{}", spec.name)),
        );
    }

    let sample = |samples: &mut Vec<UtilSample>,
                  now: f64,
                  running: &BTreeMap<u32, RunningJob>,
                  free_nodes: &BTreeSet<usize>,
                  pool: &BbPool,
                  queue: &Vec<u32>| {
        samples.push(UtilSample {
            time: now,
            running_jobs: running.len(),
            busy_nodes: total_nodes - free_nodes.len(),
            bb_reserved: pool.capacity() - pool.free(),
            queue_depth: queue.len(),
        });
    };

    // Admission pass: ask the policy, start what it admits.
    #[allow(clippy::too_many_arguments)]
    fn try_admit(
        config: &CampaignConfig,
        jobs: &[JobSpec],
        engine: &Rc<RefCell<Engine<JobTag>>>,
        instance: &wfbb_platform::PlatformInstance,
        now: f64,
        queue: &mut Vec<u32>,
        running: &mut BTreeMap<u32, RunningJob>,
        executors: &mut BTreeMap<u32, Executor>,
        free_nodes: &mut BTreeSet<usize>,
        pool: &mut BbPool,
        records: &mut BTreeMap<u32, JobRecord>,
    ) {
        if queue.is_empty() {
            return;
        }
        let reqs: Vec<QueuedReq> = queue
            .iter()
            .map(|&j| {
                let s = &jobs[j as usize];
                QueuedReq {
                    job: j,
                    nodes: s.nodes,
                    bb: s.bb_bytes,
                    est: s.walltime_est,
                }
            })
            .collect();
        let holds: Vec<RunningRes> = running
            .values()
            .map(|r| RunningRes {
                end_est: r.start + r.walltime_est,
                nodes: r.nodes.len(),
                bb: r.bb,
            })
            .collect();
        let adm = plan_admissions(
            config.policy,
            now,
            free_nodes.len(),
            pool.free(),
            &reqs,
            &holds,
        );
        if let Some((job, shadow)) = adm.head_reservation {
            // Record only the first promise: later re-plans may move the
            // reservation, but the invariant we expose is "EASY never
            // starts the head later than it first promised" (assuming
            // conservative estimates).
            if let Some(rec) = records.get_mut(&job) {
                if rec.reserved_start.is_none() {
                    rec.reserved_start = Some(shadow);
                }
            } else {
                records.insert(
                    job,
                    JobRecord {
                        status: JobStatus::Failed, // placeholder; overwritten at start
                        start: 0.0,
                        end: 0.0,
                        reserved_start: Some(shadow),
                        detail: None,
                        report: None,
                    },
                );
            }
        }
        for job in adm.start {
            let spec = &jobs[job as usize];
            queue.retain(|&q| q != job);
            let node_ids: Vec<usize> = free_nodes.iter().copied().take(spec.nodes).collect();
            assert_eq!(
                node_ids.len(),
                spec.nodes,
                "policy admitted past free nodes"
            );
            for n in &node_ids {
                free_nodes.remove(n);
            }
            assert!(
                pool.try_reserve(job, spec.bb_bytes),
                "policy admitted past free BB"
            );
            let view_devices = match config.platform.bb {
                BbArchitecture::Shared { bb_nodes, .. } => bb_nodes,
                BbArchitecture::OnNode => node_ids.len(),
                BbArchitecture::None => 0,
            };
            let per_dev = if view_devices > 0 {
                spec.bb_bytes / view_devices as f64
            } else {
                0.0
            };
            let view = instance.slice(&node_ids, per_dev);
            let storage = StorageSystem::new(view);
            let plan = spec.placement.plan(&spec.workflow);
            let mut ex = Executor::shared(
                engine.clone(),
                job,
                storage,
                spec.workflow.clone(),
                plan.clone(),
                config.io_concurrency,
                config.node_scheduler,
            );
            if !spec.kills.is_empty() {
                let events: Vec<FaultEvent> = spec
                    .kills
                    .iter()
                    .map(|(task, time)| FaultEvent::TaskKill {
                        time: *time,
                        task: task.clone(),
                    })
                    .collect();
                ex.set_fault_injection(
                    events,
                    RetryPolicy {
                        max_attempts: spec.max_attempts,
                        backoff: 0.0,
                    },
                );
            }
            let reserved = records.get(&job).and_then(|r| r.reserved_start);
            records.insert(
                job,
                JobRecord {
                    status: JobStatus::Failed, // overwritten when it finishes
                    start: now,
                    end: now,
                    reserved_start: reserved,
                    detail: None,
                    report: None,
                },
            );
            running.insert(
                job,
                RunningJob {
                    start: now,
                    walltime_est: spec.walltime_est,
                    nodes: node_ids,
                    bb: spec.bb_bytes,
                },
            );
            ex.start();
            executors.insert(job, ex);
        }
    }

    loop {
        let step = engine.borrow_mut().try_step();
        let completion = match step {
            Err(e) => return Err(CampaignError::Engine(format!("{e:?}"))),
            Ok(None) => break,
            Ok(Some(c)) => c,
        };
        let now = completion.time.seconds();
        let JobTag { job, tag } = completion.tag;
        match tag {
            Tag::External(_) => {
                queue.push(job);
                sample(&mut samples, now, &running, &free_nodes, &pool, &queue);
                try_admit(
                    config,
                    jobs,
                    &engine,
                    &instance,
                    now,
                    &mut queue,
                    &mut running,
                    &mut executors,
                    &mut free_nodes,
                    &mut pool,
                    &mut records,
                );
                sample(&mut samples, now, &running, &free_nodes, &pool, &queue);
            }
            tag => {
                // Stale completions of finished/aborted jobs are dropped.
                let Some(ex) = executors.get_mut(&job) else {
                    continue;
                };
                let outcome = match ex.on_completion(completion.id, tag) {
                    Ok(()) if ex.is_complete() => {
                        // Build the job's report *now*, while engine time
                        // is its final completion instant (so its makespan
                        // matches a single run).
                        Some((JobStatus::Completed, None, Some(ex.report())))
                    }
                    Ok(()) => None,
                    Err(e) => {
                        ex.abort();
                        Some((JobStatus::Failed, Some(e.to_string()), None))
                    }
                };
                let Some((status, detail, report)) = outcome else {
                    continue;
                };
                executors.remove(&job);
                let run = running.remove(&job).expect("finished job was running");
                for n in run.nodes {
                    free_nodes.insert(n);
                }
                pool.release(job);
                let rec = records.get_mut(&job).expect("finished job has a record");
                rec.status = status;
                rec.end = now;
                rec.detail = detail;
                rec.report = report;
                sample(&mut samples, now, &running, &free_nodes, &pool, &queue);
                try_admit(
                    config,
                    jobs,
                    &engine,
                    &instance,
                    now,
                    &mut queue,
                    &mut running,
                    &mut executors,
                    &mut free_nodes,
                    &mut pool,
                    &mut records,
                );
                sample(&mut samples, now, &running, &free_nodes, &pool, &queue);
            }
        }
    }

    if !queue.is_empty() || !executors.is_empty() {
        return Err(CampaignError::Stalled(format!(
            "{} queued, {} running after the event queue drained",
            queue.len(),
            executors.len()
        )));
    }

    let outcomes: Vec<JobOutcome> = jobs
        .iter()
        .enumerate()
        .map(|(j, spec)| {
            let j = j as u32;
            let rec = records.remove(&j).unwrap_or(JobRecord {
                status: JobStatus::Rejected,
                start: 0.0,
                end: 0.0,
                reserved_start: None,
                detail: Some("never scheduled".into()),
                report: None,
            });
            let (wait, run, stretch, bounded_slowdown) = if rec.status == JobStatus::Rejected {
                (0.0, 0.0, 1.0, 1.0)
            } else {
                job_metrics(spec.submit, rec.start, rec.end)
            };
            JobOutcome {
                job: j,
                name: spec.name.clone(),
                workflow: spec.workflow_spec.clone(),
                submit: spec.submit,
                nodes: spec.nodes,
                bb_request: spec.bb_bytes,
                walltime_est: spec.walltime_est,
                status: rec.status,
                start: rec.start,
                end: rec.end,
                wait,
                run,
                stretch,
                bounded_slowdown,
                reserved_start: rec.reserved_start,
                detail: rec.detail,
                report: rec.report,
            }
        })
        .collect();

    let mut report = CampaignReport {
        policy: config.policy,
        platform: config.platform_label.clone(),
        total_nodes,
        bb_pool_bytes: pool.capacity(),
        jobs: outcomes,
        makespan: 0.0,
        mean_wait: 0.0,
        max_wait: 0.0,
        mean_stretch: 0.0,
        mean_bounded_slowdown: 0.0,
        node_utilization: 0.0,
        bb_utilization: 0.0,
        utilization: samples,
        bb_pool_free_end: pool.free(),
    };
    report.finalize();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::build_workflow;
    use wfbb_platform::presets;
    use wfbb_platform::BbMode;

    fn job(name: &str, submit: f64, spec: &str, nodes: usize, bb: f64, est: f64) -> JobSpec {
        JobSpec::new(
            name,
            submit,
            spec,
            build_workflow(spec).unwrap(),
            nodes,
            bb,
            est,
        )
    }

    fn config(policy: BatchPolicy) -> CampaignConfig {
        CampaignConfig::new(presets::cori(4, BbMode::Striped))
            .with_policy(policy)
            .with_platform_label("cori:striped")
    }

    #[test]
    fn solo_campaign_completes_and_conserves_the_pool() {
        let jobs = vec![job("solo", 0.0, "swarp:1:8", 1, 2e9, 600.0)];
        let report = run_campaign(&config(BatchPolicy::Fcfs), &jobs).unwrap();
        assert_eq!(report.jobs.len(), 1);
        assert_eq!(report.jobs[0].status, JobStatus::Completed);
        assert_eq!(report.jobs[0].wait, 0.0);
        assert!(report.jobs[0].run > 0.0);
        assert_eq!(report.bb_pool_free_end, report.bb_pool_bytes);
        assert!(report.jobs[0].report.is_some());
    }

    #[test]
    fn oversized_requests_are_rejected_not_deadlocked() {
        let jobs = vec![
            job("huge-nodes", 0.0, "swarp:1:8", 99, 1e9, 600.0),
            job("huge-bb", 0.0, "swarp:1:8", 1, 1e18, 600.0),
            job("ok", 0.0, "swarp:1:8", 1, 1e9, 600.0),
        ];
        let report = run_campaign(&config(BatchPolicy::EasyBackfill), &jobs).unwrap();
        assert_eq!(report.jobs[0].status, JobStatus::Rejected);
        assert_eq!(report.jobs[1].status, JobStatus::Rejected);
        assert_eq!(report.jobs[2].status, JobStatus::Completed);
    }

    #[test]
    fn fcfs_serializes_contending_jobs() {
        // Two jobs that each want the whole machine: the second must
        // wait for the first.
        let jobs = vec![
            job("a", 0.0, "swarp:1:8", 4, 1e9, 600.0),
            job("b", 0.0, "swarp:1:8", 4, 1e9, 600.0),
        ];
        let report = run_campaign(&config(BatchPolicy::Fcfs), &jobs).unwrap();
        let (a, b) = (&report.jobs[0], &report.jobs[1]);
        assert_eq!(a.status, JobStatus::Completed);
        assert_eq!(b.status, JobStatus::Completed);
        assert_eq!(a.wait, 0.0);
        assert!(b.start >= a.end - 1e-9, "b must wait for a");
        assert!(b.stretch > 1.0);
    }

    #[test]
    fn kill_faults_release_the_reservation() {
        // A job whose task is killed more times than its retry budget
        // fails — and must still release nodes and BB. Run the job solo
        // first to find a time resample_0 is guaranteed to be computing.
        let probe = vec![job("victim", 0.0, "swarp:1:8", 2, 4e9, 600.0)];
        let solo = run_campaign(&config(BatchPolicy::Fcfs), &probe).unwrap();
        let rep = solo.jobs[0].report.as_ref().unwrap();
        let t = rep.task_by_name("resample_0").unwrap();
        let kill_time = 0.5 * (t.read_end.seconds() + t.compute_end.seconds());
        let mut victim = job("victim", 0.0, "swarp:1:8", 2, 4e9, 600.0).with_max_attempts(1);
        victim.kills.push(("resample_0".into(), kill_time));
        let jobs = vec![victim, job("after", 1.0, "swarp:1:8", 4, 1e9, 600.0)];
        let report = run_campaign(&config(BatchPolicy::Fcfs), &jobs).unwrap();
        assert_eq!(report.jobs[0].status, JobStatus::Failed);
        assert_eq!(report.jobs[1].status, JobStatus::Completed);
        assert_eq!(report.bb_pool_free_end, report.bb_pool_bytes);
    }

    #[test]
    fn identical_seed_reports_are_bitwise_equal_across_solve_modes() {
        let jobs: Vec<JobSpec> = crate::workload::synthetic_jobs(
            11,
            &crate::workload::SyntheticConfig {
                jobs: 6,
                mean_interarrival: 60.0,
                bb_request_scale: 1.0,
                max_nodes: 2,
            },
        )
        .unwrap();
        let a = run_campaign(&config(BatchPolicy::BbAware), &jobs).unwrap();
        let b = run_campaign(&config(BatchPolicy::BbAware), &jobs).unwrap();
        assert_eq!(a.to_json(), b.to_json());
        let c = run_campaign(
            &config(BatchPolicy::BbAware).with_solve_mode(SolveMode::Naive),
            &jobs,
        )
        .unwrap();
        for (x, y) in a.jobs.iter().zip(&c.jobs) {
            assert!(
                (x.end - y.end).abs() < 1e-6,
                "{}: {} vs {}",
                x.name,
                x.end,
                y.end
            );
        }
    }
}
