//! Checkpoint policies: periodic checkpoint writes as scheduled I/O.
//!
//! A [`CheckpointPolicy`] tells the executor to split a task's compute
//! phase into segments of [`CheckpointPolicy::interval`] *uncontended*
//! compute seconds and, after each non-final segment, write a checkpoint
//! image of [`CheckpointPolicy::bytes`] bytes to the
//! [`CheckpointPolicy::target`] tier. Checkpoint writes are ordinary
//! flows through the fluid engine — they contend with every other
//! transfer on the tier they protect — and their wall-clock cost surfaces
//! as the exact `checkpoint_io` decomposition term. A task killed after a
//! completed checkpoint restarts from that checkpoint (re-reading the
//! image) instead of from its read phase.
//!
//! The textual grammar (the CLI's `--checkpoint` flag and the workload
//! file's `checkpoint=` key) is `<interval>@<bb|pfs>[:<bytes>]`:
//!
//! ```
//! use wfbb_resilience::{CheckpointPolicy, CheckpointTier};
//! let p = CheckpointPolicy::parse("300@bb").unwrap();
//! assert_eq!(p.interval, 300.0);
//! assert_eq!(p.target, CheckpointTier::Bb);
//! assert_eq!(p.bytes, None); // default: the task's output volume
//! let q = CheckpointPolicy::parse("600@pfs:2e9").unwrap();
//! assert_eq!(q.bytes, Some(2e9));
//! ```
//!
//! [`young_interval`] computes the Young/Daly first-order optimum
//! `τ* = √(2·C·MTBF)` the `checkpoint_economics` experiment compares the
//! simulated optimum against.

use std::fmt;

/// Storage tier a checkpoint image is written to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointTier {
    /// The burst buffer (placed like any other BB write: pinned or
    /// striped per the platform's BB mode, spilling to the PFS when the
    /// device is full).
    Bb,
    /// The parallel file system.
    Pfs,
}

impl fmt::Display for CheckpointTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointTier::Bb => write!(f, "bb"),
            CheckpointTier::Pfs => write!(f, "pfs"),
        }
    }
}

/// Per-job checkpoint policy: how often to checkpoint, where to, and how
/// big the image is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointPolicy {
    /// Uncontended compute seconds between checkpoints. A task whose
    /// total compute time is at most one interval never checkpoints, so
    /// its execution is bitwise-identical to a policy-free run.
    pub interval: f64,
    /// Tier the checkpoint image is written to (and restored from).
    pub target: CheckpointTier,
    /// Checkpoint image size in bytes. `None` defaults to the task's
    /// total output volume (the natural "protect what the task will
    /// produce" estimate).
    pub bytes: Option<f64>,
}

impl CheckpointPolicy {
    /// Builds a policy with the default image size.
    ///
    /// # Panics
    /// Panics if `interval` is not finite and positive.
    pub fn new(interval: f64, target: CheckpointTier) -> Self {
        assert!(
            interval.is_finite() && interval > 0.0,
            "checkpoint interval must be finite and positive, got {interval}"
        );
        CheckpointPolicy {
            interval,
            target,
            bytes: None,
        }
    }

    /// Sets an explicit checkpoint image size, bytes.
    ///
    /// # Panics
    /// Panics if `bytes` is not finite and positive.
    pub fn with_bytes(mut self, bytes: f64) -> Self {
        assert!(
            bytes.is_finite() && bytes > 0.0,
            "checkpoint bytes must be finite and positive, got {bytes}"
        );
        self.bytes = Some(bytes);
        self
    }

    /// Parses the `<interval>@<bb|pfs>[:<bytes>]` grammar.
    pub fn parse(input: &str) -> Result<Self, CheckpointSpecError> {
        let token = input.trim();
        let (interval_str, rest) = token.split_once('@').ok_or_else(|| {
            cerr(format!(
                "missing '@<tier>' in {token:?} (expected <interval>@<bb|pfs>[:<bytes>])"
            ))
        })?;
        let interval: f64 = interval_str
            .trim()
            .parse()
            .map_err(|_| cerr(format!("bad interval {interval_str:?} in {token:?}")))?;
        if !interval.is_finite() || interval <= 0.0 {
            return Err(cerr(format!(
                "interval must be finite and positive in {token:?}"
            )));
        }
        let (tier_str, bytes_str) = match rest.split_once(':') {
            Some((t, b)) => (t, Some(b)),
            None => (rest, None),
        };
        let target = match tier_str.trim() {
            "bb" => CheckpointTier::Bb,
            "pfs" => CheckpointTier::Pfs,
            other => {
                return Err(cerr(format!(
                    "unknown checkpoint tier {other:?} in {token:?} (expected bb or pfs)"
                )))
            }
        };
        let bytes = match bytes_str {
            Some(b) => {
                let v: f64 = b
                    .trim()
                    .parse()
                    .map_err(|_| cerr(format!("bad byte count {b:?} in {token:?}")))?;
                if !v.is_finite() || v <= 0.0 {
                    return Err(cerr(format!(
                        "checkpoint bytes must be finite and positive in {token:?}"
                    )));
                }
                Some(v)
            }
            None => None,
        };
        Ok(CheckpointPolicy {
            interval,
            target,
            bytes,
        })
    }
}

impl fmt::Display for CheckpointPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.bytes {
            Some(b) => write!(f, "{}@{}:{}", self.interval, self.target, b),
            None => write!(f, "{}@{}", self.interval, self.target),
        }
    }
}

/// A syntax or semantic error in a checkpoint specification.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointSpecError {
    /// Human-readable description, including the offending token.
    pub message: String,
}

impl fmt::Display for CheckpointSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid checkpoint spec: {}", self.message)
    }
}

impl std::error::Error for CheckpointSpecError {}

fn cerr(message: impl Into<String>) -> CheckpointSpecError {
    CheckpointSpecError {
        message: message.into(),
    }
}

/// The Young/Daly first-order optimal checkpoint interval
/// `τ* = √(2·C·MTBF)`, where `C` is the cost of writing one checkpoint
/// (seconds) and `mtbf` the mean time between failures (seconds).
///
/// This is the analytical baseline the simulated sweep is compared
/// against: it assumes checkpoint writes cost a *fixed* `C`, while the
/// simulator charges the real, contention-dependent price.
pub fn young_interval(cost: f64, mtbf: f64) -> f64 {
    assert!(
        cost.is_finite() && cost >= 0.0,
        "checkpoint cost must be finite and non-negative, got {cost}"
    );
    assert!(
        mtbf.is_finite() && mtbf > 0.0,
        "MTBF must be finite and positive, got {mtbf}"
    );
    (2.0 * cost * mtbf).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_form() {
        let p = CheckpointPolicy::parse("300@bb").unwrap();
        assert_eq!(
            p,
            CheckpointPolicy {
                interval: 300.0,
                target: CheckpointTier::Bb,
                bytes: None
            }
        );
        let q = CheckpointPolicy::parse(" 600@pfs:2e9 ").unwrap();
        assert_eq!(q.interval, 600.0);
        assert_eq!(q.target, CheckpointTier::Pfs);
        assert_eq!(q.bytes, Some(2e9));
    }

    #[test]
    fn display_round_trips() {
        for s in ["300@bb", "600@pfs:2000000000"] {
            let p = CheckpointPolicy::parse(s).unwrap();
            assert_eq!(CheckpointPolicy::parse(&p.to_string()).unwrap(), p);
        }
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "300",        // no tier
            "x@bb",       // bad interval
            "0@bb",       // zero interval
            "-5@bb",      // negative interval
            "inf@bb",     // non-finite interval
            "300@ssd",    // unknown tier
            "300@bb:x",   // bad bytes
            "300@bb:0",   // zero bytes
            "300@pfs:-1", // negative bytes
        ] {
            let r = CheckpointPolicy::parse(bad);
            assert!(r.is_err(), "{bad:?} must be rejected");
            let msg = r.unwrap_err().to_string();
            assert!(msg.starts_with("invalid checkpoint spec:"), "{msg}");
        }
    }

    #[test]
    fn builders_validate() {
        let p = CheckpointPolicy::new(10.0, CheckpointTier::Pfs).with_bytes(1e9);
        assert_eq!(p.bytes, Some(1e9));
        assert!(
            std::panic::catch_unwind(|| CheckpointPolicy::new(0.0, CheckpointTier::Bb)).is_err()
        );
        assert!(std::panic::catch_unwind(|| {
            CheckpointPolicy::new(1.0, CheckpointTier::Bb).with_bytes(f64::NAN)
        })
        .is_err());
    }

    #[test]
    fn young_interval_matches_formula() {
        // C = 50 s, MTBF = 3600 s -> sqrt(2*50*3600) = 600 s.
        assert!((young_interval(50.0, 3600.0) - 600.0).abs() < 1e-9);
        assert_eq!(young_interval(0.0, 100.0), 0.0);
    }
}
