//! Extension experiment: how close do the placement heuristics get to
//! optimal?
//!
//! For a small SWarp instance (few enough files to enumerate every
//! placement), brute-force the best BB file-subset within a byte budget
//! by simulating all of them, then measure each greedy heuristic's
//! optimality gap. This is the kind of study the paper's conclusion
//! motivates the simulator for — and it is only feasible because the
//! simulator is fast (hundreds of full simulations per second).

use wfbb_platform::{presets, BbMode, PlatformSpec};
use wfbb_storage::heuristics::{plan_with_budget, BbBudgetHeuristic};
use wfbb_storage::{PlacementPlan, Tier};
use wfbb_wms::SimulationBuilder;
use wfbb_workflow::Workflow;
use wfbb_workloads::SwarpConfig;

use crate::harness::par_map;
use crate::table::{f2, Table};

/// A small instance: one pipeline with 2 images (+2 weight maps) has
/// 4 inputs + 4 intermediates + 1 output = 9 files → 512 placements.
fn small_swarp() -> Workflow {
    SwarpConfig::new(1)
        .with_images_per_pipeline(2)
        .with_cores_per_task(8)
        .build()
}

fn platform() -> PlatformSpec {
    presets::cori(1, BbMode::Private)
}

fn makespan_of(workflow: &Workflow, plan: PlacementPlan) -> f64 {
    SimulationBuilder::new(platform(), workflow.clone())
        .placement_plan(plan)
        .run()
        .expect("simulation succeeds")
        .makespan
        .seconds()
}

/// Exhaustive best placement within `budget` bytes: simulates every
/// subset of files that fits and returns the minimum makespan.
pub(crate) fn brute_force_optimum(workflow: &Workflow, budget: f64) -> f64 {
    let n = workflow.file_count();
    assert!(
        n <= 16,
        "brute force only for tiny instances (got {n} files)"
    );
    let sizes: Vec<f64> = workflow.files().iter().map(|f| f.size).collect();
    let subsets: Vec<u32> = (0..(1u32 << n))
        .filter(|mask| {
            let used: f64 = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| sizes[i])
                .sum();
            used <= budget
        })
        .collect();
    let makespans = par_map(subsets, |&mask| {
        let tiers: Vec<Tier> = (0..n)
            .map(|i| {
                if mask & (1 << i) != 0 {
                    Tier::BurstBuffer
                } else {
                    Tier::Pfs
                }
            })
            .collect();
        makespan_of(workflow, PlacementPlan::from_tiers(tiers))
    });
    makespans.into_iter().fold(f64::INFINITY, f64::min)
}

/// Builds the optimality-gap table.
pub fn run() -> Vec<Table> {
    let wf = small_swarp();
    let footprint = wf.data_footprint();
    let p = platform();
    let budgets: Vec<f64> = [0.25, 0.5, 0.75].iter().map(|s| s * footprint).collect();

    let mut t = Table::new(
        "Optimality (extension): heuristics vs brute-force optimal placement",
        &[
            "budget (% footprint)",
            "strategy",
            "makespan (s)",
            "gap vs optimal",
        ],
    );
    for &budget in &budgets {
        let optimum = brute_force_optimum(&wf, budget);
        t.push_row(vec![
            format!("{:.0}%", 100.0 * budget / footprint),
            "optimal (exhaustive)".into(),
            f2(optimum),
            "0.0%".into(),
        ]);
        for h in BbBudgetHeuristic::ALL {
            let plan = plan_with_budget(
                &wf,
                h,
                budget,
                p.pfs_disk_bw,
                p.bb_network_bw.min(p.bb_disk_bw),
            );
            let m = makespan_of(&wf, plan);
            t.push_row(vec![
                format!("{:.0}%", 100.0 * budget / footprint),
                h.label().into(),
                f2(m),
                format!("{:+.1}%", 100.0 * (m - optimum) / optimum),
            ]);
        }
    }
    t.note("the gap quantifies how much headroom smarter placement policies have — the design space the paper proposes exploring");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristics_never_beat_the_brute_force_optimum() {
        let wf = small_swarp();
        let p = platform();
        let budget = 0.5 * wf.data_footprint();
        let optimum = brute_force_optimum(&wf, budget);
        for h in BbBudgetHeuristic::ALL {
            let plan = plan_with_budget(
                &wf,
                h,
                budget,
                p.pfs_disk_bw,
                p.bb_network_bw.min(p.bb_disk_bw),
            );
            let m = makespan_of(&wf, plan);
            assert!(
                m >= optimum - 1e-9,
                "{} beat the optimum?! {m} < {optimum}",
                h.label()
            );
        }
    }

    #[test]
    fn best_heuristic_is_close_to_optimal_here() {
        let wf = small_swarp();
        let p = platform();
        let budget = 0.75 * wf.data_footprint();
        let optimum = brute_force_optimum(&wf, budget);
        let best = BbBudgetHeuristic::ALL
            .iter()
            .map(|&h| {
                let plan = plan_with_budget(
                    &wf,
                    h,
                    budget,
                    p.pfs_disk_bw,
                    p.bb_network_bw.min(p.bb_disk_bw),
                );
                makespan_of(&wf, plan)
            })
            .fold(f64::INFINITY, f64::min);
        assert!(
            best <= optimum * 1.10,
            "some heuristic should land within 10% of optimal: {best} vs {optimum}"
        );
    }

    #[test]
    fn unlimited_budget_optimum_equals_all_bb() {
        let wf = small_swarp();
        let optimum = brute_force_optimum(&wf, wf.data_footprint());
        let all_bb = makespan_of(
            &wf,
            PlacementPlan::from_tiers(vec![Tier::BurstBuffer; wf.file_count()]),
        );
        // All-BB fits and is one of the enumerated subsets, so the optimum
        // can only be at least as good.
        assert!(optimum <= all_bb + 1e-9);
    }
}
