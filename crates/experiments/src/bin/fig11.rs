//! Regenerates the paper's fig11 data; see `wfbb_experiments::figures`.
fn main() {
    wfbb_experiments::run_and_save("fig11");
}
