//! Edge-case and robustness integration tests: degenerate workflows,
//! zero-size files, I/O-concurrency overrides, cross-node on-node-BB
//! reads, and scheduler/capacity interactions.

use wfbb::prelude::*;
use wfbb::wms::SchedulerPolicy;
use wfbb::workflow::WorkflowBuilder;

#[test]
fn zero_byte_files_flow_through_the_whole_stack() {
    let mut b = WorkflowBuilder::new("zeros");
    let empty_in = b.add_file("empty.in", 0.0);
    let empty_mid = b.add_file("empty.mid", 0.0);
    let real_out = b.add_file("real.out", 1e6);
    b.task("a")
        .category("x")
        .flops(1e10)
        .input(empty_in)
        .output(empty_mid)
        .add();
    b.task("b")
        .category("x")
        .flops(1e10)
        .input(empty_mid)
        .output(real_out)
        .add();
    let wf = b.build().unwrap();
    for platform in wfbb::platform::presets::paper_configs(1) {
        let report = SimulationBuilder::new(platform, wf.clone())
            .placement(PlacementPolicy::AllBb)
            .run()
            .unwrap();
        assert_eq!(report.tasks.len(), 2);
        assert!(report.makespan.seconds() > 0.0, "compute still takes time");
    }
}

#[test]
fn compute_only_tasks_need_no_storage() {
    let mut b = WorkflowBuilder::new("compute-only");
    b.task("solo").category("x").flops(3.68e11).cores(4).add();
    let wf = b.build().unwrap();
    let report = SimulationBuilder::new(wfbb::platform::presets::cori(1, BbMode::Private), wf)
        .run()
        .unwrap();
    // 10 s sequential at Cori speed on 4 cores = 2.5 s.
    assert!((report.makespan.seconds() - 2.5).abs() < 1e-6);
    assert_eq!(report.bb_bytes + report.pfs_bytes, 0.0);
}

#[test]
fn io_concurrency_override_slows_parallel_reads() {
    let wf = SwarpConfig::new(1).with_cores_per_task(32).build();
    let platform = wfbb::platform::presets::cori(1, BbMode::Private);
    let parallel = SimulationBuilder::new(platform.clone(), wf.clone())
        .placement(PlacementPolicy::AllBb)
        .run()
        .unwrap();
    let serial = SimulationBuilder::new(platform, wf)
        .placement(PlacementPolicy::AllBb)
        .io_concurrency(1)
        .run()
        .unwrap();
    assert!(
        serial.makespan > parallel.makespan,
        "serialized file access must be slower: {} !> {}",
        serial.makespan,
        parallel.makespan
    );
}

#[test]
fn cross_node_on_node_bb_reads_work_and_cost_little() {
    // The paper argues data movement between local BBs "would not
    // significantly slow down the application". Force cross-node reads:
    // producer on node 0 (pipeline 0), consumer on node 1 (pipeline 1).
    let mut b = WorkflowBuilder::new("xnode");
    let f = b.add_file("handoff", 100e6);
    let out = b.add_file("out", 1e6);
    b.task("produce")
        .category("p")
        .flops(1e11)
        .cores(4)
        .pipeline(0)
        .output(f)
        .add();
    b.task("consume")
        .category("c")
        .flops(1e11)
        .cores(4)
        .pipeline(1)
        .input(f)
        .output(out)
        .add();
    let wf = b.build().unwrap();
    let two_nodes = SimulationBuilder::new(wfbb::platform::presets::summit(2), wf.clone())
        .placement(PlacementPolicy::AllBb)
        .run()
        .unwrap();
    assert_eq!(two_nodes.task_by_name("produce").unwrap().node, 0);
    assert_eq!(two_nodes.task_by_name("consume").unwrap().node, 1);
    // Same workflow forced onto one node: local read.
    let one_node = SimulationBuilder::new(wfbb::platform::presets::summit(1), wf)
        .placement(PlacementPolicy::AllBb)
        .run()
        .unwrap();
    let remote_penalty = two_nodes.makespan.seconds() / one_node.makespan.seconds();
    assert!(
        remote_penalty < 1.1,
        "remote on-node read should cost little: penalty {remote_penalty}"
    );
}

#[test]
fn single_core_platform_executes_wide_workflows_serially() {
    let mut platform = wfbb::platform::presets::generic(1);
    platform.cores_per_node = 1;
    let mut b = WorkflowBuilder::new("wide");
    for i in 0..5 {
        let f = b.add_file(format!("o{i}"), 1e6);
        b.task(format!("t{i}"))
            .category("w")
            .flops(2e10)
            .cores(1)
            .output(f)
            .add();
    }
    let wf = b.build().unwrap();
    let report = SimulationBuilder::new(platform, wf)
        .placement(PlacementPolicy::AllPfs)
        .run()
        .unwrap();
    // Tasks serialize: no two compute phases overlap.
    let mut intervals: Vec<(f64, f64)> = report
        .tasks
        .iter()
        .map(|t| (t.start.seconds(), t.end.seconds()))
        .collect();
    intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    for w in intervals.windows(2) {
        assert!(w[1].0 >= w[0].1 - 1e-9, "serial execution expected: {w:?}");
    }
}

#[test]
fn oversized_core_requests_are_clamped_to_the_node() {
    let mut b = WorkflowBuilder::new("greedy");
    let f = b.add_file("o", 1e6);
    b.task("t")
        .category("w")
        .flops(3.68e11)
        .cores(1000)
        .output(f)
        .add();
    let wf = b.build().unwrap();
    let report = SimulationBuilder::new(wfbb::platform::presets::cori(1, BbMode::Private), wf)
        .run()
        .unwrap();
    assert_eq!(report.tasks[0].cores, 32, "clamped to the node's 32 cores");
}

#[test]
fn round_robin_with_capacity_pressure_spills_deterministically() {
    let mut platform = wfbb::platform::presets::summit(2);
    platform.bb_capacity = 200e6;
    let mut b = WorkflowBuilder::new("cap");
    for i in 0..6 {
        let f = b.add_file(format!("o{i}"), 90e6);
        b.task(format!("t{i}"))
            .category("w")
            .flops(1e10)
            .cores(1)
            .output(f)
            .add();
    }
    let wf = b.build().unwrap();
    let run = || {
        SimulationBuilder::new(platform.clone(), wf.clone())
            .placement(PlacementPolicy::AllBb)
            .scheduler(SchedulerPolicy::RoundRobin)
            .run()
            .unwrap()
    };
    let a = run();
    let b_ = run();
    assert_eq!(a.spilled_files, b_.spilled_files, "determinism under spill");
    // 2 devices x 200 MB hold 2 x 90 MB each; 2 of 6 files spill.
    assert_eq!(a.spilled_files, 2);
    assert!(a.pfs_bytes > 0.0);
}

#[test]
fn deep_chain_executes_strictly_in_order() {
    let wf = wfbb::workloads::patterns::chain(20, 5e6, 1e10);
    let report = SimulationBuilder::new(wfbb::platform::presets::summit(1), wf)
        .placement(PlacementPolicy::AllBb)
        .run()
        .unwrap();
    for w in report.tasks.windows(2) {
        assert!(w[1].start >= w[0].end, "chain order violated");
    }
}

#[test]
fn workflow_with_only_inputs_and_no_consumers_still_stages() {
    // A stage-only "workflow": one task reads the staged files and does
    // nothing else; 100% staging must move every input byte.
    let mut b = WorkflowBuilder::new("stage-only");
    let files: Vec<_> = (0..8).map(|i| b.add_file(format!("in{i}"), 10e6)).collect();
    b.task("reader")
        .category("r")
        .flops(0.0)
        .cores(1)
        .inputs(files)
        .add();
    let wf = b.build().unwrap();
    let report = SimulationBuilder::new(wfbb::platform::presets::cori(1, BbMode::Private), wf)
        .placement(PlacementPolicy::FractionToBb { fraction: 1.0 })
        .run()
        .unwrap();
    assert!(report.stage_in_time > 0.0);
    // Staged in (80 MB) and read back (80 MB).
    assert!(report.bb_bytes >= 160e6 * 0.99);
}

#[test]
fn bb_architecture_none_degrades_gracefully() {
    let wf = SwarpConfig::new(2).with_cores_per_task(4).build();
    let report = SimulationBuilder::new(wfbb::platform::presets::generic(1), wf)
        .placement(PlacementPolicy::AllBb)
        .run()
        .unwrap();
    // No BB exists: everything silently lands on the PFS.
    assert_eq!(report.bb_bytes, 0.0);
    assert!(report.pfs_bytes > 0.0);
    assert_eq!(report.stage_in_time, 0.0, "nothing to stage without a BB");
}
