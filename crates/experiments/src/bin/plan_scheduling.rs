//! Regenerates the plan-vs-greedy scheduling sweep (walltime-estimate
//! error x policy); see `wfbb_experiments::figures::plan_scheduling`.
fn main() {
    wfbb_experiments::run_and_save("plan_scheduling");
}
