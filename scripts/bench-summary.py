#!/usr/bin/env python3
"""Summarize Criterion results as machine-readable JSON.

Walks ``target/criterion`` for ``new/estimates.json`` files (one per
benchmark) and writes a flat ``{bench_id: median_ns}`` mapping, so CI can
archive per-commit performance numbers as a build artifact and downstream
tooling can diff them without parsing Criterion's directory layout.

Usage:
    python3 scripts/bench-summary.py [criterion_dir] [output.json]

Defaults: ``target/criterion`` and ``BENCH_engine.json``.
Exits non-zero when no estimates are found (a sampling run must have
happened first, e.g. ``cargo bench -p wfbb-bench --bench engine``).
"""

import json
import os
import sys


def collect(criterion_dir):
    """Map benchmark id -> median point estimate in nanoseconds."""
    medians = {}
    for root, _dirs, files in os.walk(criterion_dir):
        if os.path.basename(root) != "new" or "estimates.json" not in files:
            continue
        with open(os.path.join(root, "estimates.json")) as fh:
            estimates = json.load(fh)
        median = estimates.get("median", {}).get("point_estimate")
        if median is None:
            continue
        # <criterion_dir>/<group>/<bench>/new -> "group/bench"; Criterion
        # flattens ungrouped benches to <criterion_dir>/<bench>/new.
        rel = os.path.relpath(os.path.dirname(root), criterion_dir)
        bench_id = rel.replace(os.sep, "/")
        medians[bench_id] = median
    return medians


def main():
    criterion_dir = sys.argv[1] if len(sys.argv) > 1 else "target/criterion"
    out_path = sys.argv[2] if len(sys.argv) > 2 else "BENCH_engine.json"
    medians = collect(criterion_dir)
    if not medians:
        print(f"error: no Criterion estimates under {criterion_dir!r}", file=sys.stderr)
        return 1
    summary = {
        "schema": "wfbb-bench-summary",
        "version": 1,
        "unit": "ns",
        "medians": dict(sorted(medians.items())),
    }
    with open(out_path, "w") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out_path} ({len(medians)} benchmark(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
