//! `wfbb` — simulate workflow executions on burst-buffer platforms.
//!
//! ```text
//! wfbb simulate --workflow swarp:4 --platform cori:private \
//!               --placement fraction:0.5 [--nodes 1] [--scheduler affinity] [--gantt 60] \
//!               [--explain 3 | --explain-json report.json] \
//!               [--trace-out trace.json --trace-format perfetto|jsonl]
//! wfbb campaign --platform cori:striped --nodes 4 --policy bb-aware \
//!               [--workload jobs.txt | --jobs 20 --seed 1] \
//!               [--csv out.csv] [--json out.json] [--trace-out trace.json] \
//!               [--decision-log decisions.jsonl] [--explain-sched 5] \
//!               [--explain-sched-json explain.json] [--progress]
//! wfbb generate --workflow genomes:22 --out wf.json
//! wfbb inspect  --workflow wf.json [--dot graph.dot]
//! wfbb serve    [--addr 127.0.0.1:8080] [--workers 2] [--cache-mb 64]
//!               [--tenant-quota 4] [--job-timeout 300]
//!               [--job-ttl 600] [--max-jobs 1024]
//! ```
//!
//! Platform specs: `cori[:private|:striped]`, `summit`, `generic`, or a
//! platform JSON file. Workflow specs: `swarp:<pipelines>[:<cores>]`,
//! `genomes:<chromosomes>`, or a workflow JSON file. Placement specs:
//! `allbb`, `allpfs`, `fraction:<f>`, `threshold:<bytes>`.
//!
//! `--explain <k>` prints the makespan-explainability report (top-k
//! contention hotspots with victims, the executed critical path and its
//! compute/I-O/wait composition, achieved-vs-nominal tier bandwidth);
//! `--explain-json <path>` writes the same report as machine-readable
//! JSON.
//!
//! `campaign` simulates a multi-tenant batch campaign: a stream of
//! workflow jobs (from a workload file or seeded synthetic arrivals) is
//! admitted onto one shared machine under `--policy fcfs|easy|bb-aware`
//! and executed concurrently; see `docs/scheduler.md`.
//!
//! `--faults <spec|file>` injects deterministic faults (BB node
//! failures, tier degradations, task kills) using the grammar of
//! `docs/failure-model.md`; when the argument names an existing file,
//! the spec is read from it (one event per line, `#` comments).
//! `--failover pfs|bb` selects where accesses re-route when a BB
//! namespace dies, and `--retries <n>` caps re-execution attempts per
//! killed task.

mod args;

use args::{parse_placement, parse_platform, parse_scheduler, parse_workflow, Args, CliError};
use wfbb_wms::{SimulationBuilder, TelemetryConfig};

const USAGE: &str = "\
usage:
  wfbb simulate --workflow <spec> --platform <spec> [--placement <spec>]
                [--nodes <n>] [--scheduler affinity|least-loaded|round-robin]
                [--gantt <width>] [--explain <k>] [--explain-json <path>]
                [--trace-out <path> [--trace-format perfetto|jsonl]]
                [--faults <spec|file>] [--failover pfs|bb] [--retries <n>]
                [--checkpoint <interval>@<bb|pfs>[:<bytes>]]
  wfbb campaign --platform <spec> [--nodes <n>]
                [--policy fcfs|easy|bb-aware|plan] [--plan-horizon <s>]
                (--workload <file> | [--jobs <n>] [--seed <s>]
                 [--mean-interarrival <s>] [--bb-scale <f>] [--max-nodes <n>])
                [--solver naive|incremental] [--solver-threads <n>]
                [--faults <spec|file>] [--checkpoint <spec>]
                [--csv <path>] [--json <path>] [--trace-out <path>]
                [--decision-log <path>] [--explain-sched <k>]
                [--explain-sched-json <path>] [--progress]
  wfbb generate --workflow <spec> --out <file.json>
  wfbb inspect  --workflow <spec> [--dot <file.dot>]
  wfbb serve    [--addr <host:port>] [--workers <n>] [--cache-mb <mb>]
                [--tenant-quota <n>] [--job-timeout <s>]
                [--job-ttl <s>] [--max-jobs <n>]

specs:
  workflow:  swarp:<pipelines>[:<cores>] | genomes:<chromosomes>
             | wfcommons:<trace.json>[:<gflops_per_core>] | <file.json>
  platform:  cori[:private|:striped] | summit | generic | <file.json>
  placement: allbb | allpfs | fraction:<f> | threshold:<bytes>

observability (see docs/trace-format.md):
  --explain      print the makespan-explainability report: top-<k>
                 contention hotspots, executed critical path, tier bandwidth
  --explain-json write the explainability report as JSON to <path>
  --trace-out    write a full run trace (stage spans, task phases, engine
                 telemetry) to <path>; enables engine telemetry sampling
  --trace-format perfetto (default; load in ui.perfetto.dev) | jsonl

campaign scheduling (see docs/scheduler.md):
  --policy       fcfs | easy (EASY backfilling on nodes) | bb-aware (EASY on
                 nodes *and* burst-buffer capacity) | plan (fork the whole
                 simulation at each scheduling point, play candidate queue
                 orders forward, commit the best projected bounded slowdown)
  --plan-horizon lookahead of plan's speculative forks, seconds past the
                 scheduling point (default 86400)
  --workload     workload file (one `key=value ...` job per line); without it
                 a synthetic campaign is drawn from --seed/--jobs/
                 --mean-interarrival/--bb-scale/--max-nodes
  --csv/--json   per-job outcomes as CSV / the full campaign report as JSON
  --trace-out    Perfetto trace with one lane per job, cluster counters, and
                 (with the decision log on) a scheduler decision lane
  --decision-log write the structured scheduler decision log as JSONL (every
                 admission verdict with its typed block reason, BB-pool
                 ledger, plan-search records; docs/observability.md)
  --explain-sched      print why the campaign waited: top-<k> blocked jobs
                 with their nodes/bb/reservation wait decomposition, the
                 dominant blocking resource, the plan win/loss table
  --explain-sched-json write the same explanation as JSON to <path>
  --progress     stderr heartbeat (sim time, jobs admitted/finished, queue
                 depth, wall-clock) plus a final scheduler wall-clock
                 profile; never alters stdout or any artifact bytes

performance (see docs/performance.md):
  --solver-threads  0 (default) keeps the monolithic fair-share solve;
                 n >= 1 partitions each solve into connected components and
                 runs them on n worker threads (build with `--features
                 parallel` for real threads; without it the decomposition
                 still applies, executed serially with identical results)

fault injection (see docs/failure-model.md):
  --faults       comma/newline-separated events, or a path to a spec file:
                 bb:<i>@<t> (kill BB node i at t s), bb:<i>@<t>*<f> and
                 pfs@<t>*<f> (degrade to fraction f of nominal),
                 task:<name>@<t> (kill a running task),
                 seed:<s>:<k>@<horizon> (k seeded BB failures before t)
  --failover     pfs (default: dead-BB accesses re-route to the PFS) | bb
                 (re-place on surviving BB namespaces when possible)
  --retries      max execution attempts per task (default 3)
  --checkpoint   periodic checkpoint writes as scheduled I/O:
                 <interval>@<bb|pfs>[:<bytes>], e.g. 60@bb or 45@pfs:2e9
                 (bytes default to each task's output footprint); killed
                 tasks restart from their last completed image. On
                 campaign the policy applies to every job that does not
                 set its own checkpoint= key in the workload file.
                 campaign --faults accepts only campaign-scope capacity
                 events (bb:<i>@<t>, bb:<i>@<t>*<f>, pfs@<t>*<f>,
                 seed:...); a BB node death shrinks the machine-wide BB
                 reservation pool for every tenant. task:<name>@<t>
                 kills are per-job: use kill= on the workload line.

serving (see docs/service.md):
  serve          run the long-lived what-if HTTP API: submit simulate/
                 campaign jobs as JSON, stream progress, fetch artifacts;
                 identical inputs are answered from a deterministic
                 result cache
  --addr         bind address (default 127.0.0.1:8080; port 0 = ephemeral)
  --workers      simulation worker threads (default 2)
  --cache-mb     result-cache capacity in MiB (default 64)
  --tenant-quota max in-flight jobs per tenant (default 4)
  --job-timeout  per-job wall-clock timeout in seconds (default 300)
  --job-ttl      seconds a finished job stays fetchable before its entry
                 is evicted (default 600)
  --max-jobs     max retained finished jobs before the oldest are
                 evicted (default 1024)";

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = run(&raw) {
        eprintln!("error: {e}\n\n{USAGE}");
        std::process::exit(2);
    }
}

fn run(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse_with_switches(raw, &["progress"])?;
    match args.command.as_str() {
        "simulate" => {
            args.check_flags(&[
                "workflow",
                "platform",
                "placement",
                "nodes",
                "scheduler",
                "gantt",
                "explain",
                "explain-json",
                "trace-out",
                "trace-format",
                "faults",
                "failover",
                "retries",
                "checkpoint",
            ])?;
            simulate(&args)
        }
        "campaign" => {
            args.check_flags(&[
                "platform",
                "nodes",
                "policy",
                "plan-horizon",
                "workload",
                "jobs",
                "seed",
                "mean-interarrival",
                "bb-scale",
                "max-nodes",
                "solver",
                "solver-threads",
                "faults",
                "checkpoint",
                "csv",
                "json",
                "trace-out",
                "decision-log",
                "explain-sched",
                "explain-sched-json",
                "progress",
            ])?;
            campaign(&args)
        }
        "generate" => {
            args.check_flags(&["workflow", "out"])?;
            generate(&args)
        }
        "inspect" => {
            args.check_flags(&["workflow", "dot"])?;
            inspect(&args)
        }
        "serve" => {
            args.check_flags(&[
                "addr",
                "workers",
                "cache-mb",
                "tenant-quota",
                "job-timeout",
                "job-ttl",
                "max-jobs",
            ])?;
            serve(&args)
        }
        other => Err(CliError(format!("unknown subcommand {other:?}"))),
    }
}

/// Reads a `--faults` argument: the text of the file it names, or the
/// argument itself as an inline spec.
fn fault_spec(arg: &str) -> Result<wfbb_wms::FaultSpec, CliError> {
    let text = if std::path::Path::new(arg).is_file() {
        std::fs::read_to_string(arg)
            .map_err(|e| CliError(format!("cannot read fault spec {arg:?}: {e}")))?
    } else {
        arg.to_string()
    };
    wfbb_wms::FaultSpec::parse(&text).map_err(|e| CliError(e.to_string()))
}

/// Parses a `--checkpoint` argument (`<interval>@<bb|pfs>[:<bytes>]`).
fn checkpoint_policy(arg: &str) -> Result<wfbb_wms::CheckpointPolicy, CliError> {
    wfbb_wms::CheckpointPolicy::parse(arg).map_err(|e| CliError(e.to_string()))
}

fn simulate(args: &Args) -> Result<(), CliError> {
    let workflow = parse_workflow(args.require("workflow")?)?;
    let nodes: usize = args
        .get_or("nodes", "1")
        .parse()
        .map_err(|_| CliError("bad --nodes value".into()))?;
    let platform = parse_platform(args.require("platform")?, nodes)?;
    let placement = parse_placement(args.get_or("placement", "allbb"))?;
    let scheduler = parse_scheduler(args.get_or("scheduler", "affinity"))?;
    let trace_out = args.get("trace-out");
    let trace_format = args.get_or("trace-format", "perfetto");
    if !matches!(trace_format, "perfetto" | "jsonl") {
        return Err(CliError(format!(
            "unrecognized trace format {trace_format:?} (expected perfetto or jsonl)"
        )));
    }

    let mut builder = SimulationBuilder::new(platform.clone(), workflow)
        .placement(placement)
        .scheduler(scheduler);
    if trace_out.is_some() {
        // Full traces want the engine's resource series and histograms.
        builder = builder.telemetry(TelemetryConfig::enabled());
    }
    if let Some(spec) = args.get("faults") {
        builder = builder.faults(fault_spec(spec)?);
    }
    if let Some(spec) = args.get("checkpoint") {
        builder = builder.checkpoint(checkpoint_policy(spec)?);
    }
    if let Some(policy) = args.get("failover") {
        let policy = match policy {
            "pfs" => wfbb_storage::FailoverPolicy::RerouteToPfs,
            "bb" => wfbb_storage::FailoverPolicy::SurvivingBb,
            other => {
                return Err(CliError(format!(
                    "unrecognized failover policy {other:?} (expected pfs or bb)"
                )))
            }
        };
        builder = builder.failover(policy);
    }
    if let Some(n) = args.get("retries") {
        let max_attempts: u32 = n
            .parse()
            .map_err(|_| CliError("bad --retries value".into()))?;
        builder = builder.retry_policy(wfbb_wms::RetryPolicy {
            max_attempts,
            ..Default::default()
        });
    }
    let report = builder
        .run()
        .map_err(|e| CliError(format!("simulation failed: {e}")))?;

    println!("platform   : {}", platform.name);
    println!("makespan   : {:.3} s", report.makespan.seconds());
    println!("stage-in   : {:.3} s", report.stage_in_time);
    println!(
        "BB traffic : {:.2} GB (peak occupancy {:.2} GB, {} spilled)",
        report.bb_bytes / 1e9,
        report.bb_peak_bytes / 1e9,
        report.spilled_files
    );
    println!("PFS traffic: {:.2} GB", report.pfs_bytes / 1e9);
    if !report.faults.is_empty() {
        println!(
            "faults     : {} event(s), {} retried execution(s), {:.3} s fault wait, \
             {:.2} MB lost in flight",
            report.faults.len(),
            report.retries,
            report.fault_wait_total,
            report.fault_lost_bytes / 1e6,
        );
        for f in &report.faults {
            println!("  t={:>10.3} s  {}", f.time, f.description);
        }
    }
    if report.checkpoints > 0 || report.restores > 0 {
        println!(
            "checkpoints: {} written ({:.2} GB, {:.3} s of checkpoint I/O), {} restore(s)",
            report.checkpoints,
            report.checkpoint_bytes / 1e9,
            report.checkpoint_io_total,
            report.restores,
        );
    }
    for (category, stats) in report.by_category() {
        println!(
            "  {:<20} {:>4} task(s)  mean {:>9.3} s  (I/O {:.3} s, compute {:.3} s)",
            category, stats.count, stats.mean_duration, stats.mean_io_time, stats.mean_compute_time
        );
    }
    if let Some(width) = args.get("gantt") {
        let width: usize = width
            .parse()
            .map_err(|_| CliError("bad --gantt width".into()))?;
        println!("\n{}", report.gantt_ascii(width));
    }
    if let Some(k) = args.get("explain") {
        let k: usize = k
            .parse()
            .map_err(|_| CliError("bad --explain hotspot count".into()))?;
        println!("\n{}", report.explain(k).render_text());
    }
    if let Some(path) = args.get("explain-json") {
        std::fs::write(path, report.explain(5).to_json())
            .map_err(|e| CliError(format!("cannot write {path:?}: {e}")))?;
        println!("wrote explainability report to {path}");
    }
    if let Some(path) = trace_out {
        let trace = match trace_format {
            "jsonl" => report.jsonl_trace(),
            _ => report.perfetto_trace_json(),
        };
        std::fs::write(path, trace).map_err(|e| CliError(format!("cannot write {path:?}: {e}")))?;
        match trace_format {
            "jsonl" => println!("wrote JSONL trace to {path} (schema in docs/trace-format.md)"),
            _ => println!("wrote Perfetto trace to {path} (open in ui.perfetto.dev)"),
        }
    }
    Ok(())
}

fn campaign(args: &Args) -> Result<(), CliError> {
    use wfbb_sched::{
        explain_json, explain_text, parse_workload, synthetic_jobs, BatchPolicy, CampaignConfig,
        CampaignSim, SyntheticConfig,
    };

    let nodes: usize = args
        .get_or("nodes", "4")
        .parse()
        .map_err(|_| CliError("bad --nodes value".into()))?;
    let platform_spec = args.require("platform")?;
    let platform = parse_platform(platform_spec, nodes)?;
    let policy_label = args.get_or("policy", "fcfs");
    let policy = BatchPolicy::parse(policy_label).ok_or_else(|| {
        CliError(format!(
            "unrecognized policy {policy_label:?} (expected fcfs, easy, bb-aware, or plan)"
        ))
    })?;
    let plan_horizon: f64 = args
        .get_or("plan-horizon", "86400")
        .parse()
        .map_err(|_| CliError("bad --plan-horizon value".into()))?;
    if !plan_horizon.is_finite() || plan_horizon <= 0.0 {
        return Err(CliError("--plan-horizon must be a positive number".into()));
    }
    let solve_mode = match args.get_or("solver", "incremental") {
        "incremental" => wfbb_simcore::SolveMode::Incremental,
        "naive" => wfbb_simcore::SolveMode::Naive,
        other => {
            return Err(CliError(format!(
                "unrecognized solver {other:?} (expected naive or incremental)"
            )))
        }
    };
    let solver_threads: usize = args
        .get_or("solver-threads", "0")
        .parse()
        .map_err(|_| CliError("bad --solver-threads value".into()))?;

    let mut jobs = if let Some(path) = args.get("workload") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError(format!("cannot read workload {path:?}: {e}")))?;
        parse_workload(&text).map_err(|e| CliError(e.to_string()))?
    } else {
        let count: usize = args
            .get_or("jobs", "20")
            .parse()
            .map_err(|_| CliError("bad --jobs value".into()))?;
        let seed: u64 = args
            .get_or("seed", "1")
            .parse()
            .map_err(|_| CliError("bad --seed value".into()))?;
        let mean_interarrival: f64 = args
            .get_or("mean-interarrival", "30")
            .parse()
            .map_err(|_| CliError("bad --mean-interarrival value".into()))?;
        let bb_request_scale: f64 = args
            .get_or("bb-scale", "1")
            .parse()
            .map_err(|_| CliError("bad --bb-scale value".into()))?;
        let default_max = nodes.to_string();
        let max_nodes: usize = args
            .get_or("max-nodes", &default_max)
            .parse()
            .map_err(|_| CliError("bad --max-nodes value".into()))?;
        synthetic_jobs(
            seed,
            &SyntheticConfig {
                jobs: count,
                mean_interarrival,
                bb_request_scale,
                max_nodes,
            },
        )
        .map_err(|e| CliError(e.to_string()))?
    };
    if let Some(spec) = args.get("checkpoint") {
        // A campaign-wide default: per-job checkpoint= keys in the
        // workload file take precedence.
        let policy = checkpoint_policy(spec)?;
        for job in &mut jobs {
            if job.checkpoint.is_none() {
                job.checkpoint = Some(policy);
            }
        }
    }

    let explain_k = args
        .get("explain-sched")
        .map(|k| {
            k.parse::<usize>()
                .map_err(|_| CliError("bad --explain-sched job count".into()))
        })
        .transpose()?;
    // The log is collected whenever anything will read it; the report is
    // byte-identical either way (pinned by tests/decision_log.rs).
    let want_log = args.get("decision-log").is_some()
        || explain_k.is_some()
        || args.get("explain-sched-json").is_some();
    let progress = args.flag("progress");

    let mut config = CampaignConfig::new(platform)
        .with_policy(policy)
        .with_solve_mode(solve_mode)
        .with_platform_label(platform_spec)
        .with_plan_horizon(plan_horizon)
        .with_solver_threads(solver_threads)
        .with_decision_log(want_log);
    if let Some(spec) = args.get("faults") {
        // Campaign-scope capacity faults; `CampaignSim::new` rejects
        // task kills loudly (they belong on workload `kill=` keys).
        config = config.with_faults(fault_spec(spec)?);
    }
    let mut sim =
        CampaignSim::new(&config, &jobs).map_err(|e| CliError(format!("campaign failed: {e}")))?;
    let wall_start = std::time::Instant::now();
    let mut last_beat = std::time::Instant::now();
    loop {
        let more = sim
            .step()
            .map_err(|e| CliError(format!("campaign failed: {e}")))?;
        // The heartbeat writes to stderr only, so stdout and every
        // artifact stay byte-identical with or without --progress.
        if progress && last_beat.elapsed().as_millis() >= 500 {
            eprintln!(
                "[campaign] t={:.1}s admitted={} finished={} queue={} wall={:.1}s",
                sim.now(),
                sim.jobs_admitted(),
                sim.jobs_finished(),
                sim.queue_depth(),
                wall_start.elapsed().as_secs_f64(),
            );
            last_beat = std::time::Instant::now();
        }
        if !more {
            break;
        }
    }
    let log = sim.export_decision_log();
    let profile = sim.profile();
    if progress {
        eprintln!(
            "[campaign] done: t={:.1}s admitted={} finished={} wall={:.2}s",
            sim.now(),
            sim.jobs_admitted(),
            sim.jobs_finished(),
            wall_start.elapsed().as_secs_f64(),
        );
        eprintln!("[sched-profile] {}", profile.summary_text());
    }
    let report = sim
        .finish()
        .map_err(|e| CliError(format!("campaign failed: {e}")))?;
    print!("{}", report.summary_text());
    if let Some(k) = explain_k {
        print!("{}", explain_text(&report, &log, k));
    }
    if let Some(path) = args.get("explain-sched-json") {
        std::fs::write(path, explain_json(&report, &log, 10))
            .map_err(|e| CliError(format!("cannot write {path:?}: {e}")))?;
        println!("wrote scheduler explanation to {path}");
    }
    if let Some(path) = args.get("csv") {
        std::fs::write(path, report.jobs_csv())
            .map_err(|e| CliError(format!("cannot write {path:?}: {e}")))?;
        println!("wrote per-job CSV to {path}");
    }
    if let Some(path) = args.get("json") {
        std::fs::write(path, report.to_json())
            .map_err(|e| CliError(format!("cannot write {path:?}: {e}")))?;
        println!("wrote campaign report to {path}");
    }
    if let Some(path) = args.get("decision-log") {
        std::fs::write(path, log.to_jsonl())
            .map_err(|e| CliError(format!("cannot write {path:?}: {e}")))?;
        println!("wrote scheduler decision log to {path} (schema in docs/trace-format.md)");
    }
    if let Some(path) = args.get("trace-out") {
        let trace = if log.enabled() {
            report.perfetto_trace_with_decisions(&log)
        } else {
            report.perfetto_trace_json()
        };
        std::fs::write(path, trace).map_err(|e| CliError(format!("cannot write {path:?}: {e}")))?;
        println!("wrote Perfetto campaign trace to {path} (open in ui.perfetto.dev)");
    }
    Ok(())
}

fn generate(args: &Args) -> Result<(), CliError> {
    let workflow = parse_workflow(args.require("workflow")?)?;
    let out = args.require("out")?;
    std::fs::write(out, workflow.to_json())
        .map_err(|e| CliError(format!("cannot write {out:?}: {e}")))?;
    println!(
        "wrote {} ({} tasks, {} files, {:.2} GB footprint)",
        out,
        workflow.task_count(),
        workflow.file_count(),
        workflow.data_footprint() / 1e9
    );
    Ok(())
}

fn inspect(args: &Args) -> Result<(), CliError> {
    let workflow = parse_workflow(args.require("workflow")?)?;
    let (cp_work, cp_path) = workflow.critical_path(|t| workflow.task(t).flops);
    println!("workflow     : {}", workflow.name);
    println!("tasks        : {}", workflow.task_count());
    println!("files        : {}", workflow.file_count());
    println!("depth        : {}", workflow.depth());
    println!("width        : {}", workflow.width());
    println!(
        "footprint    : {:.2} GB ({:.2} GB input, {:.0}%)",
        workflow.data_footprint() / 1e9,
        workflow.input_data_size() / 1e9,
        100.0 * workflow.input_data_size() / workflow.data_footprint().max(1.0)
    );
    println!(
        "critical path: {:.2} Gflop over {} tasks",
        cp_work / 1e9,
        cp_path.len()
    );
    let mut by_cat: std::collections::BTreeMap<&str, usize> = Default::default();
    for t in workflow.tasks() {
        *by_cat.entry(t.category.as_str()).or_default() += 1;
    }
    for (cat, n) in by_cat {
        println!("  {cat:<24} {n}");
    }
    let findings = workflow.lint();
    if findings.is_empty() {
        println!("lint         : clean");
    } else {
        println!("lint         : {} finding(s)", findings.len());
        for finding in findings.iter().take(10) {
            println!("  - {finding}");
        }
        if findings.len() > 10 {
            println!("  ... and {} more", findings.len() - 10);
        }
    }
    if let Some(path) = args.get("dot") {
        std::fs::write(path, workflow.to_dot())
            .map_err(|e| CliError(format!("cannot write {path:?}: {e}")))?;
        println!("wrote DOT graph to {path}");
    }
    Ok(())
}

fn serve(args: &Args) -> Result<(), CliError> {
    let addr = args.get_or("addr", "127.0.0.1:8080").to_string();
    let workers: usize = args
        .get_or("workers", "2")
        .parse()
        .map_err(|_| CliError("bad --workers value".into()))?;
    if workers == 0 {
        return Err(CliError("--workers must be at least 1".into()));
    }
    let cache_mb: usize = args
        .get_or("cache-mb", "64")
        .parse()
        .map_err(|_| CliError("bad --cache-mb value".into()))?;
    let tenant_quota: usize = args
        .get_or("tenant-quota", "4")
        .parse()
        .map_err(|_| CliError("bad --tenant-quota value".into()))?;
    if tenant_quota == 0 {
        return Err(CliError("--tenant-quota must be at least 1".into()));
    }
    let job_timeout: f64 = args
        .get_or("job-timeout", "300")
        .parse()
        .map_err(|_| CliError("bad --job-timeout value".into()))?;
    if !job_timeout.is_finite() || job_timeout <= 0.0 {
        return Err(CliError("--job-timeout must be positive".into()));
    }
    let job_ttl: f64 = args
        .get_or("job-ttl", "600")
        .parse()
        .map_err(|_| CliError("bad --job-ttl value".into()))?;
    if !job_ttl.is_finite() || job_ttl <= 0.0 {
        return Err(CliError("--job-ttl must be positive".into()));
    }
    let max_jobs: usize = args
        .get_or("max-jobs", "1024")
        .parse()
        .map_err(|_| CliError("bad --max-jobs value".into()))?;
    if max_jobs == 0 {
        return Err(CliError("--max-jobs must be at least 1".into()));
    }
    let config = wfbb_serve::ServeConfig {
        addr,
        workers,
        cache_bytes: cache_mb.saturating_mul(1024 * 1024),
        quota: wfbb_serve::TenantQuota {
            max_in_flight: tenant_quota,
            timeout_s: job_timeout,
            ..Default::default()
        },
        job_ttl: std::time::Duration::from_secs_f64(job_ttl),
        max_jobs,
    };
    let server = wfbb_serve::Server::bind(config)
        .map_err(|e| CliError(format!("cannot bind serve address: {e}")))?;
    // The bound address line doubles as the CI readiness/port-discovery
    // signal when --addr ends in :0.
    println!("listening on http://{}", server.local_addr());
    println!(
        "workers={workers} cache={cache_mb}MiB tenant-quota={tenant_quota} \
         job-timeout={job_timeout}s job-ttl={job_ttl}s max-jobs={max_jobs}  (docs/service.md)"
    );
    server
        .run()
        .map_err(|e| CliError(format!("serve failed: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rawv(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn simulate_swarp_on_summit_succeeds() {
        run(&rawv(&[
            "simulate",
            "--workflow",
            "swarp:2:8",
            "--platform",
            "summit",
            "--placement",
            "fraction:0.5",
        ]))
        .unwrap();
    }

    #[test]
    fn generate_then_inspect_then_simulate_round_trips() {
        let dir = std::env::temp_dir().join("wfbb-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wf.json");
        let path_str = path.to_str().unwrap();
        run(&rawv(&[
            "generate",
            "--workflow",
            "genomes:2",
            "--out",
            path_str,
        ]))
        .unwrap();
        let dot_path = dir.join("wf.dot");
        run(&rawv(&[
            "inspect",
            "--workflow",
            path_str,
            "--dot",
            dot_path.to_str().unwrap(),
        ]))
        .unwrap();
        let dot = std::fs::read_to_string(&dot_path).unwrap();
        assert!(dot.starts_with("digraph"));
        std::fs::remove_file(dot_path).ok();
        run(&rawv(&[
            "simulate",
            "--workflow",
            path_str,
            "--platform",
            "cori:striped",
            "--nodes",
            "2",
            "--scheduler",
            "least-loaded",
        ]))
        .unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn trace_out_writes_both_formats() {
        let dir = std::env::temp_dir().join("wfbb-cli-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let perfetto = dir.join("trace.json");
        run(&rawv(&[
            "simulate",
            "--workflow",
            "swarp:1:4",
            "--platform",
            "summit",
            "--trace-out",
            perfetto.to_str().unwrap(),
        ]))
        .unwrap();
        let body = std::fs::read_to_string(&perfetto).unwrap();
        assert!(body.contains("\"traceEvents\""));
        assert!(body.contains("\"ph\":\"C\""), "telemetry counters present");
        std::fs::remove_file(&perfetto).ok();
        let jsonl = dir.join("trace.jsonl");
        run(&rawv(&[
            "simulate",
            "--workflow",
            "swarp:1:4",
            "--platform",
            "summit",
            "--trace-out",
            jsonl.to_str().unwrap(),
            "--trace-format",
            "jsonl",
        ]))
        .unwrap();
        let body = std::fs::read_to_string(&jsonl).unwrap();
        assert!(body.starts_with("{\"type\":\"header\""));
        assert!(body.contains("\"type\":\"resource_sample\""));
        std::fs::remove_file(&jsonl).ok();
    }

    #[test]
    fn explain_prints_and_writes_json() {
        let dir = std::env::temp_dir().join("wfbb-cli-explain-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("explain.json");
        run(&rawv(&[
            "simulate",
            "--workflow",
            "swarp:4:8",
            "--platform",
            "cori:striped",
            "--placement",
            "allbb",
            "--explain",
            "3",
            "--explain-json",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with('{') && body.ends_with('}'));
        assert!(body.contains("\"hotspots\""));
        assert!(body.contains("\"critical_path\""));
        // SWarp on striped-mode Cori is bound by the shared burst buffer:
        // the report names a BB resource among the hotspots.
        assert!(body.contains("/bb"), "expected a BB hotspot in {body}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn faults_inline_spec_simulates_with_failover() {
        run(&rawv(&[
            "simulate",
            "--workflow",
            "swarp:2:8",
            "--platform",
            "cori:striped",
            "--placement",
            "allbb",
            "--faults",
            "bb:0@2",
            "--failover",
            "pfs",
        ]))
        .unwrap();
    }

    #[test]
    fn faults_spec_file_is_read_and_applied() {
        let dir = std::env::temp_dir().join("wfbb-cli-faults-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("faults.txt");
        std::fs::write(
            &path,
            "# kill one BB node early, degrade the PFS\nbb:0@2\npfs@5*0.5\n",
        )
        .unwrap();
        run(&rawv(&[
            "simulate",
            "--workflow",
            "swarp:1:8",
            "--platform",
            "cori:striped",
            "--placement",
            "allbb",
            "--faults",
            path.to_str().unwrap(),
            "--retries",
            "5",
        ]))
        .unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_fault_spec_and_failover_are_rejected() {
        let err = run(&rawv(&[
            "simulate",
            "--workflow",
            "swarp:1",
            "--platform",
            "summit",
            "--faults",
            "bb:zero@nope",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("fault spec"), "{err}");
        let err = run(&rawv(&[
            "simulate",
            "--workflow",
            "swarp:1",
            "--platform",
            "summit",
            "--failover",
            "tape",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("failover"), "{err}");
    }

    #[test]
    fn bad_explain_count_is_rejected() {
        let err = run(&rawv(&[
            "simulate",
            "--workflow",
            "swarp:1",
            "--platform",
            "summit",
            "--explain",
            "many",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("explain"));
    }

    #[test]
    fn bad_trace_format_is_rejected() {
        let err = run(&rawv(&[
            "simulate",
            "--workflow",
            "swarp:1",
            "--platform",
            "summit",
            "--trace-out",
            "/tmp/x.json",
            "--trace-format",
            "xml",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("trace format"));
    }

    #[test]
    fn campaign_synthetic_writes_csv_json_and_trace() {
        let dir = std::env::temp_dir().join("wfbb-cli-campaign-test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("jobs.csv");
        let json = dir.join("report.json");
        let trace = dir.join("trace.json");
        run(&rawv(&[
            "campaign",
            "--platform",
            "cori:striped",
            "--nodes",
            "4",
            "--policy",
            "bb-aware",
            "--jobs",
            "6",
            "--seed",
            "7",
            "--csv",
            csv.to_str().unwrap(),
            "--json",
            json.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        let csv_body = std::fs::read_to_string(&csv).unwrap();
        assert_eq!(csv_body.lines().count(), 7, "header + 6 jobs");
        assert!(csv_body.contains("bb-aware"));
        let json_body = std::fs::read_to_string(&json).unwrap();
        assert!(json_body.contains("\"policy\":\"bb-aware\""));
        let trace_body = std::fs::read_to_string(&trace).unwrap();
        assert!(trace_body.contains("\"traceEvents\""));
        assert!(trace_body.contains("\"name\":\"job:"));
        for p in [&csv, &json, &trace] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn campaign_decision_log_explain_and_progress() {
        let dir = std::env::temp_dir().join("wfbb-cli-campaign-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let dlog = dir.join("decisions.jsonl");
        let explain = dir.join("explain.json");
        let json_a = dir.join("report-a.json");
        let json_b = dir.join("report-b.json");
        run(&rawv(&[
            "campaign",
            "--platform",
            "cori:striped",
            "--nodes",
            "4",
            "--policy",
            "plan",
            "--jobs",
            "8",
            "--seed",
            "7",
            "--mean-interarrival",
            "15",
            "--progress",
            "--decision-log",
            dlog.to_str().unwrap(),
            "--explain-sched",
            "3",
            "--explain-sched-json",
            explain.to_str().unwrap(),
            "--json",
            json_a.to_str().unwrap(),
        ]))
        .unwrap();
        let log_body = std::fs::read_to_string(&dlog).unwrap();
        assert!(log_body.starts_with("{\"type\":\"header\""), "{log_body}");
        assert!(log_body.contains("\"schema\":\"wfbb-sched-decisions\""));
        assert!(log_body.contains("\"type\":\"counters\""));
        assert!(log_body
            .trim_end()
            .lines()
            .last()
            .unwrap()
            .contains("\"type\":\"summary\""));
        let explain_body = std::fs::read_to_string(&explain).unwrap();
        assert!(
            explain_body.contains("\"dominant_block\":"),
            "{explain_body}"
        );
        // The same campaign without any observability flags writes a
        // byte-identical report.
        run(&rawv(&[
            "campaign",
            "--platform",
            "cori:striped",
            "--nodes",
            "4",
            "--policy",
            "plan",
            "--jobs",
            "8",
            "--seed",
            "7",
            "--mean-interarrival",
            "15",
            "--json",
            json_b.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&json_a).unwrap(),
            std::fs::read_to_string(&json_b).unwrap(),
            "decision log must not perturb the report"
        );
        for p in [&dlog, &explain, &json_a, &json_b] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn campaign_workload_file_runs_under_every_policy() {
        let dir = std::env::temp_dir().join("wfbb-cli-campaign-wl-test");
        std::fs::create_dir_all(&dir).unwrap();
        let wl = dir.join("jobs.txt");
        std::fs::write(
            &wl,
            "workflow=swarp:1:8 nodes=2 bb=2e9 walltime=600 name=a\n\
             workflow=swarp:1:8 nodes=2 bb=2e9 walltime=600 submit=5 name=b\n",
        )
        .unwrap();
        for policy in ["fcfs", "easy", "bb-aware"] {
            run(&rawv(&[
                "campaign",
                "--platform",
                "cori:striped",
                "--policy",
                policy,
                "--workload",
                wl.to_str().unwrap(),
            ]))
            .unwrap();
        }
        std::fs::remove_file(&wl).ok();
    }

    #[test]
    fn campaign_rejects_bad_policy_and_chrome_flag_is_gone() {
        let err = run(&rawv(&[
            "campaign",
            "--platform",
            "summit",
            "--policy",
            "lottery",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("policy"), "{err}");
        // --chrome was removed after its deprecation window: the parser
        // now treats it as an unknown flag.
        let err = run(&rawv(&[
            "simulate",
            "--workflow",
            "swarp:1",
            "--platform",
            "summit",
            "--chrome",
            "/tmp/x.json",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("chrome"), "{err}");
    }

    #[test]
    fn simulate_checkpoint_flag_runs_and_bad_specs_are_rejected() {
        run(&rawv(&[
            "simulate",
            "--workflow",
            "swarp:1:8",
            "--platform",
            "cori:striped",
            "--placement",
            "allbb",
            "--checkpoint",
            "20@bb",
        ]))
        .unwrap();
        let err = run(&rawv(&[
            "simulate",
            "--workflow",
            "swarp:1",
            "--platform",
            "summit",
            "--checkpoint",
            "60@tape",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("checkpoint"), "{err}");
    }

    #[test]
    fn campaign_capacity_faults_run_and_task_kills_are_rejected_loudly() {
        let dir = std::env::temp_dir().join("wfbb-cli-campaign-faults-test");
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("report.json");
        run(&rawv(&[
            "campaign",
            "--platform",
            "cori:striped",
            "--nodes",
            "4",
            "--policy",
            "bb-aware",
            "--jobs",
            "4",
            "--seed",
            "7",
            "--faults",
            "bb:0@40",
            "--checkpoint",
            "30@bb",
            "--json",
            json.to_str().unwrap(),
        ]))
        .unwrap();
        let body = std::fs::read_to_string(&json).unwrap();
        assert!(body.contains("\"bb_pool_bytes\""));
        std::fs::remove_file(&json).ok();
        // Task kills are per-job, not campaign-scope: the error says so
        // and points at the workload-file alternative.
        let err = run(&rawv(&[
            "campaign",
            "--platform",
            "cori:striped",
            "--policy",
            "fcfs",
            "--jobs",
            "2",
            "--faults",
            "task:resample_0@10",
        ]))
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("per-job"), "{msg}");
        assert!(msg.contains("kill=resample_0"), "{msg}");
        // Campaign BB faults need a machine-wide (shared) burst buffer.
        let err = run(&rawv(&[
            "campaign",
            "--platform",
            "summit",
            "--policy",
            "fcfs",
            "--jobs",
            "2",
            "--faults",
            "bb:0@10",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("shared"), "{err}");
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(run(&rawv(&["teleport"])).is_err());
        assert!(run(&rawv(&[])).is_err());
    }

    #[test]
    fn simulate_requires_workflow_and_platform() {
        assert!(run(&rawv(&["simulate", "--platform", "summit"])).is_err());
        assert!(run(&rawv(&["simulate", "--workflow", "swarp:1"])).is_err());
    }
}
