//! The campaign driver: a multi-tenant batch simulation.
//!
//! One [`wfbb_simcore::Engine`] hosts the whole machine. Each admitted
//! job gets an exclusive *slice* of the platform (its nodes, its carved
//! share of the BB capacity) via [`wfbb_platform::PlatformInstance::slice`]
//! and is executed by the ordinary single-run
//! [`wfbb_wms::Executor`] on that slice — so stage-in/stage-out and
//! PFS/interconnect traffic of concurrent jobs contend *naturally*
//! inside the shared fluid engine, while compute and BB capacity are
//! partitioned by the scheduler. Burst-buffer capacity is a
//! reservation-pool resource ([`wfbb_storage::BbPool`]): granted at
//! admission, released at completion or failure, conserved across the
//! campaign.
//!
//! Scheduling decisions are delegated to the pure
//! [`crate::policy::plan_admissions`] at every arrival and completion
//! event; everything else here is deterministic bookkeeping (BTree
//! collections, job-order arrival spawns), so identical inputs produce
//! bitwise-identical [`CampaignReport`]s in both solve modes.
//!
//! ## Forking and plan-based scheduling
//!
//! The driver's state lives in [`CampaignSim`], which is *forkable*: the
//! shared engine is copied via [`wfbb_simcore::Engine::fork`], every
//! live executor is re-bound to the copy via [`wfbb_wms::Executor::fork`],
//! and the scheduler bookkeeping (queue, reservation ledger, records) is
//! cloned. A fork stepped forward produces bitwise-identical events to
//! the original — the foundation of the [`BatchPolicy::Plan`] policy,
//! which at each scheduling point plays candidate queue orderings
//! forward in speculative forks, scores them by projected mean bounded
//! slowdown, and commits the best (Kopanski & Rzadca, arXiv:2109.00082).
//! See `docs/snapshot.md` for the determinism contract and
//! `docs/scheduler.md` for the policy.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;
use std::time::Instant;

use crate::decisionlog::{DecisionLog, DecisionRecord, PlanCandidate, SchedProfile};
use crate::job::JobSpec;
use crate::policy::{plan_admissions, BatchPolicy, BlockReason, QueuedReq, RunningRes, Verdict};
use crate::report::{job_metrics, CampaignReport, JobOutcome, JobStatus, UtilSample};
use wfbb_platform::{BbArchitecture, PlatformInstance, PlatformSpec};
use wfbb_simcore::{Engine, FaultPlan, SolveMode, TelemetryConfig};
use wfbb_storage::{BbPool, StorageSystem};
use wfbb_wms::{Executor, FaultEvent, FaultSpec, JobTag, RetryPolicy, SchedulerPolicy, Tag};

/// Error from a campaign simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// The platform spec is invalid.
    Platform(String),
    /// The job list is empty.
    EmptyCampaign,
    /// The simulation engine failed.
    Engine(String),
    /// The campaign fault schedule is invalid (bad device index, or a
    /// fault kind campaigns do not support).
    Faults(String),
    /// The event queue drained with jobs still queued or running — a
    /// scheduler bug (unsatisfiable requests are rejected at submit).
    Stalled(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Platform(m) => write!(f, "invalid platform: {m}"),
            CampaignError::EmptyCampaign => write!(f, "campaign has no jobs"),
            CampaignError::Engine(m) => write!(f, "engine error: {m}"),
            CampaignError::Faults(m) => write!(f, "invalid campaign faults: {m}"),
            CampaignError::Stalled(m) => write!(f, "campaign stalled: {m}"),
        }
    }
}

impl std::error::Error for CampaignError {}

/// Default lookahead of the `plan` policy, seconds: speculative forks
/// stop once they pass this far beyond the scheduling point.
pub const DEFAULT_PLAN_HORIZON: f64 = 86_400.0;

/// Sentinel job id of campaign-scope fault events: completions tagged
/// with it are routed to the fault handler instead of a job's executor.
/// Real job ids are indices into the job list, so `u32::MAX` can never
/// collide.
const CAMPAIGN_FAULT_JOB: u32 = u32::MAX;

/// Cluster-level configuration of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The machine every job shares.
    pub platform: PlatformSpec,
    /// Human-readable platform label echoed into reports (`cori:striped`).
    pub platform_label: String,
    /// Admission/backfilling policy.
    pub policy: BatchPolicy,
    /// Fair-share solver mode of the shared engine.
    pub solve_mode: SolveMode,
    /// Engine telemetry sampling (off by default).
    pub telemetry: TelemetryConfig,
    /// Per-node concurrent-I/O cap forwarded to every executor.
    pub io_concurrency: Option<usize>,
    /// Task-to-node mapping policy inside each job's partition.
    pub node_scheduler: SchedulerPolicy,
    /// Lookahead of the `plan` policy's speculative forks, seconds past
    /// the scheduling point ([`DEFAULT_PLAN_HORIZON`] by default).
    /// Ignored by the other policies.
    pub plan_horizon: f64,
    /// Solver threads for the shared engine: `0` (the default) keeps the
    /// monolithic fair-share solve; `n ≥ 1` turns on the
    /// connected-component decomposition with `n` worker threads (see
    /// `wfbb_simcore::partition`). Results never depend on the thread
    /// count, only on whether partitioning is on at all — and then only
    /// by sub-`EPSILON` tolerance ties.
    pub solver_threads: usize,
    /// Collect the structured [`DecisionLog`] (off by default). Purely
    /// additive observability: the per-job wait decomposition is always
    /// accrued, and enabling the log leaves every [`CampaignReport`]
    /// byte-identical (pinned by `tests/decision_log.rs`).
    pub log_decisions: bool,
    /// Campaign-scope capacity faults (empty by default). Only capacity
    /// kinds are allowed — `bb:<i>@<t>` (device death: engine resources
    /// drop to zero, the reservation pool shrinks by the device's share,
    /// running executors fail over), `bb:<i>@<t>*<f>` / `pfs@<t>*<f>`
    /// (degradations), and `seed:` clauses. Task kills are per-job and
    /// are rejected here — put `kill=` on the job instead.
    pub faults: FaultSpec,
}

impl CampaignConfig {
    /// Default campaign config on `platform`: FCFS, incremental solver,
    /// no telemetry.
    pub fn new(platform: PlatformSpec) -> Self {
        let platform_label = platform.name.clone();
        CampaignConfig {
            platform,
            platform_label,
            policy: BatchPolicy::Fcfs,
            solve_mode: SolveMode::Incremental,
            telemetry: TelemetryConfig::default(),
            io_concurrency: None,
            node_scheduler: SchedulerPolicy::default(),
            plan_horizon: DEFAULT_PLAN_HORIZON,
            solver_threads: 0,
            log_decisions: false,
            faults: FaultSpec::new(),
        }
    }

    /// Sets the admission policy.
    pub fn with_policy(mut self, policy: BatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the solver mode.
    pub fn with_solve_mode(mut self, mode: SolveMode) -> Self {
        self.solve_mode = mode;
        self
    }

    /// Sets the report's platform label.
    pub fn with_platform_label(mut self, label: impl Into<String>) -> Self {
        self.platform_label = label.into();
        self
    }

    /// Sets the `plan` policy's lookahead horizon, seconds.
    pub fn with_plan_horizon(mut self, horizon: f64) -> Self {
        self.plan_horizon = horizon;
        self
    }

    /// Enables partitioned solving with `threads` worker threads (`0`
    /// restores the default monolithic solve).
    pub fn with_solver_threads(mut self, threads: usize) -> Self {
        self.solver_threads = threads;
        self
    }

    /// Enables (or disables) collection of the structured decision log.
    pub fn with_decision_log(mut self, on: bool) -> Self {
        self.log_decisions = on;
        self
    }

    /// Installs a campaign-scope fault schedule (capacity faults only;
    /// validated when the campaign is built).
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }
}

/// Which resource a queued job is currently classified as blocked on —
/// the accrual key of the wait decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockKind {
    Nodes,
    Bb,
    Reservation,
}

impl BlockKind {
    fn of(reason: &BlockReason) -> BlockKind {
        match reason {
            BlockReason::InsufficientNodes { .. } => BlockKind::Nodes,
            BlockReason::InsufficientBb { .. } => BlockKind::Bb,
            BlockReason::ReservationShadow { .. } => BlockKind::Reservation,
        }
    }
}

/// Per-job wait-decomposition accumulator. Every admission pass closes
/// the segment since `mark` against the previous classification and
/// re-marks, so the components telescope from arrival to start:
/// `blocked_on_nodes + blocked_on_bb + blocked_on_reservation == wait`
/// (exactly 0.0 each for jobs admitted in their arrival pass).
#[derive(Debug, Clone, Copy)]
struct WaitAcc {
    mark: f64,
    kind: Option<BlockKind>,
    nodes: f64,
    bb: f64,
    reservation: f64,
}

/// Bookkeeping for one running job.
#[derive(Debug, Clone)]
struct RunningJob {
    start: f64,
    walltime_est: f64,
    nodes: Vec<usize>,
    bb: f64,
}

/// Per-job record accumulated by the driver.
#[derive(Debug, Clone)]
struct JobRecord {
    status: JobStatus,
    start: f64,
    end: f64,
    reserved_start: Option<f64>,
    detail: Option<String>,
    report: Option<wfbb_wms::SimulationReport>,
}

/// Candidate queue orderings the `plan` policy evaluates. `Arrival`
/// (the untouched queue, i.e. plain BB-aware behavior) is always the
/// first candidate and wins ties, so `plan` never does worse than
/// `bb-aware` *in projection*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OrderRule {
    /// Queue order as-is (FIFO by submit time) — the BB-aware baseline.
    Arrival,
    /// Shortest walltime estimate first.
    ShortestFirst,
    /// Smallest BB request first.
    SmallestBbFirst,
    /// Largest BB request first (drain the big reservation early).
    LargestBbFirst,
    /// Fewest nodes first.
    FewestNodesFirst,
}

impl OrderRule {
    /// Stable label for plan-exploration records.
    fn label(&self) -> &'static str {
        match self {
            OrderRule::Arrival => "arrival",
            OrderRule::ShortestFirst => "shortest_first",
            OrderRule::SmallestBbFirst => "smallest_bb_first",
            OrderRule::LargestBbFirst => "largest_bb_first",
            OrderRule::FewestNodesFirst => "fewest_nodes_first",
        }
    }
}

const PLAN_RULES: [OrderRule; 5] = [
    OrderRule::Arrival,
    OrderRule::ShortestFirst,
    OrderRule::SmallestBbFirst,
    OrderRule::LargestBbFirst,
    OrderRule::FewestNodesFirst,
];

/// Why a request can never be satisfied on this machine, or `None`.
fn rejection_reason(spec: &JobSpec, platform: &PlatformSpec, pool_bytes: f64) -> Option<String> {
    if spec.nodes == 0 {
        return Some("requests 0 nodes".into());
    }
    if spec.nodes > platform.compute_nodes {
        return Some(format!(
            "requests {} nodes, machine has {}",
            spec.nodes, platform.compute_nodes
        ));
    }
    if !spec.bb_bytes.is_finite() || spec.bb_bytes < 0.0 {
        return Some(format!("invalid BB request {}", spec.bb_bytes));
    }
    if spec.bb_bytes > pool_bytes {
        return Some(format!(
            "requests {:.3e} B of BB, pool holds {:.3e} B",
            spec.bb_bytes, pool_bytes
        ));
    }
    if matches!(platform.bb, BbArchitecture::OnNode)
        && spec.bb_bytes > spec.nodes as f64 * platform.bb_capacity
    {
        return Some(format!(
            "on-node BB: {} nodes hold at most {:.3e} B",
            spec.nodes,
            spec.nodes as f64 * platform.bb_capacity
        ));
    }
    if !spec.walltime_est.is_finite() || spec.walltime_est <= 0.0 {
        return Some(format!(
            "walltime estimate must be > 0, got {}",
            spec.walltime_est
        ));
    }
    if !spec.submit.is_finite() || spec.submit < 0.0 {
        return Some(format!("invalid submit time {}", spec.submit));
    }
    for (task, time) in &spec.kills {
        if !spec.workflow.tasks().iter().any(|t| t.name == *task) {
            return Some(format!("kill targets unknown task {task:?}"));
        }
        if !time.is_finite() || *time < 0.0 {
            return Some(format!("invalid kill time {time}"));
        }
    }
    None
}

/// A stepwise, forkable campaign simulation.
///
/// [`run_campaign`] wraps the common drive-to-completion case; the
/// stepwise API exists for mid-campaign snapshotting and for the `plan`
/// policy's speculative rollouts:
///
/// * [`CampaignSim::step`] processes one engine event (an arrival, or a
///   completion routed to its job's executor) and re-plans admissions.
/// * [`CampaignSim::fork`] deep-copies the entire simulation — engine,
///   executors, scheduler bookkeeping — into an independent sim whose
///   subsequent events are bitwise identical to the original's.
/// * [`CampaignSim::finish`] closes the books and builds the report.
pub struct CampaignSim<'a> {
    config: &'a CampaignConfig,
    jobs: &'a [JobSpec],
    engine: Rc<RefCell<Engine<JobTag>>>,
    instance: PlatformInstance,
    total_nodes: usize,
    records: BTreeMap<u32, JobRecord>,
    pool: BbPool,
    free_nodes: BTreeSet<usize>,
    queue: Vec<u32>,
    running: BTreeMap<u32, RunningJob>,
    executors: BTreeMap<u32, Executor>,
    samples: Vec<UtilSample>,
    now: f64,
    /// Speculative rollouts of the `plan` policy replay upcoming
    /// arrivals but never re-plan (admissions fall back to BB-aware on
    /// the candidate order, later arrivals queue behind it), skip
    /// utilization sampling, and never emit decision records.
    speculative: bool,
    /// Per-job wait-decomposition accumulators, keyed by job id from
    /// arrival until the campaign ends (always accrued, log on or off).
    waits: BTreeMap<u32, WaitAcc>,
    /// Campaign-scope fault events resolved against the platform, in
    /// schedule order; sentinel delays tagged [`CAMPAIGN_FAULT_JOB`]
    /// index into this vector.
    fault_events: Vec<FaultEvent>,
    /// BB devices lost to campaign faults so far. Fresh executors are
    /// told about them at admission so placements avoid dead devices.
    dead_bb: BTreeSet<usize>,
    /// The structured decision log (drops pushes when disabled).
    log: DecisionLog,
    /// Host-side wall-clock profile of the scheduler loop.
    profile: SchedProfile,
    admitted_total: usize,
    finished_total: usize,
}

impl<'a> CampaignSim<'a> {
    /// Validates inputs, instantiates the platform into a fresh engine,
    /// screens submissions, and spawns arrival sentinels.
    pub fn new(config: &'a CampaignConfig, jobs: &'a [JobSpec]) -> Result<Self, CampaignError> {
        if jobs.is_empty() {
            return Err(CampaignError::EmptyCampaign);
        }
        config
            .platform
            .validate()
            .map_err(|e| CampaignError::Platform(e.to_string()))?;

        let mut engine = Engine::new();
        engine.set_solve_mode(config.solve_mode);
        engine.set_telemetry_config(config.telemetry.clone());
        if config.solver_threads > 0 {
            engine.set_partition(true);
            engine.set_solver_threads(config.solver_threads);
        }
        let instance = config.platform.instantiate(&mut engine);
        let total_nodes = instance.nodes();
        let bb_devices = instance.bb_devices();
        let pool_bytes = bb_devices as f64 * config.platform.bb_capacity;

        // Campaign-scope capacity faults: screen the schedule, merge the
        // engine-level capacity drops into the shared fault plan, and
        // spawn one sentinel per event so the scheduler can do its own
        // bookkeeping (pool shrink, executor failover) at fault time.
        let fault_events = if config.faults.is_empty() {
            Vec::new()
        } else {
            let resolved = config
                .faults
                .resolve(bb_devices)
                .map_err(|e| CampaignError::Faults(e.message))?;
            let mut plan = FaultPlan::new();
            for ev in &resolved {
                match *ev {
                    FaultEvent::TaskKill { ref task, .. } => {
                        return Err(CampaignError::Faults(format!(
                            "task kills are per-job, not campaign-scope: drop \
                             'task:{task}@...' from --faults and put \
                             kill={task}@<time> on the target job's workload \
                             line instead"
                        )));
                    }
                    FaultEvent::BbNodeDown { time, device } => {
                        if !matches!(config.platform.bb, BbArchitecture::Shared { .. }) {
                            return Err(CampaignError::Faults(format!(
                                "campaign BB faults need a shared burst buffer \
                                 (device {device} is not machine-wide on \
                                 platform '{}')",
                                config.platform.name
                            )));
                        }
                        for r in instance.bb_device_resources(device) {
                            plan.push_capacity(time, r, 0.0);
                        }
                    }
                    FaultEvent::BbDegraded {
                        time,
                        device,
                        factor,
                    } => {
                        if !matches!(config.platform.bb, BbArchitecture::Shared { .. }) {
                            return Err(CampaignError::Faults(format!(
                                "campaign BB faults need a shared burst buffer \
                                 (device {device} is not machine-wide on \
                                 platform '{}')",
                                config.platform.name
                            )));
                        }
                        for r in instance.bb_device_resources(device) {
                            let nominal = engine.resource(r).capacity;
                            plan.push_capacity(time, r, nominal * factor);
                        }
                    }
                    FaultEvent::PfsDegraded { time, factor } => {
                        for r in [instance.pfs_link, instance.pfs_disk] {
                            let nominal = engine.resource(r).capacity;
                            plan.push_capacity(time, r, nominal * factor);
                        }
                    }
                }
            }
            engine.merge_fault_plan(&plan);
            for (k, ev) in resolved.iter().enumerate() {
                engine.spawn_delay_labeled(
                    ev.time(),
                    JobTag {
                        job: CAMPAIGN_FAULT_JOB,
                        tag: Tag::External(k as u32),
                    },
                    Some(format!("fault:{}:{}", ev.kind(), ev.target())),
                );
            }
            resolved
        };
        let engine = Rc::new(RefCell::new(engine));

        let mut records: BTreeMap<u32, JobRecord> = BTreeMap::new();
        let mut log = DecisionLog::new(config.log_decisions, config.policy.label());

        // Submit-time screening + arrival sentinels, in job order
        // (ascending activity ids make same-instant arrivals
        // deterministic).
        for (j, spec) in jobs.iter().enumerate() {
            let j = j as u32;
            if let Some(reason) = rejection_reason(spec, &config.platform, pool_bytes) {
                log.push(DecisionRecord::Rejected {
                    job: j,
                    reason: reason.clone(),
                });
                records.insert(
                    j,
                    JobRecord {
                        status: JobStatus::Rejected,
                        start: 0.0,
                        end: 0.0,
                        reserved_start: None,
                        detail: Some(reason),
                        report: None,
                    },
                );
                continue;
            }
            engine.borrow_mut().spawn_delay_labeled(
                spec.submit,
                JobTag {
                    job: j,
                    tag: Tag::External(j),
                },
                Some(format!("arrival:{}", spec.name)),
            );
        }

        Ok(CampaignSim {
            config,
            jobs,
            engine,
            instance,
            total_nodes,
            records,
            pool: BbPool::new(pool_bytes),
            free_nodes: (0..total_nodes).collect(),
            queue: Vec::new(),
            running: BTreeMap::new(),
            executors: BTreeMap::new(),
            samples: Vec::new(),
            now: 0.0,
            speculative: false,
            waits: BTreeMap::new(),
            fault_events,
            dead_bb: BTreeSet::new(),
            log,
            profile: SchedProfile::default(),
            admitted_total: 0,
            finished_total: 0,
        })
    }

    /// Current simulated time, seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Jobs currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Jobs currently executing.
    pub fn running_jobs(&self) -> usize {
        self.running.len()
    }

    /// Jobs admitted so far (head or backfill).
    pub fn jobs_admitted(&self) -> usize {
        self.admitted_total
    }

    /// Jobs that finished (completed or failed) so far.
    pub fn jobs_finished(&self) -> usize {
        self.finished_total
    }

    /// The decision log collected so far (empty unless
    /// [`CampaignConfig::log_decisions`] is set).
    pub fn decision_log(&self) -> &DecisionLog {
        &self.log
    }

    /// Host-side wall-clock profile of the scheduler loop so far.
    pub fn profile(&self) -> SchedProfile {
        self.profile
    }

    /// A copy of the decision log with the engine counters stamped for
    /// the JSONL `counters` line — the exportable form.
    pub fn export_decision_log(&self) -> DecisionLog {
        let mut log = self.log.clone();
        log.set_counters(self.counters());
        log
    }

    /// Cumulative counters of the shared engine (solves, events, component
    /// decomposition stats, ...). Useful for sizing campaigns in benchmarks
    /// and for the `parallel_scaling` experiment; see docs/performance.md.
    pub fn counters(&self) -> wfbb_simcore::EngineCounters {
        *self.engine.borrow().counters()
    }

    /// Deep-copies the whole simulation into an independent sim.
    ///
    /// The shared engine is forked ([`Engine::fork`]), every live
    /// executor is re-bound to the fork ([`Executor::fork`]), and the
    /// scheduler bookkeeping is cloned. Stepping the fork and the
    /// original identically produces bitwise-identical reports.
    pub fn fork(&self) -> CampaignSim<'a> {
        let engine = Rc::new(RefCell::new(self.engine.borrow().fork()));
        let executors = self
            .executors
            .iter()
            .map(|(&j, ex)| (j, ex.fork(engine.clone())))
            .collect();
        CampaignSim {
            config: self.config,
            jobs: self.jobs,
            engine,
            instance: self.instance.clone(),
            total_nodes: self.total_nodes,
            records: self.records.clone(),
            pool: self.pool.clone(),
            free_nodes: self.free_nodes.clone(),
            queue: self.queue.clone(),
            running: self.running.clone(),
            executors,
            samples: self.samples.clone(),
            now: self.now,
            speculative: self.speculative,
            waits: self.waits.clone(),
            fault_events: self.fault_events.clone(),
            dead_bb: self.dead_bb.clone(),
            log: self.log.clone(),
            profile: self.profile,
            admitted_total: self.admitted_total,
            finished_total: self.finished_total,
        }
    }

    fn sample(&mut self) {
        if self.speculative {
            return;
        }
        self.samples.push(UtilSample {
            time: self.now,
            running_jobs: self.running.len(),
            busy_nodes: self.total_nodes - self.free_nodes.len(),
            bb_reserved: self.pool.capacity() - self.pool.free(),
            queue_depth: self.queue.len(),
        });
    }

    /// Processes one engine event. Returns `Ok(false)` once the engine
    /// has drained (no more events).
    pub fn step(&mut self) -> Result<bool, CampaignError> {
        let t_solve = Instant::now();
        let step = self.engine.borrow_mut().try_step();
        self.profile.solve_ns += t_solve.elapsed().as_nanos() as u64;
        let completion = match step {
            Err(e) => return Err(CampaignError::Engine(format!("{e:?}"))),
            Ok(None) => return Ok(false),
            Ok(Some(c)) => c,
        };
        if !self.speculative {
            self.profile.events += 1;
        }
        self.now = completion.time.seconds();
        let JobTag { job, tag } = completion.tag;
        if job == CAMPAIGN_FAULT_JOB {
            if let Tag::External(k) = tag {
                self.on_campaign_fault(k as usize);
            }
            return Ok(true);
        }
        match tag {
            Tag::External(_) => {
                // Arrivals replay inside speculative rollouts too: a
                // campaign's submission schedule is part of the workload,
                // so lookahead may account for jobs that will arrive
                // during the plan window (they join the queue *behind*
                // the candidate order being evaluated). Without this the
                // rollouts over-commit to reorderings that only pay off
                // if nothing else shows up.
                self.waits.entry(job).or_insert(WaitAcc {
                    mark: self.now,
                    kind: None,
                    nodes: 0.0,
                    bb: 0.0,
                    reservation: 0.0,
                });
                self.queue.push(job);
                self.sample();
                self.try_admit();
                self.sample();
            }
            tag => {
                // Stale completions of finished/aborted jobs are dropped.
                let Some(ex) = self.executors.get_mut(&job) else {
                    return Ok(true);
                };
                let outcome = match ex.on_completion(completion.id, tag) {
                    Ok(()) if ex.is_complete() => {
                        // Build the job's report *now*, while engine time
                        // is its final completion instant (so its
                        // makespan matches a single run).
                        Some((JobStatus::Completed, None, Some(ex.report())))
                    }
                    Ok(()) => None,
                    Err(e) => {
                        ex.abort();
                        Some((JobStatus::Failed, Some(e.to_string()), None))
                    }
                };
                let Some((status, detail, report)) = outcome else {
                    return Ok(true);
                };
                self.executors.remove(&job);
                let run = self.running.remove(&job).expect("finished job was running");
                let released_bb = run.bb;
                for n in run.nodes {
                    self.free_nodes.insert(n);
                }
                self.pool.release(job);
                self.finished_total += 1;
                if !self.speculative {
                    self.log.push(DecisionRecord::PoolRelease {
                        time: self.now,
                        job,
                        bytes: released_bb,
                        free_after: self.pool.free(),
                    });
                }
                let rec = self
                    .records
                    .get_mut(&job)
                    .expect("finished job has a record");
                rec.status = status;
                rec.end = self.now;
                rec.detail = detail;
                rec.report = report;
                self.sample();
                self.try_admit();
                self.sample();
            }
        }
        Ok(true)
    }

    /// Handles one campaign-scope fault sentinel. The engine-level
    /// capacity drop already happened (the merged fault plan applies
    /// before same-instant completions); this is the *scheduler's* share
    /// of the blast radius.
    fn on_campaign_fault(&mut self, k: usize) {
        match self.fault_events[k].clone() {
            FaultEvent::BbNodeDown { device, .. } => {
                if !self.dead_bb.insert(device) {
                    return; // duplicate event for an already-dead device
                }
                // The machine lost one device's worth of reservable
                // capacity: free bytes absorb the loss first, then
                // running jobs' grants are clawed back in ascending
                // job order (ledger conservation holds throughout).
                let lost = self.config.platform.bb_capacity;
                let clawed = self.pool.shrink(lost);
                let mut clawed_total = 0.0;
                for &(job, bytes) in &clawed {
                    clawed_total += bytes;
                    if let Some(run) = self.running.get_mut(&job) {
                        run.bb -= bytes;
                    }
                }
                if !self.speculative {
                    self.log.push(DecisionRecord::PoolShrink {
                        time: self.now,
                        device,
                        bytes: lost,
                        clawed: clawed_total,
                        free_after: self.pool.free(),
                    });
                }
                // Every running executor fails over: in-flight transfers
                // crossing the device are cancelled, its files re-sourced
                // from the PFS, and future placements avoid it.
                for ex in self.executors.values_mut() {
                    ex.bb_node_down(device, self.now);
                }
                self.sample();
                self.try_admit();
                self.sample();
            }
            // Degradations change bandwidth, not capacity: the merged
            // fault plan already re-solved the fair share, and nothing
            // in the scheduler's ledger moves.
            FaultEvent::BbDegraded { .. } | FaultEvent::PfsDegraded { .. } => {}
            FaultEvent::TaskKill { .. } => {
                unreachable!("task kills are screened out at campaign construction")
            }
        }
    }

    /// Rejects queued jobs whose BB request no longer fits the shrunk
    /// pool. Without this sweep they would sit blocked forever and turn
    /// the drained event queue into a [`CampaignError::Stalled`].
    fn sweep_unsatisfiable(&mut self) {
        let cap = self.pool.capacity();
        let doomed: Vec<u32> = self
            .queue
            .iter()
            .copied()
            .filter(|&j| self.jobs[j as usize].bb_bytes > cap)
            .collect();
        for job in doomed {
            self.queue.retain(|&q| q != job);
            self.waits.remove(&job);
            let reason = format!(
                "requests {:.3e} B of BB, pool shrank to {:.3e} B after device failure",
                self.jobs[job as usize].bb_bytes, cap
            );
            if !self.speculative {
                self.log.push(DecisionRecord::Rejected {
                    job,
                    reason: reason.clone(),
                });
            }
            self.records.insert(
                job,
                JobRecord {
                    status: JobStatus::Rejected,
                    start: 0.0,
                    end: 0.0,
                    reserved_start: None,
                    detail: Some(reason),
                    report: None,
                },
            );
        }
    }

    /// Admission pass: ask the policy, start what it admits. Under
    /// [`BatchPolicy::Plan`] this first commits the best queue ordering
    /// found by speculative rollouts, then admits BB-aware on it.
    fn try_admit(&mut self) {
        if !self.dead_bb.is_empty() {
            self.sweep_unsatisfiable();
        }
        if self.queue.is_empty() {
            return;
        }
        self.profile.admission_passes += 1;
        // Speculative rollouts never re-plan: they inherit the candidate
        // ordering they were forked with and admit BB-aware on it.
        let mut policy = self.config.policy;
        if policy == BatchPolicy::Plan {
            if !self.speculative && self.queue.len() >= 2 {
                let t_plan = Instant::now();
                self.plan_queue_order();
                self.profile.plan_ns += t_plan.elapsed().as_nanos() as u64;
            }
            policy = BatchPolicy::BbAware;
        }
        let t_admit = Instant::now();
        let reqs: Vec<QueuedReq> = self
            .queue
            .iter()
            .map(|&j| {
                let s = &self.jobs[j as usize];
                QueuedReq {
                    job: j,
                    nodes: s.nodes,
                    bb: s.bb_bytes,
                    est: s.walltime_est,
                }
            })
            .collect();
        let holds: Vec<RunningRes> = self
            .running
            .values()
            .map(|r| RunningRes {
                end_est: r.start + r.walltime_est,
                nodes: r.nodes.len(),
                bb: r.bb,
            })
            .collect();
        let adm = plan_admissions(
            policy,
            self.now,
            self.free_nodes.len(),
            self.pool.free(),
            &reqs,
            &holds,
        );
        if let Some((job, shadow)) = adm.head_reservation {
            // Record only the first promise: later re-plans may move the
            // reservation, but the invariant we expose is "EASY never
            // starts the head later than it first promised" (assuming
            // conservative estimates).
            if let Some(rec) = self.records.get_mut(&job) {
                if rec.reserved_start.is_none() {
                    rec.reserved_start = Some(shadow);
                }
            } else {
                self.records.insert(
                    job,
                    JobRecord {
                        status: JobStatus::Failed, // placeholder; overwritten at start
                        start: 0.0,
                        end: 0.0,
                        reserved_start: Some(shadow),
                        detail: None,
                        report: None,
                    },
                );
            }
        }
        self.profile.admit_ns += t_admit.elapsed().as_nanos() as u64;

        // Wait-decomposition accrual + transition-gated decision records.
        // Each pass closes every queued job's open segment against its
        // previous classification (telescoping from arrival to start),
        // then re-classifies; a `Blocked` record is emitted only when the
        // blocking resource changes.
        let t_log = Instant::now();
        for d in &adm.decisions {
            let Some(acc) = self.waits.get_mut(&d.job) else {
                continue;
            };
            let dt = self.now - acc.mark;
            if dt > 0.0 {
                match acc.kind {
                    Some(BlockKind::Nodes) => acc.nodes += dt,
                    Some(BlockKind::Bb) => acc.bb += dt,
                    Some(BlockKind::Reservation) => acc.reservation += dt,
                    None => {}
                }
            }
            acc.mark = self.now;
            match &d.verdict {
                Verdict::Admit(kind) => {
                    acc.kind = None;
                    if !self.speculative {
                        self.log.push(DecisionRecord::Admitted {
                            time: self.now,
                            job: d.job,
                            kind: *kind,
                        });
                    }
                }
                Verdict::Blocked(reason) => {
                    let kind = BlockKind::of(reason);
                    if acc.kind != Some(kind) && !self.speculative {
                        self.log.push(DecisionRecord::Blocked {
                            time: self.now,
                            job: d.job,
                            reason: *reason,
                        });
                    }
                    acc.kind = Some(kind);
                }
            }
        }
        self.profile.log_ns += t_log.elapsed().as_nanos() as u64;

        let t_start = Instant::now();
        for job in adm.start {
            self.admit(job);
        }
        self.profile.admit_ns += t_start.elapsed().as_nanos() as u64;
    }

    /// Starts one admitted job: carves its platform slice, reserves BB,
    /// builds its executor, and records the start.
    fn admit(&mut self, job: u32) {
        let spec = &self.jobs[job as usize];
        self.queue.retain(|&q| q != job);
        let node_ids: Vec<usize> = self.free_nodes.iter().copied().take(spec.nodes).collect();
        assert_eq!(
            node_ids.len(),
            spec.nodes,
            "policy admitted past free nodes"
        );
        for n in &node_ids {
            self.free_nodes.remove(n);
        }
        assert!(
            self.pool.try_reserve(job, spec.bb_bytes),
            "policy admitted past free BB"
        );
        self.admitted_total += 1;
        if !self.speculative {
            self.log.push(DecisionRecord::PoolReserve {
                time: self.now,
                job,
                bytes: spec.bb_bytes,
                free_after: self.pool.free(),
            });
        }
        let view_devices = match self.config.platform.bb {
            BbArchitecture::Shared { bb_nodes, .. } => bb_nodes,
            BbArchitecture::OnNode => node_ids.len(),
            BbArchitecture::None => 0,
        };
        let per_dev = if view_devices > 0 {
            spec.bb_bytes / view_devices as f64
        } else {
            0.0
        };
        let view = self.instance.slice(&node_ids, per_dev);
        let mut storage = StorageSystem::new(view);
        // Shared-BB device indices are machine-global, so the slice view
        // keeps them aligned: mark devices lost to earlier campaign
        // faults dead so the fresh executor's placements avoid them.
        for &d in &self.dead_bb {
            storage.mark_bb_dead(d);
        }
        let plan = spec.placement.plan(&spec.workflow);
        let mut ex = Executor::shared(
            self.engine.clone(),
            job,
            storage,
            spec.workflow.clone(),
            plan,
            self.config.io_concurrency,
            self.config.node_scheduler,
        );
        if !spec.kills.is_empty() {
            let events: Vec<FaultEvent> = spec
                .kills
                .iter()
                .map(|(task, time)| FaultEvent::TaskKill {
                    time: *time,
                    task: task.clone(),
                })
                .collect();
            ex.set_fault_injection(
                events,
                RetryPolicy {
                    max_attempts: spec.max_attempts,
                    backoff: 0.0,
                },
            );
        }
        if let Some(policy) = spec.checkpoint {
            ex.set_checkpoint_policy(policy);
        }
        let reserved = self.records.get(&job).and_then(|r| r.reserved_start);
        self.records.insert(
            job,
            JobRecord {
                status: JobStatus::Failed, // overwritten when it finishes
                start: self.now,
                end: self.now,
                reserved_start: reserved,
                detail: None,
                report: None,
            },
        );
        self.running.insert(
            job,
            RunningJob {
                start: self.now,
                walltime_est: spec.walltime_est,
                nodes: node_ids,
                bb: spec.bb_bytes,
            },
        );
        ex.start();
        self.executors.insert(job, ex);
    }

    /// The `plan` policy's ordering search: fork the sim per candidate
    /// rule, roll each fork forward (BB-aware on the candidate order,
    /// upcoming arrivals replayed) until the campaign drains or the
    /// horizon passes, score by projected mean bounded slowdown over
    /// every job the rollout saw, and commit the best ordering to the
    /// real queue. The arrival order is always a candidate and wins
    /// ties, so `plan` degenerates to `bb-aware` when lookahead finds
    /// nothing better.
    fn plan_queue_order(&mut self) {
        let horizon_end = self.now + self.config.plan_horizon;
        let mut best: Option<(f64, Vec<u32>, &'static str)> = None;
        let mut seen: Vec<Vec<u32>> = Vec::new();
        let mut candidates: Vec<PlanCandidate> = Vec::new();
        for rule in PLAN_RULES {
            let order = self.ordered_queue(rule);
            if seen.contains(&order) {
                continue; // identical ordering already scored
            }
            seen.push(order.clone());
            let mut rollout = self.fork();
            rollout.speculative = true;
            rollout.samples.clear();
            // Rollouts never log; drop the inherited records so each of
            // the (up to) five forks doesn't clone a growing log.
            rollout.log = DecisionLog::new(false, "");
            rollout.queue = order.clone();
            self.profile.plan_forks += 1;
            if rollout.run_rollout(horizon_end).is_err() {
                // A rollout that errors (it explores states the real run
                // may never reach) simply drops out of the candidate set.
                continue;
            }
            let score = rollout.projected_bounded_slowdown();
            if self.log.enabled() {
                candidates.push(PlanCandidate {
                    rule: rule.label(),
                    order: order.clone(),
                    score,
                });
            }
            let better = match &best {
                None => true,
                Some((b, _, _)) => score < b - 1e-12,
            };
            if better {
                best = Some((score, order, rule.label()));
            }
        }
        if let Some((_, order, winner)) = best {
            self.profile.plan_choices += 1;
            self.log.push(DecisionRecord::PlanChoice {
                time: self.now,
                winner,
                candidates,
            });
            self.queue = order;
        }
    }

    /// The queue reordered by `rule` (stable: ties keep arrival order).
    fn ordered_queue(&self, rule: OrderRule) -> Vec<u32> {
        let mut order = self.queue.clone();
        let spec = |j: u32| &self.jobs[j as usize];
        match rule {
            OrderRule::Arrival => {}
            OrderRule::ShortestFirst => {
                order.sort_by(|&a, &b| spec(a).walltime_est.total_cmp(&spec(b).walltime_est));
            }
            OrderRule::SmallestBbFirst => {
                order.sort_by(|&a, &b| spec(a).bb_bytes.total_cmp(&spec(b).bb_bytes));
            }
            OrderRule::LargestBbFirst => {
                order.sort_by(|&a, &b| spec(b).bb_bytes.total_cmp(&spec(a).bb_bytes));
            }
            OrderRule::FewestNodesFirst => {
                order.sort_by_key(|&a| spec(a).nodes);
            }
        }
        order
    }

    /// Drives a speculative fork: admit on the candidate order, then
    /// step (replaying upcoming arrivals) until the campaign drains or
    /// the horizon passes.
    fn run_rollout(&mut self, t_end: f64) -> Result<(), CampaignError> {
        self.try_admit();
        loop {
            if self.now > t_end || !self.step()? {
                return Ok(());
            }
        }
    }

    /// Projected mean bounded slowdown over every job that has entered
    /// the system and was not rejected: finished jobs contribute their
    /// realized metric; running jobs are projected to end at
    /// `max(now, start + estimate)`; still-queued jobs are charged as if
    /// starting now. Arrivals are time-driven, so competing rollouts cut
    /// off at the same horizon score the identical job set; jobs that
    /// finished before the planning instant add the same constant to
    /// every candidate and never tip a comparison.
    fn projected_bounded_slowdown(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for &j in &self.queue {
            let spec = &self.jobs[j as usize];
            sum += job_metrics(spec.submit, self.now, self.now + spec.walltime_est).3;
            n += 1;
        }
        for (&j, run) in &self.running {
            let spec = &self.jobs[j as usize];
            let end = self.now.max(run.start + run.walltime_est);
            sum += job_metrics(spec.submit, run.start, end).3;
            n += 1;
        }
        for (&j, rec) in &self.records {
            if rec.status == JobStatus::Rejected {
                continue;
            }
            let spec = &self.jobs[j as usize];
            sum += job_metrics(spec.submit, rec.start, rec.end).3;
            n += 1;
        }
        if n == 0 {
            return 1.0;
        }
        sum / n as f64
    }

    /// Closes the books after the engine drained and builds the report.
    pub fn finish(mut self) -> Result<CampaignReport, CampaignError> {
        if !self.queue.is_empty() || !self.executors.is_empty() {
            return Err(CampaignError::Stalled(format!(
                "{} queued, {} running after the event queue drained",
                self.queue.len(),
                self.executors.len()
            )));
        }

        let outcomes: Vec<JobOutcome> = self
            .jobs
            .iter()
            .enumerate()
            .map(|(j, spec)| {
                let j = j as u32;
                let rec = self.records.remove(&j).unwrap_or(JobRecord {
                    status: JobStatus::Rejected,
                    start: 0.0,
                    end: 0.0,
                    reserved_start: None,
                    detail: Some("never scheduled".into()),
                    report: None,
                });
                let (wait, run, stretch, bounded_slowdown) = if rec.status == JobStatus::Rejected {
                    (0.0, 0.0, 1.0, 1.0)
                } else {
                    job_metrics(spec.submit, rec.start, rec.end)
                };
                let acc = if rec.status == JobStatus::Rejected {
                    None
                } else {
                    self.waits.get(&j).copied()
                };
                JobOutcome {
                    job: j,
                    name: spec.name.clone(),
                    workflow: spec.workflow_spec.clone(),
                    submit: spec.submit,
                    nodes: spec.nodes,
                    bb_request: spec.bb_bytes,
                    walltime_est: spec.walltime_est,
                    status: rec.status,
                    start: rec.start,
                    end: rec.end,
                    wait,
                    run,
                    stretch,
                    bounded_slowdown,
                    blocked_on_nodes: acc.map_or(0.0, |a| a.nodes),
                    blocked_on_bb: acc.map_or(0.0, |a| a.bb),
                    blocked_on_reservation: acc.map_or(0.0, |a| a.reservation),
                    reserved_start: rec.reserved_start,
                    detail: rec.detail,
                    report: rec.report,
                }
            })
            .collect();

        let mut report = CampaignReport {
            policy: self.config.policy,
            platform: self.config.platform_label.clone(),
            total_nodes: self.total_nodes,
            bb_pool_bytes: self.pool.capacity(),
            jobs: outcomes,
            makespan: 0.0,
            mean_wait: 0.0,
            max_wait: 0.0,
            mean_stretch: 0.0,
            mean_bounded_slowdown: 0.0,
            jobs_ran: 0,
            node_utilization: 0.0,
            bb_utilization: 0.0,
            utilization: self.samples,
            bb_pool_free_end: self.pool.free(),
            blocked_on_nodes_total: 0.0,
            blocked_on_bb_total: 0.0,
            blocked_on_reservation_total: 0.0,
            counters: *self.engine.borrow().counters(),
        };
        report.finalize();
        Ok(report)
    }
}

/// Runs a campaign of `jobs` (in submission order — sort by submit time
/// first, ties broken by position) on one shared engine and returns the
/// campaign report.
pub fn run_campaign(
    config: &CampaignConfig,
    jobs: &[JobSpec],
) -> Result<CampaignReport, CampaignError> {
    let mut sim = CampaignSim::new(config, jobs)?;
    while sim.step()? {}
    sim.finish()
}

/// A finished campaign plus its observability artifacts: the report,
/// the decision log (counters stamped, ready for
/// [`DecisionLog::to_jsonl`]), and the host-side scheduler profile.
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// The campaign report (byte-identical to a [`run_campaign`] of the
    /// same config — the log never perturbs results).
    pub report: CampaignReport,
    /// The structured decision log (empty records unless
    /// [`CampaignConfig::log_decisions`] was set).
    pub log: DecisionLog,
    /// Wall-clock spent in solve / admission / plan search / logging.
    pub profile: SchedProfile,
}

/// Like [`run_campaign`], but also returns the decision log and the
/// scheduler profile.
pub fn run_campaign_logged(
    config: &CampaignConfig,
    jobs: &[JobSpec],
) -> Result<CampaignRun, CampaignError> {
    let mut sim = CampaignSim::new(config, jobs)?;
    while sim.step()? {}
    let log = sim.export_decision_log();
    let profile = sim.profile();
    let report = sim.finish()?;
    Ok(CampaignRun {
        report,
        log,
        profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::build_workflow;
    use wfbb_platform::presets;
    use wfbb_platform::BbMode;

    fn job(name: &str, submit: f64, spec: &str, nodes: usize, bb: f64, est: f64) -> JobSpec {
        JobSpec::new(
            name,
            submit,
            spec,
            build_workflow(spec).unwrap(),
            nodes,
            bb,
            est,
        )
    }

    fn config(policy: BatchPolicy) -> CampaignConfig {
        CampaignConfig::new(presets::cori(4, BbMode::Striped))
            .with_policy(policy)
            .with_platform_label("cori:striped")
    }

    #[test]
    fn solo_campaign_completes_and_conserves_the_pool() {
        let jobs = vec![job("solo", 0.0, "swarp:1:8", 1, 2e9, 600.0)];
        let report = run_campaign(&config(BatchPolicy::Fcfs), &jobs).unwrap();
        assert_eq!(report.jobs.len(), 1);
        assert_eq!(report.jobs[0].status, JobStatus::Completed);
        assert_eq!(report.jobs[0].wait, 0.0);
        assert!(report.jobs[0].run > 0.0);
        assert_eq!(report.bb_pool_free_end, report.bb_pool_bytes);
        assert!(report.jobs[0].report.is_some());
    }

    #[test]
    fn oversized_requests_are_rejected_not_deadlocked() {
        let jobs = vec![
            job("huge-nodes", 0.0, "swarp:1:8", 99, 1e9, 600.0),
            job("huge-bb", 0.0, "swarp:1:8", 1, 1e18, 600.0),
            job("ok", 0.0, "swarp:1:8", 1, 1e9, 600.0),
        ];
        let report = run_campaign(&config(BatchPolicy::EasyBackfill), &jobs).unwrap();
        assert_eq!(report.jobs[0].status, JobStatus::Rejected);
        assert_eq!(report.jobs[1].status, JobStatus::Rejected);
        assert_eq!(report.jobs[2].status, JobStatus::Completed);
    }

    #[test]
    fn fcfs_serializes_contending_jobs() {
        // Two jobs that each want the whole machine: the second must
        // wait for the first.
        let jobs = vec![
            job("a", 0.0, "swarp:1:8", 4, 1e9, 600.0),
            job("b", 0.0, "swarp:1:8", 4, 1e9, 600.0),
        ];
        let report = run_campaign(&config(BatchPolicy::Fcfs), &jobs).unwrap();
        let (a, b) = (&report.jobs[0], &report.jobs[1]);
        assert_eq!(a.status, JobStatus::Completed);
        assert_eq!(b.status, JobStatus::Completed);
        assert_eq!(a.wait, 0.0);
        assert!(b.start >= a.end - 1e-9, "b must wait for a");
        assert!(b.stretch > 1.0);
    }

    #[test]
    fn kill_faults_release_the_reservation() {
        // A job whose task is killed more times than its retry budget
        // fails — and must still release nodes and BB. Run the job solo
        // first to find a time resample_0 is guaranteed to be computing.
        let probe = vec![job("victim", 0.0, "swarp:1:8", 2, 4e9, 600.0)];
        let solo = run_campaign(&config(BatchPolicy::Fcfs), &probe).unwrap();
        let rep = solo.jobs[0].report.as_ref().unwrap();
        let t = rep.task_by_name("resample_0").unwrap();
        let kill_time = 0.5 * (t.read_end.seconds() + t.compute_end.seconds());
        let mut victim = job("victim", 0.0, "swarp:1:8", 2, 4e9, 600.0).with_max_attempts(1);
        victim.kills.push(("resample_0".into(), kill_time));
        let jobs = vec![victim, job("after", 1.0, "swarp:1:8", 4, 1e9, 600.0)];
        let report = run_campaign(&config(BatchPolicy::Fcfs), &jobs).unwrap();
        assert_eq!(report.jobs[0].status, JobStatus::Failed);
        assert_eq!(report.jobs[1].status, JobStatus::Completed);
        assert_eq!(report.bb_pool_free_end, report.bb_pool_bytes);
    }

    #[test]
    fn identical_seed_reports_are_bitwise_equal_across_solve_modes() {
        let jobs: Vec<JobSpec> = crate::workload::synthetic_jobs(
            11,
            &crate::workload::SyntheticConfig {
                jobs: 6,
                mean_interarrival: 60.0,
                bb_request_scale: 1.0,
                max_nodes: 2,
            },
        )
        .unwrap();
        let a = run_campaign(&config(BatchPolicy::BbAware), &jobs).unwrap();
        let b = run_campaign(&config(BatchPolicy::BbAware), &jobs).unwrap();
        assert_eq!(a.to_json(), b.to_json());
        let c = run_campaign(
            &config(BatchPolicy::BbAware).with_solve_mode(SolveMode::Naive),
            &jobs,
        )
        .unwrap();
        for (x, y) in a.jobs.iter().zip(&c.jobs) {
            assert!(
                (x.end - y.end).abs() < 1e-6,
                "{}: {} vs {}",
                x.name,
                x.end,
                y.end
            );
        }
    }

    #[test]
    fn mid_campaign_fork_matches_the_original_bitwise() {
        let jobs: Vec<JobSpec> = crate::workload::synthetic_jobs(
            7,
            &crate::workload::SyntheticConfig {
                jobs: 5,
                mean_interarrival: 30.0,
                bb_request_scale: 1.0,
                max_nodes: 2,
            },
        )
        .unwrap();
        let cfg = config(BatchPolicy::BbAware);
        let mut sim = CampaignSim::new(&cfg, &jobs).unwrap();
        // Step partway in, fork, then drive both to completion.
        for _ in 0..25 {
            if !sim.step().unwrap() {
                break;
            }
        }
        let mut forked = sim.fork();
        while sim.step().unwrap() {}
        while forked.step().unwrap() {}
        let a = sim.finish().unwrap();
        let b = forked.finish().unwrap();
        assert_eq!(a.to_json(), b.to_json(), "fork must replay bitwise");
    }

    #[test]
    fn plan_policy_completes_and_conserves_the_pool() {
        let jobs: Vec<JobSpec> = crate::workload::synthetic_jobs(
            3,
            &crate::workload::SyntheticConfig {
                jobs: 6,
                mean_interarrival: 20.0,
                bb_request_scale: 1.5,
                max_nodes: 2,
            },
        )
        .unwrap();
        let report = run_campaign(&config(BatchPolicy::Plan), &jobs).unwrap();
        assert!(report.jobs.iter().all(|j| j.status == JobStatus::Completed));
        assert_eq!(report.bb_pool_free_end, report.bb_pool_bytes);
    }
}
