//! # wfbb-wms — the simulated workflow management system
//!
//! Executes a workflow DAG on a platform through the fluid simulation
//! engine, following the paper's execution model:
//!
//! 1. **Stage-in** — the entry phase (the `S_in` task of Figure 2): input
//!    files assigned to the burst buffer are copied, *sequentially* (as in
//!    the paper's experiments), from the staging source into the BB;
//!    remaining inputs stay on the PFS. All tasks wait for stage-in.
//! 2. **Task lifecycle** — a ready task scheduled on a node reads its
//!    inputs (metadata phase, then data flows; at most `cores` files in
//!    flight, which is how added cores shorten latency-bound I/O), computes
//!    (Amdahl's Law on the node's CPU pool — time-shared if the node is
//!    oversubscribed), and writes its outputs to the tier chosen by the
//!    placement policy, registering their locations for consumers.
//! 3. **Makespan** — the date of the last completion event, exactly as the
//!    paper defines it.
//!
//! The main entry point is [`SimulationBuilder`]; results come back as a
//! [`SimulationReport`] with per-task records, per-category aggregates, and
//! achieved-bandwidth accounting (the paper's Figure 9).
//!
//! For observability beyond the report scalars, enable engine telemetry
//! with [`SimulationBuilder::telemetry`] and export the run through
//! [`crate::traceexport`] as line-delimited JSONL or a Perfetto/Chrome
//! trace (`docs/trace-format.md` documents both schemas). To answer
//! "why is this workflow slow", [`SimulationReport::explain`]
//! ([`crate::explain`]) ranks contention hotspots, decomposes the
//! executed critical path, and compares achieved to nominal tier
//! bandwidth — all from always-on engine contention accounting.

#![deny(missing_docs)]

pub mod builder;
pub mod dynamic;
pub mod executor;
pub mod explain;
pub mod fault;
pub mod gantt;
pub mod report;
pub mod traceexport;

pub use builder::{SimulationBuilder, SimulationError};
pub use dynamic::{DynamicPlacer, PlacementContext};
pub use executor::{Executor, ExecutorError, JobTag, SchedulerPolicy, Tag};
pub use explain::{Explanation, Hotspot, PathComposition, TierBandwidth};
pub use fault::{FaultEvent, FaultSpec, FaultSpecError, RetryPolicy};
pub use report::{
    CategoryStats, CriticalStep, CriticalStepKind, FaultRecord, ResourceContention,
    SimulationReport, StageSpan, TaskRecord,
};
pub use traceexport::TRACE_SCHEMA_VERSION;
pub use wfbb_resilience::{young_interval, CheckpointPolicy, CheckpointSpecError, CheckpointTier};
pub use wfbb_simcore::{EngineCounters, TelemetryConfig, TelemetrySnapshot};
