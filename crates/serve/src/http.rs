//! A vendored-minimal HTTP/1.1 layer over [`std::net::TcpStream`].
//!
//! The service deliberately depends on nothing outside `std` (matching
//! the repo's no-external-deps style), so this module implements the
//! small slice of HTTP/1.1 the API needs: request-line + header
//! parsing with a bounded `Content-Length` body, fixed-length
//! responses, and chunked transfer encoding for progress streams.
//! Connections are `Connection: close` — one request per connection —
//! which keeps the connection handler a straight-line function.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line plus headers, bytes. Requests are
/// small JSON documents; anything larger is malformed or abusive.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercased as received.
    pub method: String,
    /// Request path, percent-decoding deliberately not applied (the
    /// API's paths are plain ASCII segments).
    pub path: String,
    /// Headers as `(lowercased-name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// Why a request could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The stream closed or was unparseable before a full head arrived.
    Malformed(String),
    /// The declared `Content-Length` exceeds the configured cap — the
    /// caller maps this to a typed `413` response.
    BodyTooLarge {
        /// Declared `Content-Length`, bytes.
        declared: usize,
        /// The configured cap, bytes.
        limit: usize,
    },
    /// An I/O error while reading.
    Io(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte cap")
            }
            HttpError::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl Request {
    /// Reads one request from `stream`, rejecting bodies larger than
    /// `max_body` bytes *before* reading them.
    pub fn read(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        let mut head_bytes = 0usize;
        read_line_bounded(&mut reader, &mut line, &mut head_bytes)?;
        let mut parts = line.split_whitespace();
        let method = parts
            .next()
            .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
            .to_string();
        let path = parts
            .next()
            .ok_or_else(|| HttpError::Malformed("request line has no path".into()))?
            .to_string();
        let version = parts.next().unwrap_or("HTTP/1.1");
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed(format!(
                "unsupported protocol {version:?}"
            )));
        }

        let mut headers = Vec::new();
        let mut content_length: Option<usize> = None;
        loop {
            line.clear();
            read_line_bounded(&mut reader, &mut line, &mut head_bytes)?;
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                break;
            }
            let Some((name, value)) = trimmed.split_once(':') else {
                return Err(HttpError::Malformed(format!("bad header line {trimmed:?}")));
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                let parsed: usize = value
                    .parse()
                    .map_err(|_| HttpError::Malformed(format!("bad content-length {value:?}")))?;
                // Conflicting duplicates are a request-smuggling
                // ambiguity (RFC 9112 §6.3): reject, never pick one.
                if let Some(previous) = content_length {
                    if previous != parsed {
                        return Err(HttpError::Malformed(format!(
                            "conflicting content-length headers ({previous} vs {parsed})"
                        )));
                    }
                }
                content_length = Some(parsed);
            }
            if name == "transfer-encoding" {
                // Another smuggling vector if ignored; this server only
                // frames request bodies with Content-Length.
                return Err(HttpError::Malformed(
                    "transfer-encoding request bodies are not supported; \
                     send a content-length body"
                        .into(),
                ));
            }
            headers.push((name, value));
        }

        let content_length = content_length.unwrap_or(0);
        if content_length > max_body {
            return Err(HttpError::BodyTooLarge {
                declared: content_length,
                limit: max_body,
            });
        }
        let mut body = vec![0u8; content_length];
        reader
            .read_exact(&mut body)
            .map_err(|e| HttpError::Io(e.to_string()))?;
        Ok(Request {
            method,
            path,
            headers,
            body,
        })
    }

    /// The first header with `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one `\n`-terminated line, enforcing [`MAX_HEAD_BYTES`] *while
/// reading* — a `BufRead::read_line` would buffer an arbitrarily long
/// newline-free line before any length check could run, handing any
/// client a per-connection memory DoS. This loop never holds more than
/// the cap.
fn read_line_bounded(
    reader: &mut BufReader<&mut TcpStream>,
    line: &mut String,
    head_bytes: &mut usize,
) -> Result<(), HttpError> {
    let mut raw = Vec::new();
    loop {
        let available = reader
            .fill_buf()
            .map_err(|e| HttpError::Io(e.to_string()))?;
        if available.is_empty() {
            if raw.is_empty() {
                return Err(HttpError::Malformed("connection closed mid-head".into()));
            }
            break;
        }
        let (take, saw_newline) = match available.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos + 1, true),
            None => (available.len(), false),
        };
        if *head_bytes + raw.len() + take > MAX_HEAD_BYTES {
            return Err(HttpError::Malformed(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        raw.extend_from_slice(&available[..take]);
        reader.consume(take);
        if saw_newline {
            break;
        }
    }
    *head_bytes += raw.len();
    line.push_str(
        std::str::from_utf8(&raw)
            .map_err(|_| HttpError::Malformed("non-UTF-8 bytes in request head".into()))?,
    );
    Ok(())
}

/// Reason phrases for the status codes the API uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// A fixed-length HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
        }
    }

    /// A raw-bytes response with an explicit content type.
    pub fn bytes(status: u16, content_type: &'static str, body: Vec<u8>) -> Response {
        Response {
            status,
            content_type,
            body,
        }
    }

    /// Serializes and writes the response, closing semantics implied by
    /// `Connection: close`.
    pub fn write(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// A chunked-transfer response writer for progress streams: write the
/// head once, then any number of [`ChunkedWriter::chunk`] calls, then
/// [`ChunkedWriter::finish`].
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Writes the response head and returns the chunk writer.
    pub fn start(
        stream: &'a mut TcpStream,
        status: u16,
        content_type: &str,
    ) -> std::io::Result<ChunkedWriter<'a>> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            status,
            reason(status),
            content_type,
        );
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Writes one chunk (empty input is skipped — an empty chunk would
    /// terminate the stream).
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates the chunked stream.
    pub fn finish(self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(raw: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let req = Request::read(&mut conn, max_body);
        writer.join().unwrap();
        req
    }

    #[test]
    fn parses_post_with_body_and_headers() {
        let req = roundtrip(
            b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\nX-Tenant: alice\r\nContent-Length: 4\r\n\r\nbody",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.header("x-tenant"), Some("alice"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn rejects_oversized_body_before_reading_it() {
        let err = roundtrip(
            b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 9999\r\n\r\n",
            16,
        )
        .unwrap_err();
        assert_eq!(
            err,
            HttpError::BodyTooLarge {
                declared: 9999,
                limit: 16
            }
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            roundtrip(b"not http at all\r\n\r\n", 16).unwrap_err(),
            HttpError::Malformed(_)
        ));
    }

    #[test]
    fn caps_a_newline_free_header_line_while_reading_it() {
        // One endless header line, no `\n`: the server must abort at
        // MAX_HEAD_BYTES instead of buffering until the writer stops.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let _ = s.write_all(b"GET / HTTP/1.1\r\nX-Flood: ");
            let chunk = [b'a'; 4096];
            // Keep writing well past the cap; ignore the reset once the
            // server bails out.
            for _ in 0..64 {
                if s.write_all(&chunk).is_err() {
                    break;
                }
            }
        });
        let (mut conn, _) = listener.accept().unwrap();
        let err = Request::read(&mut conn, 1024).unwrap_err();
        drop(conn);
        writer.join().unwrap();
        match err {
            HttpError::Malformed(m) => assert!(m.contains("exceeds"), "got {m:?}"),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn rejects_conflicting_duplicate_content_lengths() {
        let err = roundtrip(
            b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\nbody!",
            1024,
        )
        .unwrap_err();
        assert!(matches!(err, HttpError::Malformed(m) if m.contains("conflicting")));
        // Identical duplicates are unambiguous and pass.
        let req = roundtrip(
            b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody",
            1024,
        )
        .unwrap();
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn rejects_transfer_encoding_bodies() {
        let err = roundtrip(
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nbody\r\n0\r\n\r\n",
            1024,
        )
        .unwrap_err();
        assert!(matches!(err, HttpError::Malformed(m) if m.contains("transfer-encoding")));
    }
}
