//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal serialization framework with the same spelling as serde 1.x:
//! `#[derive(Serialize, Deserialize)]`, `#[serde(default)]`, and
//! `#[serde(default = "path")]`. Instead of serde's visitor architecture,
//! everything round-trips through an owned [`Value`] tree (the `serde_json`
//! stand-in renders and parses that tree). Enums use serde's default
//! externally-tagged representation; missing `Option` fields deserialize to
//! `None`; unknown fields are ignored.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree — the interchange format between
/// [`Serialize`]/[`Deserialize`] impls and the `serde_json` stand-in.
///
/// Object keys keep insertion order (serde_json's `preserve_order`
/// behavior), which makes serialized output deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number (all numerics are carried as `f64`).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member access by key (objects only), mirroring `serde_json::Value::get`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an unsigned integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization failure: a human-readable path/type mismatch message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// A "wanted X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> DeError {
        DeError(format!("expected {what}, found {}", found.kind()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into a [`Value`] tree (stand-in for `serde::Serialize`).
pub trait Serialize {
    /// Renders `self` as a data tree.
    fn to_value(&self) -> Value;
}

/// Conversion from a [`Value`] tree (stand-in for `serde::Deserialize`).
pub trait Deserialize: Sized {
    /// Parses `Self` out of a data tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_bool()
            .ok_or_else(|| DeError::expected("boolean", value))
    }
}

macro_rules! number_impls {
    ($($t:ty => $what:literal),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value.as_f64().ok_or_else(|| DeError::expected($what, value))?;
                if n.fract() != 0.0 || n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(DeError(format!("number {n} does not fit {}", $what)));
                }
                Ok(n as $t)
            }
        }
    )*};
}

number_impls! {
    u8 => "u8", u16 => "u16", u32 => "u32", u64 => "u64", usize => "usize",
    i8 => "i8", i16 => "i16", i32 => "i32", i64 => "i64", isize => "isize",
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::expected("number", value))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(value)? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", value))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic despite hash order.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

/// Helpers called by the generated derive code. Not part of the public
/// stand-in API surface; kept `pub` so the expanded macros can reach them.
pub mod de {
    use super::{DeError, Deserialize, Value};

    /// Views `value` as an object, or fails with the type's name.
    pub fn as_object<'v>(value: &'v Value, ty: &str) -> Result<&'v [(String, Value)], DeError> {
        match value {
            Value::Object(entries) => Ok(entries),
            other => Err(DeError(format!(
                "expected object for {ty}, found {}",
                other.kind()
            ))),
        }
    }

    /// Looks up `name` among `entries` (first match wins).
    pub fn get<'v>(entries: &'v [(String, Value)], name: &str) -> Option<&'v Value> {
        entries.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Required field: present keys must parse; absent keys are an error —
    /// except for `Option` fields, whose impl maps `Null` to `None` and which
    /// the derive routes through [`field_opt`].
    pub fn field<T: Deserialize>(entries: &[(String, Value)], name: &str) -> Result<T, DeError> {
        match get(entries, name) {
            Some(v) => T::from_value(v).map_err(|e| DeError(format!("field `{name}`: {}", e.0))),
            None => Err(DeError(format!("missing field `{name}`"))),
        }
    }

    /// `Option<T>` field: an absent key is `None` (serde's behavior for
    /// in-struct options under default settings combined with
    /// `#[serde(default)]`; this stand-in applies it to all options).
    pub fn field_opt<T: Deserialize>(
        entries: &[(String, Value)],
        name: &str,
    ) -> Result<Option<T>, DeError> {
        match get(entries, name) {
            Some(v) => {
                Option::<T>::from_value(v).map_err(|e| DeError(format!("field `{name}`: {}", e.0)))
            }
            None => Ok(None),
        }
    }

    /// `#[serde(default)]` / `#[serde(default = "path")]` field: an absent
    /// key falls back to `fallback()`.
    pub fn field_or<T: Deserialize>(
        entries: &[(String, Value)],
        name: &str,
        fallback: impl FnOnce() -> T,
    ) -> Result<T, DeError> {
        match get(entries, name) {
            Some(v) => T::from_value(v).map_err(|e| DeError(format!("field `{name}`: {}", e.0))),
            None => Ok(fallback()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number(3.0)),
            ("b".into(), Value::String("x".into())),
            ("c".into(), Value::Array(vec![Value::Bool(true)])),
        ]);
        assert_eq!(v.get("a").and_then(Value::as_f64), Some(3.0));
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("b").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(Value::as_array).map(Vec::len), Some(1));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Number(1.5).as_u64(), None);
        assert_eq!(Value::Number(-1.0).as_u64(), None);
    }

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(f64::from_value(&1.25f64.to_value()), Ok(1.25));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(
            Vec::<u64>::from_value(&vec![1u64, 2, 3].to_value()),
            Ok(vec![1, 2, 3])
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u32>::from_value(&Value::Number(7.0)), Ok(Some(7)));
    }

    #[test]
    fn narrowing_is_checked() {
        assert!(u8::from_value(&Value::Number(300.0)).is_err());
        assert!(u32::from_value(&Value::Number(1.5)).is_err());
        assert!(u64::from_value(&Value::String("1".into())).is_err());
    }

    #[test]
    fn field_helpers() {
        let entries = vec![("x".to_string(), Value::Number(2.0))];
        assert_eq!(de::field::<u32>(&entries, "x"), Ok(2));
        assert!(de::field::<u32>(&entries, "y").is_err());
        assert_eq!(de::field_opt::<u32>(&entries, "y"), Ok(None));
        assert_eq!(de::field_or::<u32>(&entries, "y", || 9), Ok(9));
    }
}
