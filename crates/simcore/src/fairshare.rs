//! Max–min fair bandwidth sharing ("progressive filling").
//!
//! Given a set of resources with capacities and a set of flows, each
//! traversing a subset of the resources and optionally rate-capped, the
//! solver computes the max–min fair allocation: rates are grown uniformly
//! until a resource saturates (or a flow hits its cap), the constrained
//! flows are frozen, and the process repeats on the residual network.
//!
//! This is the same fluid model SimGrid uses for network sharing, and it is
//! what makes contention effects — the paper's Figures 7 and 11, where
//! concurrent SWarp pipelines slow each other down by competing for burst
//! buffer bandwidth — emerge from first principles rather than from fitted
//! slowdown curves.

use crate::ids::ResourceId;
use crate::EPSILON;

/// A flow, as seen by the solver.
#[derive(Debug, Clone)]
pub struct FlowReq<'a> {
    /// Resources traversed by the flow.
    pub route: &'a [ResourceId],
    /// Optional upper bound on the flow's rate.
    pub rate_cap: Option<f64>,
}

/// Computes the max–min fair allocation.
///
/// Returns one rate per flow, in the order given. Flows with an empty route
/// receive their cap, or `f64::INFINITY` if uncapped (the engine only
/// spawns empty-route flows for zero-sized transfers, which complete
/// immediately).
///
/// # Panics
/// Panics if a route references a resource index out of bounds.
pub fn solve(capacities: &[f64], flows: &[FlowReq<'_>]) -> Vec<f64> {
    let mut rates = vec![0.0_f64; flows.len()];
    let mut fixed = vec![false; flows.len()];
    let mut remaining: Vec<f64> = capacities.to_vec();
    // Number of unfixed flows crossing each resource.
    let mut load = vec![0_usize; capacities.len()];

    let mut unfixed = 0usize;
    for (i, f) in flows.iter().enumerate() {
        if f.route.is_empty() {
            rates[i] = f.rate_cap.unwrap_or(f64::INFINITY);
            fixed[i] = true;
            continue;
        }
        unfixed += 1;
        for r in f.route {
            let idx = r.index();
            assert!(idx < capacities.len(), "route references unknown resource {r}");
            load[idx] += 1;
        }
    }

    while unfixed > 0 {
        // Fair share offered by the most constrained resource.
        let mut min_share = f64::INFINITY;
        for (idx, &n) in load.iter().enumerate() {
            if n > 0 {
                let share = (remaining[idx].max(0.0)) / n as f64;
                if share < min_share {
                    min_share = share;
                }
            }
        }
        // Smallest cap among unfixed capped flows.
        let mut min_cap = f64::INFINITY;
        for (i, f) in flows.iter().enumerate() {
            if !fixed[i] {
                if let Some(cap) = f.rate_cap {
                    if cap < min_cap {
                        min_cap = cap;
                    }
                }
            }
        }

        let level = min_share.min(min_cap);
        debug_assert!(level.is_finite(), "no constraint found for unfixed flows");

        // Freeze every flow constrained at this level: flows whose cap is
        // reached, and flows crossing a resource whose fair share is the
        // bottleneck.
        let mut froze_any = false;
        for (i, f) in flows.iter().enumerate() {
            if fixed[i] {
                continue;
            }
            let capped = f.rate_cap.is_some_and(|c| c <= level + EPSILON);
            let bottlenecked = f.route.iter().any(|r| {
                let idx = r.index();
                (remaining[idx].max(0.0)) / load[idx] as f64 <= level + EPSILON
            });
            if capped || bottlenecked {
                let rate = match f.rate_cap {
                    Some(c) => c.min(level),
                    None => level,
                };
                rates[i] = rate;
                fixed[i] = true;
                froze_any = true;
                unfixed -= 1;
                for r in f.route {
                    let idx = r.index();
                    load[idx] -= 1;
                    remaining[idx] = (remaining[idx] - rate).max(0.0);
                }
            }
        }
        // Progressive filling always freezes at least the flows on the
        // bottleneck; guard against numerical stalemates anyway.
        assert!(froze_any, "fair-share solver failed to make progress");
    }

    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(i: usize) -> ResourceId {
        ResourceId::from_index(i)
    }

    fn req(route: &[ResourceId]) -> FlowReq<'_> {
        FlowReq {
            route,
            rate_cap: None,
        }
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let route = [rid(0)];
        let rates = solve(&[100.0], &[req(&route)]);
        assert!((rates[0] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn two_flows_split_a_link_evenly() {
        let route = [rid(0)];
        let rates = solve(&[100.0], &[req(&route), req(&route)]);
        assert!((rates[0] - 50.0).abs() < 1e-9);
        assert!((rates[1] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn rate_cap_limits_a_flow_and_frees_capacity() {
        let route = [rid(0)];
        let capped = FlowReq {
            route: &route,
            rate_cap: Some(10.0),
        };
        let rates = solve(&[100.0], &[capped, req(&route)]);
        assert!((rates[0] - 10.0).abs() < 1e-9);
        assert!((rates[1] - 90.0).abs() < 1e-9);
    }

    #[test]
    fn classic_three_flow_two_link_example() {
        // Flow 0 crosses both links, flows 1 and 2 cross one each.
        // Link capacities 10 and 10: max-min gives flow0 = 5, others 5.
        let r01 = [rid(0), rid(1)];
        let r0 = [rid(0)];
        let r1 = [rid(1)];
        let rates = solve(&[10.0, 10.0], &[req(&r01), req(&r0), req(&r1)]);
        assert!((rates[0] - 5.0).abs() < 1e-9);
        assert!((rates[1] - 5.0).abs() < 1e-9);
        assert!((rates[2] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn asymmetric_bottleneck() {
        // Flow 0 crosses links A (cap 10) and B (cap 100); flow 1 crosses B.
        // Flow 0 is bottlenecked at A with rate 10; flow 1 then gets 90.
        let rab = [rid(0), rid(1)];
        let rb = [rid(1)];
        let rates = solve(&[10.0, 100.0], &[req(&rab), req(&rb)]);
        assert!((rates[0] - 10.0).abs() < 1e-9);
        assert!((rates[1] - 90.0).abs() < 1e-9);
    }

    #[test]
    fn empty_route_flow_is_unconstrained() {
        let rates = solve(&[10.0], &[req(&[])]);
        assert!(rates[0].is_infinite());
    }

    #[test]
    fn empty_route_with_cap_gets_cap() {
        let rates = solve(
            &[10.0],
            &[FlowReq {
                route: &[],
                rate_cap: Some(3.0),
            }],
        );
        assert!((rates[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn many_flows_on_one_resource_share_evenly() {
        let route = [rid(0)];
        let flows: Vec<FlowReq> = (0..32).map(|_| req(&route)).collect();
        let rates = solve(&[32.0], &flows);
        for r in rates {
            assert!((r - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn caps_below_fair_share_redistribute() {
        // Four flows on a 100-unit link; two capped at 5. The uncapped pair
        // shares the remaining 90 evenly.
        let route = [rid(0)];
        let c = |cap| FlowReq {
            route: &route,
            rate_cap: Some(cap),
        };
        let rates = solve(&[100.0], &[c(5.0), c(5.0), req(&route), req(&route)]);
        assert!((rates[0] - 5.0).abs() < 1e-9);
        assert!((rates[1] - 5.0).abs() < 1e-9);
        assert!((rates[2] - 45.0).abs() < 1e-9);
        assert!((rates[3] - 45.0).abs() < 1e-9);
    }

    #[test]
    fn cap_above_fair_share_is_inactive() {
        let route = [rid(0)];
        let rates = solve(
            &[100.0],
            &[
                FlowReq {
                    route: &route,
                    rate_cap: Some(1000.0),
                },
                req(&route),
            ],
        );
        assert!((rates[0] - 50.0).abs() < 1e-9);
        assert!((rates[1] - 50.0).abs() < 1e-9);
    }

    /// Checks the three max–min invariants for an arbitrary instance.
    fn check_invariants(capacities: &[f64], flows: &[FlowReq<'_>], rates: &[f64]) {
        let tol = 1e-6;
        // 1. No resource is over-subscribed.
        for (idx, &cap) in capacities.iter().enumerate() {
            let used: f64 = flows
                .iter()
                .zip(rates)
                .filter(|(f, _)| f.route.iter().any(|r| r.index() == idx))
                .map(|(_, &r)| r)
                .sum();
            assert!(
                used <= cap * (1.0 + tol) + tol,
                "resource {idx} oversubscribed: {used} > {cap}"
            );
        }
        // 2. Every flow is bottlenecked: either at its cap, or it crosses a
        //    resource that is saturated.
        for (i, f) in flows.iter().enumerate() {
            if f.route.is_empty() {
                continue;
            }
            let at_cap = f.rate_cap.is_some_and(|c| rates[i] >= c - tol * c - tol);
            let at_saturated = f.route.iter().any(|r| {
                let idx = r.index();
                let used: f64 = flows
                    .iter()
                    .zip(rates)
                    .filter(|(g, _)| g.route.iter().any(|x| x.index() == idx))
                    .map(|(_, &r)| r)
                    .sum();
                used >= capacities[idx] * (1.0 - tol) - tol
            });
            assert!(
                at_cap || at_saturated,
                "flow {i} with rate {} is not bottlenecked anywhere",
                rates[i]
            );
        }
        // 3. Rates respect caps.
        for (i, f) in flows.iter().enumerate() {
            if let Some(cap) = f.rate_cap {
                assert!(rates[i] <= cap * (1.0 + tol) + tol);
            }
        }
    }

    #[test]
    fn invariants_hold_on_handcrafted_instances() {
        let r01 = [rid(0), rid(1)];
        let r0 = [rid(0)];
        let r1 = [rid(1)];
        let flows = vec![
            req(&r01),
            req(&r0),
            FlowReq {
                route: &r1,
                rate_cap: Some(2.0),
            },
        ];
        let caps = [7.0, 13.0];
        let rates = solve(&caps, &flows);
        check_invariants(&caps, &flows, &rates);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// A randomly generated sharing instance: resource capacities plus
        /// per-flow (route, optional rate cap) descriptors.
        type RawInstance = (Vec<f64>, Vec<(Vec<usize>, Option<f64>)>);

        /// Random sharing instance: up to 6 resources, up to 12 flows, each
        /// flow crossing a random non-empty subset of resources.
        fn instance() -> impl Strategy<Value = RawInstance> {
            (2usize..=6).prop_flat_map(|nres| {
                let caps = proptest::collection::vec(1.0f64..1000.0, nres);
                let flows = proptest::collection::vec(
                    (
                        proptest::collection::btree_set(0..nres, 1..=nres.min(3)),
                        proptest::option::of(0.5f64..500.0),
                    )
                        .prop_map(|(set, cap)| (set.into_iter().collect::<Vec<_>>(), cap)),
                    1..12,
                );
                (caps, flows)
            })
        }

        proptest! {
            #[test]
            fn solver_satisfies_maxmin_invariants((caps, raw) in instance()) {
                let routes: Vec<Vec<ResourceId>> = raw
                    .iter()
                    .map(|(r, _)| r.iter().map(|&i| rid(i)).collect())
                    .collect();
                let flows: Vec<FlowReq> = routes
                    .iter()
                    .zip(&raw)
                    .map(|(route, (_, cap))| FlowReq { route, rate_cap: *cap })
                    .collect();
                let rates = solve(&caps, &flows);
                check_invariants(&caps, &flows, &rates);
            }

            #[test]
            fn solver_is_order_independent((caps, raw) in instance()) {
                let routes: Vec<Vec<ResourceId>> = raw
                    .iter()
                    .map(|(r, _)| r.iter().map(|&i| rid(i)).collect())
                    .collect();
                let flows: Vec<FlowReq> = routes
                    .iter()
                    .zip(&raw)
                    .map(|(route, (_, cap))| FlowReq { route, rate_cap: *cap })
                    .collect();
                let rates = solve(&caps, &flows);
                // Reverse the flow order and compare per-flow results.
                let rev: Vec<FlowReq> = flows.iter().rev().cloned().collect();
                let rev_rates = solve(&caps, &rev);
                for (i, &r) in rates.iter().enumerate() {
                    let j = flows.len() - 1 - i;
                    prop_assert!((r - rev_rates[j]).abs() <= 1e-6 * r.max(1.0),
                        "rate mismatch: {} vs {}", r, rev_rates[j]);
                }
            }

            #[test]
            fn more_capacity_never_hurts((caps, raw) in instance()) {
                let routes: Vec<Vec<ResourceId>> = raw
                    .iter()
                    .map(|(r, _)| r.iter().map(|&i| rid(i)).collect())
                    .collect();
                let flows: Vec<FlowReq> = routes
                    .iter()
                    .zip(&raw)
                    .map(|(route, (_, cap))| FlowReq { route, rate_cap: *cap })
                    .collect();
                let rates = solve(&caps, &flows);
                let bigger: Vec<f64> = caps.iter().map(|c| c * 2.0).collect();
                let rates2 = solve(&bigger, &flows);
                // Doubling all capacities cannot reduce the minimum rate.
                let min1 = rates.iter().cloned().fold(f64::INFINITY, f64::min);
                let min2 = rates2.iter().cloned().fold(f64::INFINITY, f64::min);
                prop_assert!(min2 >= min1 - 1e-6 * min1.max(1.0));
            }
        }
    }
}
