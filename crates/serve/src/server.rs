//! The long-running service: TCP accept loop, routing, the job table,
//! the fixed simulation worker pool, and the quota reaper.
//!
//! Threading model (all `std`, no async runtime):
//!
//! * the **accept loop** hands each connection to a short-lived handler
//!   thread (one request per connection, `Connection: close`);
//! * a **fixed pool** of `--workers` simulation threads drains the job
//!   queue — simulations are CPU-bound and engine state is not `Send`
//!   mid-run, so one job occupies one worker from start to finish;
//! * a **reaper** thread enforces the per-tenant wall-clock timeout:
//!   it raises the job's cancel flag (checked between engine events),
//!   marks the job `timeout`, and frees the tenant's quota slot
//!   immediately; if the worker does not come back within a grace
//!   period (a non-cancellable section), a replacement worker is
//!   spawned so pool capacity never leaks, and the stuck worker retires
//!   itself when it finally returns.
//!
//! Routes, schemas, and the error taxonomy are documented (and
//! drift-checked by `scripts/check-doc-links.sh`) in `docs/service.md`.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::cache::ResultCache;
use crate::http::{ChunkedWriter, HttpError, Request, Response};
use crate::metrics::ServeMetrics;
use crate::request::{JobRequest, RequestError};
use crate::runner::{run_request, Artifacts, Progress, RunError};
use crate::tenant::{QuotaError, QuotaLedger, TenantQuota};

/// Tenant assumed when no `X-Tenant` header is sent.
pub const DEFAULT_TENANT: &str = "anonymous";

/// How long the reaper waits for a cancelled job's worker to return
/// before spawning a replacement worker.
const REAP_GRACE: Duration = Duration::from_secs(2);

/// Reaper scan interval.
const REAP_SCAN: Duration = Duration::from_millis(50);

/// Progress-stream heartbeat interval.
const EVENT_BEAT: Duration = Duration::from_millis(100);

/// Server configuration (the CLI's `serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:8080`; port `0` picks an ephemeral one).
    pub addr: String,
    /// Simulation worker threads.
    pub workers: usize,
    /// Result-cache capacity, bytes.
    pub cache_bytes: usize,
    /// Per-tenant limits.
    pub quota: TenantQuota,
    /// How long a terminal (done/failed/timeout) job stays fetchable
    /// before the reaper evicts its entry; expired ids answer `404`.
    pub job_ttl: Duration,
    /// Maximum retained terminal jobs across all tenants; past it the
    /// oldest terminal entries are evicted first.
    pub max_jobs: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8080".to_string(),
            workers: 2,
            cache_bytes: 64 * 1024 * 1024,
            quota: TenantQuota::default(),
            job_ttl: Duration::from_secs(600),
            max_jobs: 1024,
        }
    }
}

/// Lifecycle of one submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Failed,
    TimedOut,
}

impl JobState {
    fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::TimedOut => "timeout",
        }
    }

    fn terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::TimedOut)
    }
}

struct JobEntry {
    tenant: String,
    label: String,
    key: u64,
    key_hex: String,
    request: Arc<JobRequest>,
    state: JobState,
    cached: bool,
    error: Option<String>,
    artifacts: Option<Arc<Artifacts>>,
    progress: Arc<Mutex<Progress>>,
    cancel: Arc<AtomicBool>,
    submitted: Instant,
    /// When the job reached a terminal state (drives retention).
    finished_at: Option<Instant>,
    /// When the reaper raised the cancel flag (for the grace window).
    reaped_at: Option<Instant>,
    /// A worker popped this job off the queue and is (or was) running
    /// it. Jobs reaped while still queued never set this.
    claimed: bool,
    /// The claiming worker's epilogue ran — its thread is accounted for.
    worker_done: bool,
    /// A replacement worker was spawned for this job's stuck worker.
    replacement_spawned: bool,
}

#[derive(Default)]
struct Totals {
    done: u64,
    failed: u64,
    timed_out: u64,
    from_cache: u64,
    evicted: u64,
}

struct Inner {
    jobs: BTreeMap<u64, JobEntry>,
    queue: VecDeque<u64>,
    cache: ResultCache,
    ledger: QuotaLedger,
    next_id: u64,
    workers_busy: usize,
    workers_replaced: u64,
    totals: Totals,
    shutdown: bool,
}

/// Shared service state behind the HTTP front end.
pub struct Service {
    inner: Mutex<Inner>,
    work_ready: Condvar,
    config: ServeConfig,
}

impl Service {
    fn new(config: ServeConfig) -> Service {
        Service {
            inner: Mutex::new(Inner {
                jobs: BTreeMap::new(),
                queue: VecDeque::new(),
                cache: ResultCache::new(config.cache_bytes),
                ledger: QuotaLedger::new(),
                next_id: 1,
                workers_busy: 0,
                workers_replaced: 0,
                totals: Totals::default(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            config,
        }
    }

    /// Submits a parsed request for `tenant`: cache hit → an already-
    /// `done` job carrying the cached artifacts; miss → queued job
    /// (or a quota error). Returns `(cache_hit, job_document_json)`;
    /// the document is rendered under the submission lock so it cannot
    /// race with retention eviction.
    fn submit(&self, tenant: &str, request: JobRequest) -> Result<(bool, String), QuotaError> {
        let key = request.cache_key();
        let key_hex = request.key_hex();
        let label = request.label();
        let mut inner = self.inner.lock().expect("service lock");
        let cached = inner.cache.get(key);
        let id = inner.next_id;
        inner.next_id += 1;
        if let Some(artifacts) = cached {
            inner.ledger.record_cache_hit(tenant);
            inner.totals.from_cache += 1;
            let entry = JobEntry {
                tenant: tenant.to_string(),
                label,
                key,
                key_hex,
                request: Arc::new(request),
                state: JobState::Done,
                cached: true,
                error: None,
                artifacts: Some(artifacts),
                progress: Arc::new(Mutex::new(Progress::default())),
                cancel: Arc::new(AtomicBool::new(false)),
                submitted: Instant::now(),
                finished_at: Some(Instant::now()),
                reaped_at: None,
                claimed: false,
                worker_done: false,
                replacement_spawned: false,
            };
            let body = job_json(&entry, id);
            inner.jobs.insert(id, entry);
            return Ok((true, body));
        }
        inner.ledger.admit(tenant, &self.config.quota)?;
        let entry = JobEntry {
            tenant: tenant.to_string(),
            label,
            key,
            key_hex,
            request: Arc::new(request),
            state: JobState::Queued,
            cached: false,
            error: None,
            artifacts: None,
            progress: Arc::new(Mutex::new(Progress::default())),
            cancel: Arc::new(AtomicBool::new(false)),
            submitted: Instant::now(),
            finished_at: None,
            reaped_at: None,
            claimed: false,
            worker_done: false,
            replacement_spawned: false,
        };
        let body = job_json(&entry, id);
        inner.jobs.insert(id, entry);
        inner.queue.push_back(id);
        drop(inner);
        self.work_ready.notify_one();
        Ok((false, body))
    }

    /// One worker's run loop. Returns when the service shuts down, or
    /// early if this worker got stuck past the reap grace and a
    /// replacement was spawned for it (the pool has already been
    /// refilled).
    fn worker_loop(self: &Arc<Self>) {
        loop {
            let claimed = {
                let mut inner = self.inner.lock().expect("service lock");
                loop {
                    if inner.shutdown {
                        return;
                    }
                    if let Some(id) = inner.queue.pop_front() {
                        // Jobs reaped while still queued are skipped —
                        // their state and quota were already settled.
                        let entry = inner.jobs.get_mut(&id).expect("queued job exists");
                        if entry.state != JobState::Queued {
                            continue;
                        }
                        entry.state = JobState::Running;
                        entry.claimed = true;
                        let claim = (
                            id,
                            Arc::clone(&entry.request),
                            Arc::clone(&entry.cancel),
                            Arc::clone(&entry.progress),
                        );
                        inner.workers_busy += 1;
                        break Some(claim);
                    }
                    inner = self
                        .work_ready
                        .wait_timeout(inner, Duration::from_millis(200))
                        .expect("service lock")
                        .0;
                }
            };
            let Some((id, request, cancel, progress)) = claimed else {
                return;
            };
            let result = run_request(&request, &cancel, &progress);
            let mut inner = self.inner.lock().expect("service lock");
            inner.workers_busy -= 1;
            // Retention never evicts a claimed job before this epilogue
            // runs (`worker_done` gates eviction), so the entry exists.
            let entry = inner.jobs.get_mut(&id).expect("running job exists");
            entry.worker_done = true;
            let retire = entry.replacement_spawned;
            let tenant = entry.tenant.clone();
            let key = entry.key;
            if entry.state == JobState::TimedOut {
                // The reaper already settled this job (state, quota);
                // whatever the run produced is discarded.
            } else {
                entry.finished_at = Some(Instant::now());
                match result {
                    Ok(artifacts) => {
                        let artifacts = Arc::new(artifacts);
                        entry.state = JobState::Done;
                        entry.artifacts = Some(Arc::clone(&artifacts));
                        inner.totals.done += 1;
                        inner.cache.insert(
                            key,
                            &tenant,
                            artifacts,
                            self.config.quota.max_cached_bytes,
                        );
                        inner.ledger.release_completed(&tenant);
                    }
                    Err(RunError::Cancelled) => {
                        // Cancel raised but the reaper lost the race to
                        // mark the state: settle it here.
                        entry.state = JobState::TimedOut;
                        inner.totals.timed_out += 1;
                        inner.ledger.release_reaped(&tenant);
                    }
                    Err(RunError::Failed(message)) => {
                        entry.state = JobState::Failed;
                        entry.error = Some(message);
                        inner.totals.failed += 1;
                        inner.ledger.release_completed(&tenant);
                    }
                }
            }
            if retire {
                // A replacement took this worker's pool slot while it
                // was stuck; retire instead of over-provisioning.
                return;
            }
        }
    }

    /// One reaper scan: time out over-budget jobs, replace stuck
    /// workers, evict retired job entries past retention.
    fn reap(self: &Arc<Self>) {
        let timeout = Duration::from_secs_f64(self.config.quota.timeout_s.max(0.0));
        let mut replacements = 0u32;
        {
            let mut inner = self.inner.lock().expect("service lock");
            let now = Instant::now();
            let mut to_reap = Vec::new();
            let mut to_replace = Vec::new();
            for (id, entry) in &inner.jobs {
                match entry.state {
                    JobState::Queued | JobState::Running
                        if now.duration_since(entry.submitted) >= timeout =>
                    {
                        to_reap.push(*id);
                    }
                    JobState::TimedOut => {
                        if let Some(reaped_at) = entry.reaped_at {
                            // A worker claimed this job and its epilogue
                            // still has not run past the grace window:
                            // that worker is stuck in a non-cancellable
                            // section. Jobs reaped while still *queued*
                            // never set `claimed`, so no replacement is
                            // spawned for them — no worker is missing.
                            if entry.claimed
                                && !entry.worker_done
                                && !entry.replacement_spawned
                                && now.duration_since(reaped_at) >= REAP_GRACE
                            {
                                to_replace.push(*id);
                            }
                        }
                    }
                    _ => {}
                }
            }
            for id in to_reap {
                let entry = inner.jobs.get_mut(&id).expect("job exists");
                entry.cancel.store(true, Ordering::Relaxed);
                entry.state = JobState::TimedOut;
                entry.finished_at = Some(now);
                entry.reaped_at = Some(now);
                let tenant = entry.tenant.clone();
                inner.totals.timed_out += 1;
                inner.ledger.release_reaped(&tenant);
            }
            for id in to_replace {
                let entry = inner.jobs.get_mut(&id).expect("job exists");
                entry.replacement_spawned = true;
                inner.workers_replaced += 1;
                replacements += 1;
            }
            self.evict_retired(&mut inner, now);
        }
        for _ in 0..replacements {
            let service = Arc::clone(self);
            std::thread::spawn(move || service.worker_loop());
        }
    }

    /// Drops terminal job entries past the retention TTL, and the
    /// oldest terminal entries beyond the `max_jobs` cap, so the job
    /// table (and the artifact `Arc`s it pins) stays bounded in a
    /// long-running service. Expired ids answer `404` afterwards. A
    /// claimed job whose worker epilogue has not run yet is never
    /// evicted — the epilogue needs the entry.
    fn evict_retired(&self, inner: &mut Inner, now: Instant) {
        let mut terminal: Vec<(Instant, u64)> = inner
            .jobs
            .iter()
            .filter(|(_, e)| e.state.terminal() && (!e.claimed || e.worker_done))
            .map(|(id, e)| (e.finished_at.unwrap_or(e.submitted), *id))
            .collect();
        terminal.sort();
        // Sorted oldest-first, so the expired set is a prefix; the cap
        // then extends that prefix to drop the oldest survivors.
        let expired = terminal
            .iter()
            .take_while(|(finished, _)| {
                now.saturating_duration_since(*finished) >= self.config.job_ttl
            })
            .count();
        let evict = expired.max(terminal.len().saturating_sub(self.config.max_jobs));
        for &(_, id) in &terminal[..evict] {
            inner.jobs.remove(&id);
            inner.totals.evicted += 1;
        }
    }

    /// A point-in-time metrics snapshot.
    pub fn metrics(&self) -> ServeMetrics {
        let inner = self.inner.lock().expect("service lock");
        let mut running = 0usize;
        let mut queued = 0usize;
        for entry in inner.jobs.values() {
            match entry.state {
                JobState::Running => running += 1,
                JobState::Queued => queued += 1,
                _ => {}
            }
        }
        ServeMetrics {
            workers: self.config.workers,
            workers_busy: inner.workers_busy,
            workers_replaced: inner.workers_replaced,
            queue_depth: queued,
            jobs_running: running,
            jobs_done: inner.totals.done,
            jobs_failed: inner.totals.failed,
            jobs_timed_out: inner.totals.timed_out,
            jobs_from_cache: inner.totals.from_cache,
            jobs_evicted: inner.totals.evicted,
            cache_entries: inner.cache.len(),
            cache_bytes: inner.cache.used_bytes(),
            cache_capacity_bytes: inner.cache.capacity_bytes(),
            cache: inner.cache.counters(),
            tenants: inner
                .ledger
                .all()
                .map(|(name, usage)| (name.to_string(), *usage))
                .collect(),
        }
    }
}

/// Escapes a string for embedding in a JSON string literal: `"`, `\`,
/// and every control character below 0x20 (RFC 8259 requires them
/// escaped — engine error strings and echoed request paths can carry
/// newlines or other control bytes).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A typed API error body (`docs/service.md` error taxonomy).
fn error_body(status: u16, code: &str, message: &str) -> Response {
    let escaped = json_escape(message);
    Response::json(
        status,
        format!(
            "{{\"error\":{{\"status\":{status},\"code\":\"{code}\",\"message\":\"{escaped}\"}}}}"
        ),
    )
}

fn job_json(entry: &JobEntry, id: u64) -> String {
    let progress = entry.progress.lock().map(|p| *p).unwrap_or_default();
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"api_version\":{},\"id\":{},\"state\":\"{}\",\"tenant\":\"{}\",\"label\":\"{}\",\
         \"input_hash\":\"{}\",\"cached\":{},",
        crate::API_VERSION,
        id,
        entry.state.label(),
        json_escape(&entry.tenant),
        json_escape(&entry.label),
        entry.key_hex,
        entry.cached,
    );
    let _ = write!(
        out,
        "\"progress\":{{\"sim_time\":{},\"jobs_admitted\":{},\"jobs_finished\":{},\
         \"queue_depth\":{},\"events\":{}}},",
        progress.sim_time,
        progress.jobs_admitted,
        progress.jobs_finished,
        progress.queue_depth,
        progress.events,
    );
    match &entry.error {
        Some(e) => {
            let _ = write!(out, "\"error\":\"{}\",", json_escape(e));
        }
        None => out.push_str("\"error\":null,"),
    }
    out.push_str("\"artifacts\":[");
    if let Some(artifacts) = &entry.artifacts {
        for (i, (name, bytes)) in artifacts.manifest().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"bytes\":{bytes}}}",
                json_escape(name)
            );
        }
    }
    out.push_str("]}");
    out
}

fn artifact_content_type(name: &str) -> &'static str {
    if name.ends_with(".json") {
        "application/json"
    } else if name.ends_with(".jsonl") {
        "application/x-ndjson"
    } else if name.ends_with(".csv") {
        "text/csv"
    } else {
        "text/plain"
    }
}

/// The running server: a bound listener plus its background threads.
pub struct Server {
    listener: TcpListener,
    service: Arc<Service>,
}

/// Handle to a server running on background threads (tests and
/// embedders); [`ServerHandle::stop`] shuts it down.
pub struct ServerHandle {
    /// The actually-bound address (resolves `:0` requests).
    pub addr: SocketAddr,
    service: Arc<Service>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` and prepares (but does not start) the
    /// service.
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            service: Arc::new(Service::new(config)),
        })
    }

    /// The bound socket address.
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener")
    }

    /// Runs the accept loop on the calling thread (the CLI entry
    /// point); worker pool and reaper run on background threads.
    pub fn run(self) -> std::io::Result<()> {
        let service = Arc::clone(&self.service);
        Self::spawn_background(&service);
        Self::accept_loop(self.listener, service)
    }

    /// Starts the whole server on background threads and returns a
    /// stop handle — the embedding used by tests and the CI smoke step.
    pub fn start(self) -> ServerHandle {
        let addr = self.local_addr();
        let service = Arc::clone(&self.service);
        Self::spawn_background(&service);
        let accept_service = Arc::clone(&self.service);
        let listener = self.listener;
        let accept = std::thread::spawn(move || {
            let _ = Self::accept_loop(listener, accept_service);
        });
        ServerHandle {
            addr,
            service,
            accept: Some(accept),
        }
    }

    fn spawn_background(service: &Arc<Service>) {
        for _ in 0..service.config.workers.max(1) {
            let worker = Arc::clone(service);
            std::thread::spawn(move || worker.worker_loop());
        }
        let reaper = Arc::clone(service);
        std::thread::spawn(move || loop {
            if reaper.inner.lock().expect("service lock").shutdown {
                return;
            }
            reaper.reap();
            std::thread::sleep(REAP_SCAN);
        });
    }

    fn accept_loop(listener: TcpListener, service: Arc<Service>) -> std::io::Result<()> {
        for stream in listener.incoming() {
            if service.inner.lock().expect("service lock").shutdown {
                return Ok(());
            }
            let Ok(stream) = stream else { continue };
            let conn_service = Arc::clone(&service);
            std::thread::spawn(move || handle_connection(stream, conn_service));
        }
        Ok(())
    }
}

impl ServerHandle {
    /// Stops the server: shuts the accept loop, workers, and reaper
    /// down and joins the accept thread.
    pub fn stop(mut self) {
        self.service.inner.lock().expect("service lock").shutdown = true;
        self.service.work_ready.notify_all();
        // Wake the blocking accept with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// The service behind this handle (metrics for assertions).
    pub fn service_metrics(&self) -> ServeMetrics {
        self.service.metrics()
    }
}

fn handle_connection(mut stream: TcpStream, service: Arc<Service>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let request = match Request::read(&mut stream, service.config.quota.max_body_bytes) {
        Ok(r) => r,
        Err(HttpError::BodyTooLarge { declared, limit }) => {
            let _ = error_body(
                413,
                "quota_body_bytes",
                &format!("request body of {declared} bytes exceeds the {limit}-byte quota"),
            )
            .write(&mut stream);
            return;
        }
        Err(e) => {
            let _ = error_body(400, "bad_request", &e.to_string()).write(&mut stream);
            return;
        }
    };
    match route(&request, &service, &mut stream) {
        Routed::Response(response) => {
            let _ = response.write(&mut stream);
        }
        Routed::Streamed => {}
    }
}

enum Routed {
    Response(Response),
    /// The route wrote its own (chunked) response.
    Streamed,
}

fn route(request: &Request, service: &Arc<Service>, stream: &mut TcpStream) -> Routed {
    let segments: Vec<&str> = request
        .path
        .split('?')
        .next()
        .unwrap_or("")
        .split('/')
        .filter(|s| !s.is_empty())
        .collect();
    let method = request.method.as_str();
    match (method, segments.as_slice()) {
        ("GET", ["v1", "healthz"]) => Routed::Response(Response::json(
            200,
            format!("{{\"ok\":true,\"api_version\":{}}}", crate::API_VERSION),
        )),
        ("GET", ["v1", "metrics"]) => {
            Routed::Response(Response::json(200, service.metrics().to_json()))
        }
        ("POST", ["v1", "jobs"]) => Routed::Response(submit(request, service)),
        ("GET", ["v1", "jobs", id]) => Routed::Response(job_status(id, service)),
        ("GET", ["v1", "jobs", id, "events"]) => stream_events(id, service, stream),
        ("GET", ["v1", "jobs", id, "artifacts", name]) => {
            Routed::Response(fetch_artifact(id, name, service))
        }
        ("POST", _) | ("GET", _) => Routed::Response(error_body(
            404,
            "not_found",
            &format!("no route for {method} {}", request.path),
        )),
        _ => Routed::Response(error_body(
            405,
            "method_not_allowed",
            &format!("method {method} is not supported"),
        )),
    }
}

fn submit(request: &Request, service: &Arc<Service>) -> Response {
    let tenant = request.header("x-tenant").unwrap_or(DEFAULT_TENANT);
    if tenant.is_empty()
        || !tenant
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return error_body(
            400,
            "bad_tenant",
            "X-Tenant must be a non-empty [A-Za-z0-9_-]+ name",
        );
    }
    let parsed = match JobRequest::parse(&request.body) {
        Ok(p) => p,
        Err(RequestError(message)) => return error_body(400, "bad_request", &message),
    };
    match service.submit(tenant, parsed) {
        Ok((cached, body)) => Response::json(if cached { 200 } else { 202 }, body),
        Err(err @ QuotaError::InFlight { .. }) => {
            error_body(429, "quota_in_flight", &err.to_string())
        }
    }
}

fn parse_id(id: &str) -> Option<u64> {
    id.parse().ok()
}

fn job_status(id: &str, service: &Arc<Service>) -> Response {
    let Some(id) = parse_id(id) else {
        return error_body(400, "bad_request", "job id must be an integer");
    };
    let inner = service.inner.lock().expect("service lock");
    match inner.jobs.get(&id) {
        None => error_body(
            404,
            "not_found",
            &format!("no job {id} (unknown or expired)"),
        ),
        Some(entry) if entry.state == JobState::TimedOut => Response {
            status: 504,
            content_type: "application/json",
            body: timeout_body(entry, id).into_bytes(),
        },
        Some(entry) => Response::json(200, job_json(entry, id)),
    }
}

/// The typed `504` body still carries the job document so clients can
/// see how far the run got before the reaper cancelled it.
fn timeout_body(entry: &JobEntry, id: u64) -> String {
    format!(
        "{{\"error\":{{\"status\":504,\"code\":\"timeout\",\
         \"message\":\"job exceeded the tenant wall-clock quota and was reaped\"}},\
         \"job\":{}}}",
        job_json(entry, id)
    )
}

fn fetch_artifact(id: &str, name: &str, service: &Arc<Service>) -> Response {
    let Some(id) = parse_id(id) else {
        return error_body(400, "bad_request", "job id must be an integer");
    };
    let inner = service.inner.lock().expect("service lock");
    let Some(entry) = inner.jobs.get(&id) else {
        return error_body(
            404,
            "not_found",
            &format!("no job {id} (unknown or expired)"),
        );
    };
    match entry.state {
        JobState::TimedOut => Response {
            status: 504,
            content_type: "application/json",
            body: timeout_body(entry, id).into_bytes(),
        },
        JobState::Failed => error_body(
            409,
            "job_failed",
            entry.error.as_deref().unwrap_or("simulation failed"),
        ),
        JobState::Queued | JobState::Running => error_body(
            409,
            "not_ready",
            &format!("job {id} is {}; poll /v1/jobs/{id}", entry.state.label()),
        ),
        JobState::Done => {
            let artifacts = entry.artifacts.as_ref().expect("done job has artifacts");
            match artifacts.get(name) {
                None => error_body(
                    404,
                    "not_found",
                    &format!(
                        "job {id} has no artifact {name:?} (available: {})",
                        artifacts
                            .manifest()
                            .iter()
                            .map(|(n, _)| *n)
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                ),
                Some(bytes) => Response::bytes(200, artifact_content_type(name), bytes.to_vec()),
            }
        }
    }
}

/// Streams progress heartbeats as chunked NDJSON until the job reaches
/// a terminal state — the HTTP analogue of the CLI `--progress`
/// heartbeat (same fields, same semantics; see `docs/service.md`).
fn stream_events(id: &str, service: &Arc<Service>, stream: &mut TcpStream) -> Routed {
    let Some(id) = parse_id(id) else {
        return Routed::Response(error_body(400, "bad_request", "job id must be an integer"));
    };
    {
        let inner = service.inner.lock().expect("service lock");
        if !inner.jobs.contains_key(&id) {
            return Routed::Response(error_body(404, "not_found", &format!("no job {id}")));
        }
    }
    let Ok(mut writer) = ChunkedWriter::start(stream, 200, "application/x-ndjson") else {
        return Routed::Streamed;
    };
    let started = Instant::now();
    loop {
        let snapshot = {
            let inner = service.inner.lock().expect("service lock");
            let Some(entry) = inner.jobs.get(&id) else {
                // Evicted by retention mid-stream: end cleanly (the
                // write happens below, after the lock is dropped).
                break;
            };
            let progress = entry.progress.lock().map(|p| *p).unwrap_or_default();
            let line = format!(
                "{{\"type\":\"heartbeat\",\"id\":{},\"state\":\"{}\",\"sim_time\":{},\
                 \"jobs_admitted\":{},\"jobs_finished\":{},\"queue_depth\":{},\"events\":{},\
                 \"wall_s\":{:.3}}}\n",
                id,
                entry.state.label(),
                progress.sim_time,
                progress.jobs_admitted,
                progress.jobs_finished,
                progress.queue_depth,
                progress.events,
                started.elapsed().as_secs_f64(),
            );
            (line, entry.state.terminal())
        };
        let (line, terminal) = snapshot;
        if writer.chunk(line.as_bytes()).is_err() {
            return Routed::Streamed;
        }
        if terminal {
            break;
        }
        std::thread::sleep(EVENT_BEAT);
    }
    let final_line = {
        let inner = service.inner.lock().expect("service lock");
        match inner.jobs.get(&id) {
            Some(entry) => format!("{{\"type\":\"end\",\"job\":{}}}\n", job_json(entry, id)),
            // Evicted between the last heartbeat and this render.
            None => "{\"type\":\"end\",\"job\":null}\n".to_string(),
        }
    };
    let _ = writer.chunk(final_line.as_bytes());
    let _ = writer.finish();
    Routed::Streamed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_covers_control_characters() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nbreak\r\ttab"), "line\\nbreak\\r\\ttab");
        assert_eq!(json_escape("bell\u{07}nul\u{00}"), "bell\\u0007nul\\u0000");
    }

    #[test]
    fn error_bodies_stay_valid_json_for_control_character_messages() {
        let response = error_body(404, "not_found", "no route for GET /\u{01}\n\"x\"");
        let body = String::from_utf8(response.body).unwrap();
        // RFC 8259: no raw control characters may appear in the output.
        assert!(body.chars().all(|c| (c as u32) >= 0x20));
        assert!(body.contains("\\u0001"));
        assert!(body.contains("\\n"));
        assert!(body.contains("\\\"x\\\""));
    }
}
