//! Capacity-constrained resources.
//!
//! A resource is anything whose capacity is shared fluidly among concurrent
//! activities: a network link or NIC (bytes/s), a disk (bytes/s), or a CPU
//! pool (core-seconds/s, i.e. cores). The engine does not distinguish these
//! — higher layers give resources meaningful names and units.

/// A named, capacity-constrained resource.
#[derive(Debug, Clone)]
pub struct Resource {
    /// Human-readable name, used in traces and error messages.
    pub name: String,
    /// Capacity in work units per second (bytes/s for links and disks,
    /// cores for CPU pools). Must be positive and finite.
    pub capacity: f64,
}

impl Resource {
    /// Creates a resource, validating its capacity.
    ///
    /// # Panics
    /// Panics if `capacity` is not positive and finite.
    pub fn new(name: impl Into<String>, capacity: f64) -> Self {
        let name = name.into();
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "resource {name:?} must have positive finite capacity, got {capacity}"
        );
        Resource { name, capacity }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_with_valid_capacity() {
        let r = Resource::new("link", 125e6);
        assert_eq!(r.name, "link");
        assert_eq!(r.capacity, 125e6);
    }

    #[test]
    #[should_panic(expected = "positive finite capacity")]
    fn rejects_zero_capacity() {
        let _ = Resource::new("bad", 0.0);
    }

    #[test]
    #[should_panic(expected = "positive finite capacity")]
    fn rejects_infinite_capacity() {
        let _ = Resource::new("bad", f64::INFINITY);
    }
}
