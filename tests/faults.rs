//! Fault-injection integration tests: the empty-plan equivalence
//! property, the ISSUE acceptance scenario (a BB node lost mid-stage-in
//! on Cori's striped burst buffer), and kill/retry semantics — all
//! asserted across the full crate stack. See `docs/failure-model.md`
//! for the failure taxonomy these tests pin down.

use proptest::prelude::*;

use wfbb::prelude::*;
use wfbb::storage::StorageSystem;
use wfbb::wms::executor::Executor;
use wfbb::wms::{FaultEvent, FaultSpec, RetryPolicy, SchedulerPolicy};
use wfbb::workloads::patterns;

fn platform_for(idx: usize, nodes: usize) -> wfbb::platform::PlatformSpec {
    match idx % 3 {
        0 => presets::cori(nodes, BbMode::Private),
        1 => presets::cori(nodes, BbMode::Striped),
        _ => presets::summit(nodes),
    }
}

/// Everything observable about a run, as exact bit patterns: makespan,
/// staging, traffic/capacity accounting, per-task timeline and
/// decomposition, and the fault aggregates.
fn fingerprint(report: &SimulationReport) -> Vec<u64> {
    let mut bits = vec![
        report.makespan.seconds().to_bits(),
        report.stage_in_time.to_bits(),
        report.bb_bytes.to_bits(),
        report.pfs_bytes.to_bits(),
        report.bb_peak_bytes.to_bits(),
        report.fault_lost_bytes.to_bits(),
        report.fault_lost_compute.to_bits(),
        report.fault_wait_total.to_bits(),
        report.faults.len() as u64,
        report.retries as u64,
    ];
    for t in &report.tasks {
        bits.extend([
            t.start.seconds().to_bits(),
            t.read_end.seconds().to_bits(),
            t.compute_end.seconds().to_bits(),
            t.end.seconds().to_bits(),
            t.pure_compute.to_bits(),
            t.serialized_io.to_bits(),
            t.contention_wait.to_bits(),
            t.fault_wait.to_bits(),
            t.attempts as u64,
            t.node as u64,
        ]);
    }
    bits
}

/// Runs `wf` through the plain builder path (fault subsystem never
/// enabled).
fn run_without_subsystem(
    platform: &wfbb::platform::PlatformSpec,
    wf: &Workflow,
    fraction: f64,
    mode: SolveMode,
) -> SimulationReport {
    SimulationBuilder::new(platform.clone(), wf.clone())
        .placement(PlacementPolicy::FractionToBb { fraction })
        .solve_mode(mode)
        .run()
        .unwrap()
}

/// Runs `wf` with the fault subsystem explicitly armed — retry policy
/// installed, injection machinery active — but an *empty* schedule.
/// (`SimulationBuilder` skips `set_fault_injection` for empty specs, so
/// this drives the `Executor` directly to force the enabled path.)
fn run_with_empty_plan(
    platform: &wfbb::platform::PlatformSpec,
    wf: &Workflow,
    fraction: f64,
    mode: SolveMode,
) -> SimulationReport {
    platform.validate().unwrap();
    let mut engine = Engine::new();
    engine.set_solve_mode(mode);
    // An empty engine-level capacity-fault plan must be inert too.
    engine.set_fault_plan(&wfbb::simcore::FaultPlan::new());
    let instance = platform.instantiate(&mut engine);
    let storage = StorageSystem::new(instance);
    let plan = PlacementPolicy::FractionToBb { fraction }.plan(wf);
    let mut executor = Executor::new(
        engine,
        storage,
        wf.clone(),
        plan,
        None,
        SchedulerPolicy::default(),
    );
    let empty = FaultSpec::new().resolve(0).unwrap();
    assert!(empty.is_empty());
    executor.set_fault_injection(empty, RetryPolicy::default());
    executor.run().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// ISSUE satellite: an empty `FaultPlan` is bitwise-identical to a
    /// run without the fault subsystem enabled, in both solve modes.
    #[test]
    fn empty_fault_plan_is_bitwise_inert(
        layers in 1usize..4,
        width in 1usize..4,
        seed in 0u64..500,
        platform_idx in 0usize..3,
        nodes in 1usize..3,
        fraction in 0.0f64..=1.0,
    ) {
        let wf = patterns::random_layered(layers, width, seed);
        let platform = platform_for(platform_idx, nodes);
        for mode in [SolveMode::Naive, SolveMode::Incremental] {
            let plain = run_without_subsystem(&platform, &wf, fraction, mode);
            let armed = run_with_empty_plan(&platform, &wf, fraction, mode);
            prop_assert_eq!(
                fingerprint(&plain),
                fingerprint(&armed),
                "{:?}: empty fault plan changed the run",
                mode
            );
            // Fault-free runs carry exactly-zero fault accounting.
            prop_assert!(armed.faults.is_empty());
            prop_assert_eq!(armed.retries, 0);
            for t in &armed.tasks {
                prop_assert_eq!(t.attempts, 1);
                prop_assert_eq!(t.fault_wait.to_bits(), 0.0f64.to_bits());
            }
        }
    }
}

/// The same property through the public builder: `.faults(empty)` is a
/// no-op, cheap enough to check on a real SWarp instance.
#[test]
fn empty_spec_through_builder_is_inert() {
    let wf = SwarpConfig::new(2).with_cores_per_task(8).build();
    let platform = presets::cori(1, BbMode::Striped);
    for mode in [SolveMode::Naive, SolveMode::Incremental] {
        let run = |spec: Option<FaultSpec>| {
            let mut b = SimulationBuilder::new(platform.clone(), wf.clone())
                .placement(PlacementPolicy::AllBb)
                .solve_mode(mode);
            if let Some(spec) = spec {
                b = b.faults(spec);
            }
            b.run().unwrap()
        };
        let plain = run(None);
        let empty = run(Some(FaultSpec::parse("# nothing scheduled\n").unwrap()));
        assert_eq!(fingerprint(&plain), fingerprint(&empty));
    }
}

/// ISSUE acceptance: a SWarp run on Cori's striped BB with one BB node
/// killed mid-stage-in completes via PFS failover, reports
/// fault-attributed lost work > 0, and the four-term decomposition
/// identity still holds within 1e-9.
#[test]
fn swarp_striped_bb_node_loss_fails_over_to_pfs() {
    let platform = presets::cori(1, BbMode::Striped);
    let wf = SwarpConfig::new(4).with_cores_per_task(8).build();

    // Fault-free baseline: find the middle of the stage-in window. Each
    // striped file stage is metadata-bound (the slow per-stripe opens of
    // §VI), with the actual data transfer compressed into the last
    // ~10 ms of the span — so aim the kill a few milliseconds before the
    // middle span ends to catch its stripe transfers in flight.
    let baseline = SimulationBuilder::new(platform.clone(), wf.clone())
        .placement(PlacementPolicy::AllBb)
        .run()
        .unwrap();
    assert!(baseline.stage_in_time > 0.0, "SWarp stages inputs");
    assert_eq!(baseline.pfs_bytes, 0.0, "baseline never touches the PFS");
    let mid_span = &baseline.stage_spans[baseline.stage_spans.len() / 2];
    assert!(
        mid_span.location.contains("striped"),
        "mid-stage-in file is striped, got {}",
        mid_span.location
    );
    let kill_time = mid_span.end.seconds() - 0.005;

    let mut spec = FaultSpec::new();
    spec.push(FaultEvent::BbNodeDown {
        time: kill_time,
        device: 0,
    });
    let report = SimulationBuilder::new(platform, wf)
        .placement(PlacementPolicy::AllBb)
        .faults(spec)
        .run()
        .expect("run completes despite the node loss");

    // The fault fired, cancelled in-flight striped transfers, and the
    // cancelled progress is attributed to it.
    assert_eq!(report.faults.len(), 1);
    let fault = &report.faults[0];
    assert_eq!(fault.kind, "bb-down");
    assert_eq!(fault.target, "bb:0");
    assert!((fault.time - kill_time).abs() < 1e-9);
    assert!(fault.cancelled_flows > 0, "stage-in was in flight");
    assert!(
        report.fault_lost_bytes > 0.0,
        "fault-attributed lost work must be > 0"
    );

    // Failover: every striped placement spans bb:0, so post-fault
    // accesses re-route to the PFS and the run still completes.
    assert!(
        report.pfs_bytes > 0.0,
        "failover routes traffic via the PFS"
    );
    assert_eq!(report.tasks.len(), baseline.tasks.len());

    // Decomposition identity, now with the fault term.
    for t in &report.tasks {
        let sum = t.pure_compute + t.serialized_io + t.contention_wait + t.fault_wait;
        assert!(
            (sum - t.duration()).abs() <= 1e-9 * t.duration().max(1.0),
            "{}: decomposition {sum} != duration {}",
            t.name,
            t.duration()
        );
    }

    // The explanation surfaces the fault blame category.
    let explanation = report.explain(3);
    assert_eq!(explanation.faults.len(), 1);
    assert!(explanation.fault_lost_bytes > 0.0);
    assert!(
        explanation.render_text().contains("bb-down"),
        "explain text names the fault"
    );
}

/// Kill faults trigger the retry policy: the victim re-executes, its
/// record carries the extra attempts and fault wait, and the identity
/// absorbs the recovery time.
#[test]
fn task_kill_retries_and_decomposition_holds() {
    let platform = presets::cori(1, BbMode::Private);
    let wf = SwarpConfig::new(2).with_cores_per_task(8).build();
    let baseline = SimulationBuilder::new(platform.clone(), wf.clone())
        .placement(PlacementPolicy::AllBb)
        .run()
        .unwrap();
    let victim = baseline.task_by_name("resample_0").unwrap();
    // Mid-compute: the pre-kill timeline is identical to the baseline,
    // so resample_0 is guaranteed to be running then.
    let kill_time = 0.5 * (victim.read_end.seconds() + victim.compute_end.seconds());

    let spec = FaultSpec::parse(&format!("task:resample_0@{kill_time}")).unwrap();
    let report = SimulationBuilder::new(platform, wf)
        .placement(PlacementPolicy::AllBb)
        .faults(spec)
        .retry_policy(RetryPolicy {
            max_attempts: 3,
            backoff: 1.5,
        })
        .run()
        .unwrap();

    let retried = report.task_by_name("resample_0").unwrap();
    assert_eq!(retried.attempts, 2, "one kill, one re-execution");
    assert!(
        retried.fault_wait >= 1.5,
        "fault wait covers the killed attempt plus the 1.5 s backoff, got {}",
        retried.fault_wait
    );
    assert_eq!(report.retries, 1);
    assert!(report.fault_lost_compute > 0.0, "killed compute is charged");
    assert!(
        report.makespan > baseline.makespan,
        "losing an attempt cannot speed the run up"
    );
    for t in &report.tasks {
        let sum = t.pure_compute + t.serialized_io + t.contention_wait + t.fault_wait;
        assert!(
            (sum - t.duration()).abs() <= 1e-9 * t.duration().max(1.0),
            "{}: decomposition {sum} != duration {}",
            t.name,
            t.duration()
        );
    }
    // Untouched tasks keep exactly-zero fault accounting.
    for t in report.tasks.iter().filter(|t| t.name != "resample_0") {
        assert_eq!(t.attempts, 1);
        assert_eq!(t.fault_wait.to_bits(), 0.0f64.to_bits());
    }
}
