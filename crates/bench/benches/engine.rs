//! Kernel microbenchmarks: fair-share solver and engine throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wfbb_simcore::fairshare::{solve, FlowReq};
use wfbb_simcore::{Engine, FlowSpec, ResourceId};

/// Max–min solve over `n` flows crossing a shared link plus a private
/// resource each — the allocation pattern of concurrent pipelines.
fn bench_fairshare(c: &mut Criterion) {
    let mut group = c.benchmark_group("fairshare_solve");
    for n in [8usize, 64, 256] {
        // Resource 0 is shared; resources 1..=n are per-flow.
        let capacities: Vec<f64> = std::iter::once(1000.0)
            .chain((0..n).map(|_| 50.0))
            .collect();
        let routes: Vec<[ResourceId; 2]> = (0..n)
            .map(|i| [ResourceId::from_index(0), ResourceId::from_index(i + 1)])
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let flows: Vec<FlowReq> = routes
                    .iter()
                    .map(|r| FlowReq {
                        route: r,
                        rate_cap: None,
                    })
                    .collect();
                black_box(solve(&capacities, &flows))
            })
        });
    }
    group.finish();
}

/// End-to-end engine throughput: `n` equal flows on one link, run to
/// completion (one solve per completion event).
fn bench_engine_events(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_run");
    for n in [16usize, 128, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut engine: Engine<usize> = Engine::new();
                let link = engine.add_resource("link", 1000.0);
                for i in 0..n {
                    // Staggered sizes force n distinct completion events.
                    engine.spawn_flow(FlowSpec::new(100.0 + i as f64, vec![link]), i);
                }
                black_box(engine.run_to_completion().len())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fairshare, bench_engine_events
}
criterion_main!(benches);
