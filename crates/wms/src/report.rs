//! Simulation results.
//!
//! The simulator's outputs mirror what the paper measures: the workflow
//! makespan, the stage-in duration, per-task execution times (grouped by
//! category: Resample, Combine, ...), and the achieved I/O bandwidth per
//! storage tier. When telemetry sampling was enabled for the run, the
//! report also carries the engine's [`TelemetrySnapshot`] (per-resource
//! rate/queue series, utilization histograms, engine counters) and
//! per-file stage-in spans, which the exporters in [`crate::traceexport`]
//! turn into JSONL and Perfetto traces.

use std::collections::BTreeMap;

use wfbb_simcore::{SimTime, TelemetrySnapshot};
use wfbb_workflow::TaskId;

/// Timing record of one executed task.
#[derive(Debug, Clone)]
pub struct TaskRecord {
    /// Which task.
    pub task: TaskId,
    /// Task name.
    pub name: String,
    /// Task category ("resample", "combine", ...).
    pub category: String,
    /// Pipeline tag, if any.
    pub pipeline: Option<usize>,
    /// Compute node the task ran on.
    pub node: usize,
    /// Cores actually allocated.
    pub cores: usize,
    /// When the task started reading inputs.
    pub start: SimTime,
    /// When all input reads finished.
    pub read_end: SimTime,
    /// When the compute phase finished.
    pub compute_end: SimTime,
    /// When all output writes finished (task completion).
    pub end: SimTime,
    /// Seconds of the compute phase actually spent computing (compute
    /// wall time minus compute-phase contention wait).
    pub pure_compute: f64,
    /// Seconds of the read/write phases the task would have needed with
    /// every I/O flow running at its uncontended rate (phase wall time
    /// minus I/O contention wait).
    pub serialized_io: f64,
    /// Seconds lost to resource contention across the final attempt's
    /// phases (checkpoint I/O included).
    /// `pure_compute + serialized_io + contention_wait + fault_wait +
    /// checkpoint_io == duration()` by construction; exactly `0.0` for
    /// an uncontended run.
    pub contention_wait: f64,
    /// Execution attempts the task used (1 unless a kill fault forced a
    /// retry; see [`crate::RetryPolicy`]).
    pub attempts: u32,
    /// Seconds lost to fault recovery: the gap between the first
    /// attempt's start and the final attempt's start (failed attempts
    /// plus retry backoff). Exactly `0.0` for tasks that were never
    /// killed, so the decomposition reduces to the three-term identity
    /// in fault-free runs.
    pub fault_wait: f64,
    /// Seconds the final attempt spent writing checkpoint images (and
    /// reading one back after a restore), net of contention wait —
    /// checkpointing is scheduled I/O paying real contention like any
    /// other flow. Exactly `0.0` without a checkpoint policy, so the
    /// decomposition reduces to the previous four-term identity.
    pub checkpoint_io: f64,
    /// Contention wait attributed per binding resource, `(resource name,
    /// serialized wait seconds)`, descending by wait. The per-flow waits
    /// sum without concurrency folding, so entries can exceed
    /// [`TaskRecord::contention_wait`]; use them for *ranking* culprits.
    pub contention_by_resource: Vec<(String, f64)>,
}

impl TaskRecord {
    /// Total execution time from the *first* attempt's start to the
    /// final completion (fault recovery included).
    pub fn duration(&self) -> f64 {
        self.end.duration_since(self.start)
    }

    /// Time the final attempt spent reading inputs.
    pub fn read_time(&self) -> f64 {
        self.read_end.duration_since(self.start) - self.fault_wait
    }

    /// Time spent computing.
    pub fn compute_time(&self) -> f64 {
        self.compute_end.duration_since(self.read_end)
    }

    /// Time spent writing outputs.
    pub fn write_time(&self) -> f64 {
        self.end.duration_since(self.compute_end)
    }

    /// Fraction of the execution spent in I/O (the λ^io the calibration
    /// model consumes).
    pub fn io_fraction(&self) -> f64 {
        let d = self.duration();
        if d > 0.0 {
            (self.read_time() + self.write_time()) / d
        } else {
            0.0
        }
    }
}

/// Aggregate statistics for one task category.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoryStats {
    /// Number of tasks in the category.
    pub count: usize,
    /// Mean execution time, seconds.
    pub mean_duration: f64,
    /// Minimum execution time, seconds.
    pub min_duration: f64,
    /// Maximum execution time, seconds.
    pub max_duration: f64,
    /// Mean time in I/O (read + write), seconds.
    pub mean_io_time: f64,
    /// Mean time computing, seconds.
    pub mean_compute_time: f64,
}

/// One file's stage-in interval: when the sequential stage-in phase moved
/// the file into the burst buffer, and where it landed.
#[derive(Debug, Clone)]
pub struct StageSpan {
    /// Name of the staged file.
    pub file: String,
    /// When the copy started.
    pub start: SimTime,
    /// When the copy finished and the location was registered.
    pub end: SimTime,
    /// Destination label: `pfs`, `bb:<device>`, `bb:striped:<n>`, or
    /// `bb:node<k>` (see `docs/trace-format.md`).
    pub location: String,
}

/// One injected fault and its measured impact (see
/// `docs/failure-model.md` for the taxonomy and recovery semantics).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRecord {
    /// When the fault fired, simulated seconds.
    pub time: f64,
    /// Fault kind: `bb-down`, `bb-degraded`, `pfs-degraded`, or
    /// `task-kill`.
    pub kind: String,
    /// Target label: `bb:<device>`, `pfs`, or the task name.
    pub target: String,
    /// In-flight engine activities the fault cancelled (0 for
    /// degradations, which only slow flows down).
    pub cancelled_flows: usize,
    /// Bytes of transfer progress thrown away by the cancellations
    /// (work that must be redone).
    pub lost_bytes: f64,
    /// Core-seconds of compute progress thrown away.
    pub lost_compute: f64,
    /// Human-readable account of what the recovery did.
    pub description: String,
}

/// Per-resource contention summary: how much work the resource's
/// congestion delayed, aggregated over every flow the fair-share solver
/// froze at that resource. Always populated (independent of telemetry
/// sampling); resources that never bound a flow are omitted.
#[derive(Debug, Clone)]
pub struct ResourceContention {
    /// Resource name (e.g. `cori-striped/bb0/meta`).
    pub name: String,
    /// Resource capacity (B/s, ops/s, or cores).
    pub capacity: f64,
    /// Work-units of throughput lost to sharing at this resource.
    pub lost_work: f64,
    /// Serialized seconds of delay the contention caused across flows.
    pub wait: f64,
    /// `[first, last]` simulated seconds over which blame accrued.
    pub interval: (f64, f64),
}

/// What a step of the executed critical path is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CriticalStepKind {
    /// The sequential stage-in phase gating all task starts.
    StageIn,
    /// A task execution (read → compute → write).
    Task,
}

/// One step of the *executed* critical path: the realized chain of
/// schedule-ordered work ending at the last completion. Unlike the
/// static flops-weighted `wfbb_workflow` critical path, this follows the
/// latest-finishing dependency at each hop of the actual schedule.
#[derive(Debug, Clone)]
pub struct CriticalStep {
    /// Task name, or `stage-in` for the staging step.
    pub label: String,
    /// Step kind.
    pub kind: CriticalStepKind,
    /// When the step started.
    pub start: SimTime,
    /// When the step ended.
    pub end: SimTime,
    /// Idle seconds between the previous step's end and this start (e.g.
    /// waiting for cores); 0 for the first step.
    pub slack: f64,
}

impl CriticalStep {
    /// Step duration, seconds.
    pub fn duration(&self) -> f64 {
        self.end.duration_since(self.start)
    }
}

/// Complete result of one simulated workflow execution.
#[derive(Debug, Clone)]
pub struct SimulationReport {
    /// Name of the executed workflow.
    pub workflow: String,
    /// Workflow makespan: the date of the last completion event.
    pub makespan: SimTime,
    /// Duration of the sequential stage-in phase, seconds.
    pub stage_in_time: f64,
    /// Per-file stage-in spans, in staging order (empty when nothing was
    /// staged to the burst buffer).
    pub stage_spans: Vec<StageSpan>,
    /// Per-file output-write (stage-out) spans, in completion order: when
    /// each task output was written and the tier it landed on.
    pub output_spans: Vec<StageSpan>,
    /// Per-task timing records, in task-id order.
    pub tasks: Vec<TaskRecord>,
    /// Per-resource contention totals, descending by wait (resources that
    /// never bound a flow are omitted). Always populated.
    pub contention: Vec<ResourceContention>,
    /// Contention wait suffered by the stage-in phase, per binding
    /// resource, `(resource name, serialized wait seconds)`.
    pub stage_contention: Vec<(String, f64)>,
    /// The executed critical path, in chronological order.
    pub critical_path: Vec<CriticalStep>,
    /// Injected faults and their measured impact, in firing order.
    /// Empty (and every `fault_*` aggregate exactly zero) when the run
    /// injected no faults.
    pub faults: Vec<FaultRecord>,
    /// Total transfer progress cancelled by faults, bytes.
    pub fault_lost_bytes: f64,
    /// Total compute progress cancelled by faults, core-seconds.
    pub fault_lost_compute: f64,
    /// Total wall-clock charged to fault recovery across tasks (the sum
    /// of per-task [`TaskRecord::fault_wait`]).
    pub fault_wait_total: f64,
    /// Task re-executions triggered by kill faults.
    pub retries: u32,
    /// Checkpoint images successfully written (0 without a policy).
    pub checkpoints: u32,
    /// Retries that restored from a checkpoint image instead of
    /// restarting from the read phase.
    pub restores: u32,
    /// Total bytes of checkpoint images written.
    pub checkpoint_bytes: f64,
    /// Total wall-clock spent on checkpoint I/O across tasks (the sum of
    /// per-task [`TaskRecord::checkpoint_io`]); exactly `0.0` without a
    /// checkpoint policy.
    pub checkpoint_io_total: f64,
    /// Bytes transferred to/from the burst buffer tier.
    pub bb_bytes: f64,
    /// Bytes transferred to/from the PFS tier.
    pub pfs_bytes: f64,
    /// Achieved burst buffer bandwidth while busy, B/s (Figure 9).
    pub bb_achieved_bw: f64,
    /// Achieved PFS bandwidth while busy, B/s (Figure 9).
    pub pfs_achieved_bw: f64,
    /// Nominal aggregate BB bandwidth (per-device bandwidth × devices),
    /// B/s; 0 when the platform has no burst buffer.
    pub bb_nominal_bw: f64,
    /// Nominal PFS disk bandwidth, B/s.
    pub pfs_nominal_bw: f64,
    /// Peak total burst buffer occupancy, bytes.
    pub bb_peak_bytes: f64,
    /// Files that spilled to the PFS because their BB device was full.
    pub spilled_files: usize,
    /// Compute nodes of the platform the run used.
    pub nodes: usize,
    /// Cores per compute node.
    pub cores_per_node: usize,
    /// Engine telemetry (resource time series, utilization histograms,
    /// counters). `Some` only when the run enabled telemetry sampling; see
    /// [`crate::SimulationBuilder::telemetry`].
    pub telemetry: Option<TelemetrySnapshot>,
}

impl SimulationReport {
    /// Aggregates task records by category, in alphabetical order.
    pub fn by_category(&self) -> BTreeMap<String, CategoryStats> {
        let mut groups: BTreeMap<String, Vec<&TaskRecord>> = BTreeMap::new();
        for t in &self.tasks {
            groups.entry(t.category.clone()).or_default().push(t);
        }
        groups
            .into_iter()
            .map(|(cat, records)| {
                let durations: Vec<f64> = records.iter().map(|r| r.duration()).collect();
                let n = durations.len() as f64;
                let stats = CategoryStats {
                    count: records.len(),
                    mean_duration: durations.iter().sum::<f64>() / n,
                    min_duration: durations.iter().cloned().fold(f64::INFINITY, f64::min),
                    max_duration: durations.iter().cloned().fold(0.0, f64::max),
                    mean_io_time: records
                        .iter()
                        .map(|r| r.read_time() + r.write_time())
                        .sum::<f64>()
                        / n,
                    mean_compute_time: records.iter().map(|r| r.compute_time()).sum::<f64>() / n,
                };
                (cat, stats)
            })
            .collect()
    }

    /// Mean execution time of tasks in `category`, or `None` if the
    /// category is absent.
    pub fn mean_duration(&self, category: &str) -> Option<f64> {
        self.by_category().get(category).map(|s| s.mean_duration)
    }

    /// The record of a task by name.
    pub fn task_by_name(&self, name: &str) -> Option<&TaskRecord> {
        self.tasks.iter().find(|t| t.name == name)
    }

    /// Core-occupancy utilization per node over the makespan: the
    /// core-seconds held by tasks on each node divided by the node's
    /// capacity (cores × makespan). Values in `[0, 1]`; an empty run
    /// reports zeros.
    pub fn node_utilization(&self) -> Vec<f64> {
        let horizon = self.makespan.seconds();
        let mut busy = vec![0.0f64; self.nodes];
        for t in &self.tasks {
            busy[t.node] += t.duration() * t.cores as f64;
        }
        busy.iter()
            .map(|b| {
                if horizon > 0.0 {
                    (b / (self.cores_per_node as f64 * horizon)).clamp(0.0, 1.0)
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Mean node utilization across the platform.
    pub fn mean_utilization(&self) -> f64 {
        let u = self.node_utilization();
        if u.is_empty() {
            0.0
        } else {
            u.iter().sum::<f64>() / u.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, cat: &str, start: f64, read: f64, compute: f64, end: f64) -> TaskRecord {
        TaskRecord {
            task: TaskId::from_index(0),
            name: name.into(),
            category: cat.into(),
            pipeline: None,
            node: 0,
            cores: 1,
            start: SimTime::from_seconds(start),
            read_end: SimTime::from_seconds(read),
            compute_end: SimTime::from_seconds(compute),
            end: SimTime::from_seconds(end),
            pure_compute: compute - read,
            serialized_io: (read - start) + (end - compute),
            contention_wait: 0.0,
            attempts: 1,
            fault_wait: 0.0,
            checkpoint_io: 0.0,
            contention_by_resource: Vec::new(),
        }
    }

    #[test]
    fn task_record_phases() {
        let r = record("t", "c", 1.0, 3.0, 7.0, 8.0);
        assert_eq!(r.duration(), 7.0);
        assert_eq!(r.read_time(), 2.0);
        assert_eq!(r.compute_time(), 4.0);
        assert_eq!(r.write_time(), 1.0);
        assert!((r.io_fraction() - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn zero_duration_task_has_zero_io_fraction() {
        let r = record("t", "c", 1.0, 1.0, 1.0, 1.0);
        assert_eq!(r.io_fraction(), 0.0);
    }

    #[test]
    fn category_stats_aggregate() {
        let report = SimulationReport {
            workflow: "test".into(),
            makespan: SimTime::from_seconds(10.0),
            stage_in_time: 1.0,
            stage_spans: Vec::new(),
            output_spans: Vec::new(),
            contention: Vec::new(),
            stage_contention: Vec::new(),
            critical_path: Vec::new(),
            faults: Vec::new(),
            fault_lost_bytes: 0.0,
            fault_lost_compute: 0.0,
            fault_wait_total: 0.0,
            retries: 0,
            checkpoints: 0,
            restores: 0,
            checkpoint_bytes: 0.0,
            checkpoint_io_total: 0.0,
            tasks: vec![
                record("r1", "resample", 0.0, 1.0, 4.0, 5.0),
                record("r2", "resample", 0.0, 2.0, 5.0, 7.0),
                record("c1", "combine", 5.0, 6.0, 9.0, 10.0),
            ],
            bb_bytes: 100.0,
            pfs_bytes: 50.0,
            bb_achieved_bw: 10.0,
            pfs_achieved_bw: 5.0,
            bb_nominal_bw: 20.0,
            pfs_nominal_bw: 8.0,
            bb_peak_bytes: 0.0,
            spilled_files: 0,
            nodes: 1,
            cores_per_node: 4,
            telemetry: None,
        };
        let by_cat = report.by_category();
        assert_eq!(by_cat.len(), 2);
        let r = &by_cat["resample"];
        assert_eq!(r.count, 2);
        assert_eq!(r.mean_duration, 6.0);
        assert_eq!(r.min_duration, 5.0);
        assert_eq!(r.max_duration, 7.0);
        assert_eq!(report.mean_duration("combine"), Some(5.0));
        assert_eq!(report.mean_duration("missing"), None);
        assert_eq!(report.task_by_name("c1").unwrap().category, "combine");
        // Utilization: busy core-seconds (5+7+5) x 1 core over 4 cores x 10 s.
        let u = report.node_utilization();
        assert_eq!(u.len(), 1);
        assert!((u[0] - 17.0 / 40.0).abs() < 1e-12);
        assert!((report.mean_utilization() - u[0]).abs() < 1e-12);
    }
}
