//! A gallery of classic scientific-workflow shapes.
//!
//! Beyond the paper's two applications, these parameterized generators
//! model the structural archetypes of the Pegasus/WorkflowHub benchmark
//! family the workflow-systems literature (including the paper's own
//! community-resources citation \[44\]) evaluates against:
//!
//! * [`montage`] — astronomy mosaicking: a diamond of project → diff-fit
//!   (pairwise overlaps) → background model/match → add;
//! * [`epigenomics`] — genome methylation: many independent deep
//!   pipelines (split → filter → map → merge per lane, then a global
//!   merge);
//! * [`cybershake`] — seismic hazard: two huge generator tasks fan out to
//!   thousands of small seismogram/peak-value pairs.
//!
//! Sizes and compute times are order-of-magnitude realistic and, as
//! everywhere in this workspace, explicit parameters — these generators
//! exist to exercise placement policies and BB architectures on diverse
//! I/O patterns (1:N, N:1, deep chains), not to reproduce any specific
//! published run.

use wfbb_workflow::{FileId, Workflow, WorkflowBuilder};

/// Flops equivalent of `seconds` of sequential compute at the Cori
/// per-core speed (the workspace's reference calibration).
fn secs(seconds: f64) -> f64 {
    seconds * wfbb_calibration::params::CORI.gflops_per_core * 1e9
}

/// Montage-like mosaicking workflow over `tiles` input images.
///
/// Structure: per tile a `project` task; per overlapping tile pair (ring
/// topology) a `diff` task; one `bgmodel` gathering all diffs; per tile a
/// `background` correction; one final `add`.
pub fn montage(tiles: usize) -> Workflow {
    assert!(tiles >= 2, "a mosaic needs at least two tiles");
    let mut b = WorkflowBuilder::new(format!("montage-{tiles}"));
    let mut projected: Vec<FileId> = Vec::with_capacity(tiles);
    for i in 0..tiles {
        let raw = b.add_file(format!("raw_{i}.fits"), 40e6);
        let proj = b.add_file(format!("proj_{i}.fits"), 48e6);
        b.task(format!("project_{i}"))
            .category("project")
            .flops(secs(12.0))
            .cores(1)
            .input(raw)
            .output(proj)
            .add();
        projected.push(proj);
    }
    // Ring of overlaps: tile i overlaps tile (i+1) % tiles. The index
    // arithmetic over the ring is clearer than an enumerate chain.
    let mut fits: Vec<FileId> = Vec::with_capacity(tiles);
    #[allow(clippy::needless_range_loop)]
    for i in 0..tiles {
        let j = (i + 1) % tiles;
        let fit = b.add_file(format!("fit_{i}_{j}.txt"), 0.5e6);
        b.task(format!("diff_{i}_{j}"))
            .category("diff")
            .flops(secs(4.0))
            .cores(1)
            .inputs([projected[i], projected[j]])
            .output(fit)
            .add();
        fits.push(fit);
    }
    let corrections = b.add_file("corrections.tbl", 1e6);
    b.task("bgmodel")
        .category("bgmodel")
        .flops(secs(20.0))
        .cores(4)
        .inputs(fits)
        .output(corrections)
        .add();
    let mut corrected: Vec<FileId> = Vec::with_capacity(tiles);
    for (i, &proj) in projected.iter().enumerate() {
        let out = b.add_file(format!("corr_{i}.fits"), 48e6);
        b.task(format!("background_{i}"))
            .category("background")
            .flops(secs(6.0))
            .cores(1)
            .inputs([proj, corrections])
            .output(out)
            .add();
        corrected.push(out);
    }
    let mosaic = b.add_file("mosaic.fits", 60e6 * tiles as f64 / 2.0);
    b.task("add")
        .category("add")
        .flops(secs(30.0))
        .cores(8)
        .inputs(corrected)
        .output(mosaic)
        .add();
    b.build().expect("montage generator emits valid workflows")
}

/// Epigenomics-like methylation workflow: `lanes` independent deep
/// pipelines of `split → filter → map → merge`, then a global merge.
pub fn epigenomics(lanes: usize, chunks_per_lane: usize) -> Workflow {
    assert!(
        lanes >= 1 && chunks_per_lane >= 1,
        "need at least one lane/chunk"
    );
    let mut b = WorkflowBuilder::new(format!("epigenomics-{lanes}x{chunks_per_lane}"));
    let mut lane_outputs = Vec::with_capacity(lanes);
    for l in 0..lanes {
        let reads = b.add_file(format!("lane{l}.fastq"), 400e6);
        let mut mapped = Vec::with_capacity(chunks_per_lane);
        let mut split_outs = Vec::with_capacity(chunks_per_lane);
        for c in 0..chunks_per_lane {
            split_outs
                .push(b.add_file(format!("lane{l}.chunk{c}"), 400e6 / chunks_per_lane as f64));
        }
        b.task(format!("split_{l}"))
            .category("split")
            .flops(secs(8.0))
            .cores(1)
            .pipeline(l)
            .input(reads)
            .outputs(split_outs.iter().copied())
            .add();
        for (c, &chunk) in split_outs.iter().enumerate() {
            let filtered = b.add_file(format!("lane{l}.filt{c}"), 300e6 / chunks_per_lane as f64);
            b.task(format!("filter_{l}_{c}"))
                .category("filter")
                .flops(secs(15.0))
                .cores(1)
                .pipeline(l)
                .input(chunk)
                .output(filtered)
                .add();
            let map = b.add_file(format!("lane{l}.map{c}"), 250e6 / chunks_per_lane as f64);
            b.task(format!("map_{l}_{c}"))
                .category("map")
                .flops(secs(60.0))
                .cores(2)
                .pipeline(l)
                .input(filtered)
                .output(map)
                .add();
            mapped.push(map);
        }
        let merged = b.add_file(format!("lane{l}.merged"), 250e6);
        b.task(format!("merge_{l}"))
            .category("merge")
            .flops(secs(10.0))
            .cores(4)
            .pipeline(l)
            .inputs(mapped)
            .output(merged)
            .add();
        lane_outputs.push(merged);
    }
    let genome_map = b.add_file("genome.methylation", 200e6 * lanes as f64 / 2.0);
    b.task("global_merge")
        .category("global_merge")
        .flops(secs(25.0))
        .cores(8)
        .inputs(lane_outputs)
        .output(genome_map)
        .add();
    b.build()
        .expect("epigenomics generator emits valid workflows")
}

/// CyberShake-like seismic hazard workflow: two large strain-Green-tensor
/// generators feed `sites` pairs of small seismogram/peak-value tasks.
pub fn cybershake(sites: usize) -> Workflow {
    assert!(sites >= 1, "need at least one site");
    let mut b = WorkflowBuilder::new(format!("cybershake-{sites}"));
    let mesh = b.add_file("velocity_mesh", 1.5e9);
    let sgt_x = b.add_file("sgt_x", 3e9);
    let sgt_y = b.add_file("sgt_y", 3e9);
    b.task("sgt_gen_x")
        .category("sgt_gen")
        .flops(secs(400.0))
        .cores(16)
        .input(mesh)
        .output(sgt_x)
        .add();
    b.task("sgt_gen_y")
        .category("sgt_gen")
        .flops(secs(400.0))
        .cores(16)
        .input(mesh)
        .output(sgt_y)
        .add();
    for s in 0..sites {
        let seis = b.add_file(format!("seismogram_{s}"), 2e6);
        b.task(format!("synth_{s}"))
            .category("seismogram")
            .flops(secs(9.0))
            .cores(1)
            .inputs([sgt_x, sgt_y])
            .output(seis)
            .add();
        let peak = b.add_file(format!("peakval_{s}"), 0.1e6);
        b.task(format!("peak_{s}"))
            .category("peak")
            .flops(secs(1.5))
            .cores(1)
            .input(seis)
            .output(peak)
            .add();
    }
    b.build()
        .expect("cybershake generator emits valid workflows")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn montage_shape() {
        let wf = montage(6);
        // 6 project + 6 diff + 1 bgmodel + 6 background + 1 add.
        assert_eq!(wf.task_count(), 20);
        assert_eq!(wf.depth(), 5);
        let bg = wf.task_by_name("bgmodel").unwrap();
        assert_eq!(wf.dependencies(bg.id).len(), 6);
        let add = wf.task_by_name("add").unwrap();
        assert_eq!(wf.dependencies(add.id).len(), 6);
        assert_eq!(wf.output_files().len(), 1);
    }

    #[test]
    fn epigenomics_shape() {
        let wf = epigenomics(3, 4);
        // Per lane: 1 split + 4 filter + 4 map + 1 merge = 10; +1 global.
        assert_eq!(wf.task_count(), 3 * 10 + 1);
        assert_eq!(wf.depth(), 5);
        // Lanes are tagged as pipelines for node affinity.
        assert_eq!(wf.task_by_name("map_2_1").unwrap().pipeline, Some(2));
        let gm = wf.task_by_name("global_merge").unwrap();
        assert_eq!(wf.dependencies(gm.id).len(), 3);
    }

    #[test]
    fn cybershake_shape() {
        let wf = cybershake(50);
        assert_eq!(wf.task_count(), 2 + 2 * 50);
        assert_eq!(wf.depth(), 3);
        // The N:1 pattern: every synth task reads both giant SGT files.
        let sgt_x = wf.file_by_name("sgt_x").unwrap();
        assert_eq!(wf.consumers(sgt_x.id).len(), 50);
        assert!(wf.data_footprint() > 7e9);
    }

    #[test]
    fn gallery_workflows_simulate_end_to_end() {
        use wfbb_platform::presets;
        use wfbb_storage::PlacementPolicy;
        use wfbb_wms::SimulationBuilder;
        for wf in [montage(4), epigenomics(2, 2), cybershake(8)] {
            let report = SimulationBuilder::new(presets::summit(2), wf.clone())
                .placement(PlacementPolicy::AllBb)
                .run()
                .unwrap_or_else(|e| panic!("{} failed: {e}", wf.name));
            assert_eq!(report.tasks.len(), wf.task_count());
            assert!(report.makespan.seconds() > 0.0);
        }
    }

    #[test]
    fn cybershake_benefits_from_striped_bb() {
        // CyberShake's N:1 giant-shared-file pattern is what the striped
        // mode is built for — opposite of SWarp (paper Section III-D).
        use wfbb_platform::{presets, BbMode};
        use wfbb_storage::PlacementPolicy;
        use wfbb_wms::SimulationBuilder;
        let wf = cybershake(32);
        let private = SimulationBuilder::new(presets::cori(1, BbMode::Private), wf.clone())
            .placement(PlacementPolicy::AllBb)
            .run()
            .unwrap();
        let striped = SimulationBuilder::new(presets::cori(1, BbMode::Striped), wf)
            .placement(PlacementPolicy::AllBb)
            .run()
            .unwrap();
        assert!(
            striped.makespan < private.makespan,
            "striped should win the N:1 pattern: {} !< {}",
            striped.makespan,
            private.makespan
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn generators_always_validate(
                tiles in 2usize..10,
                lanes in 1usize..5,
                chunks in 1usize..5,
                sites in 1usize..30,
            ) {
                let m = montage(tiles);
                prop_assert_eq!(m.topological_order().len(), m.task_count());
                let e = epigenomics(lanes, chunks);
                prop_assert_eq!(e.topological_order().len(), e.task_count());
                let c = cybershake(sites);
                prop_assert_eq!(c.topological_order().len(), c.task_count());
            }
        }
    }
}
